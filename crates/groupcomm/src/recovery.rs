//! View-synchronous state transfer for member rejoin.
//!
//! A genuinely restarted node has lost everything: its context store, its
//! application state and its place in the group view. This layer gives it a
//! way back in, as a first-class protocol rather than an afterthought:
//!
//! 1. **Joining** — the restarted node comes up with `joining=true` (its
//!    vsync layer above holds an empty view and blocks sends). It multicasts
//!    a [`JoinRequest`] to the boot membership every `retry_ms` until the
//!    group's view coordinator either runs a join view change or — when the
//!    node was never expelled — re-asserts the current view at it.
//! 2. **Syncing** — once a view containing the local node installs, the
//!    joiner pulls a **chunked, versioned state snapshot** from a
//!    deterministic donor: the lowest live id in the installed view. The
//!    snapshot is the concatenation of every registered [`StateSection`]
//!    (the Cocaditem context store, app-level state such as chat room
//!    history), exported by the donor at request time and streamed in
//!    `chunk_bytes` chunks, `WINDOW` chunks per request round-trip. Lost
//!    chunks are re-requested; a donor that stops making progress for
//!    `transfer_timeout_ms` (or is suspected by the failure detector) fails
//!    over to the next donor under a **fresh transfer epoch**, so stale
//!    chunks from the dead donor can never corrupt the new stream.
//! 3. **Member** — when the snapshot is complete it is installed through the
//!    sections, a [`morpheus_appia::platform::DeliveryKind::Rejoined`]
//!    report goes to the application, and every data message received since
//!    the join view installed — buffered below the view-synchrony layer so
//!    view synchrony holds — is replayed upward in arrival order: the
//!    application sees the snapshot first, then the join view's messages.
//!
//! On every *non*-joining node the layer is a pass-through that answers
//! state requests when it is chosen as donor.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::{DeliveryKind, NodeId};
use morpheus_appia::sendable_event;
use morpheus_appia::session::Session;
use morpheus_appia::wire::{Wire, WireError, WireReader, WireWriter};

use crate::events::{Alive, CatchupRequest, JoinRequest, Rejoin, Suspect, ViewInstall};
use crate::round::{Ballot, Engine as RoundEngine, Tick};
use crate::view::View;

/// Registered name of the recovery / state-transfer layer.
pub const RECOVERY_LAYER: &str = "recovery";

/// Timer tag of the join/transfer retry tick.
const RETRY_TAG: u32 = 1;

/// Chunks streamed per request round-trip (pull-driven flow control — and
/// what makes a donor crash observable *mid*-transfer).
const WINDOW: usize = 8;

/// Hard cap on buffered join-view messages (drop-newest beyond it: the kept
/// prefix replays in order and the shed tail is recoverable through the
/// normal repair path once the node is a member).
const BUFFER_CAP: usize = 4096;

/// Transfer epochs at or above this base mark a *catch-up* transfer: a
/// healed member pulling a targeted snapshot after gossip repair reported
/// its missed span evicted ([`CatchupRequest`]). Disjoint from rejoin
/// epochs (which count up from 1) so a donor serving both never mixes the
/// streams and the joiner can route chunks without extra state.
const CATCHUP_EPOCH_BASE: u64 = 1_000_000_000;

sendable_event! {
    /// Joiner → donor: start (or continue) a snapshot transfer (header:
    /// [`StateRequestBody`]).
    pub struct StateRequest, class: Control
}

sendable_event! {
    /// Donor → joiner: one snapshot chunk (header: [`StateChunkHeader`];
    /// payload: the chunk bytes).
    pub struct StateChunk, class: Control
}

/// One named, independently versioned piece of node state that survives a
/// restart by being streamed from a donor.
///
/// Implementations use interior mutability (`Rc<RefCell<..>>`) because the
/// same live state is shared between the protocol layer and its owner (the
/// context store with the Cocaditem session, room history with the
/// application).
pub trait StateSection {
    /// Stable section name used to match exporter and installer.
    fn name(&self) -> &str;
    /// Serialises the current state.
    fn export(&self) -> Vec<u8>;
    /// Merges a snapshot into the local state. Returns `false` when the
    /// bytes are malformed (the transfer fails over to the next donor).
    fn install(&self, bytes: &[u8]) -> bool;
}

/// Wire body of a [`StateRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateRequestBody {
    /// The joiner's transfer epoch: bumped on every donor failover so late
    /// chunks from a previous donor are ignored.
    pub transfer_epoch: u64,
    /// Chunk indices the joiner still misses (empty = start of transfer,
    /// donor answers with a fresh snapshot's first window).
    pub missing: Vec<u32>,
}

impl Wire for StateRequestBody {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.transfer_epoch);
        w.put_u32_list(&self.missing);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            transfer_epoch: r.get_u64()?,
            missing: r.get_u32_list()?,
        })
    }
}

/// Wire header of a [`StateChunk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateChunkHeader {
    /// Transfer epoch the chunk answers.
    pub transfer_epoch: u64,
    /// Snapshot version (donor capture time): all chunks of one transfer
    /// carry the same version, so a joiner can detect a donor that
    /// re-exported mid-stream.
    pub version: u64,
    /// Index of this chunk.
    pub index: u32,
    /// Total number of chunks in the snapshot.
    pub total: u32,
}

impl Wire for StateChunkHeader {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.transfer_epoch);
        w.put_u64(self.version);
        w.put_u32(self.index);
        w.put_u32(self.total);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            transfer_epoch: r.get_u64()?,
            version: r.get_u64()?,
            index: r.get_u32()?,
            total: r.get_u32()?,
        })
    }
}

/// Encodes every section into one snapshot blob.
fn encode_snapshot(sections: &[Rc<dyn StateSection>]) -> Bytes {
    let mut w = WireWriter::new();
    w.put_u32(sections.len() as u32);
    for section in sections {
        w.put_str(section.name());
        w.put_bytes(&section.export());
    }
    w.finish()
}

/// The recovery / state-transfer layer.
///
/// Parameters:
///
/// * `members` — comma-separated boot membership (join-request targets);
/// * `joining` — whether this node is a restarted member re-entering the
///   group (default false);
/// * `retry_ms` — join-request and chunk re-request cadence (default
///   500 ms);
/// * `transfer_timeout_ms` — progress timeout before donor failover
///   (default 4000 ms);
/// * `chunk_bytes` — snapshot chunk size (default 1024).
pub struct RecoveryLayer {
    sections: Vec<Rc<dyn StateSection>>,
}

impl RecoveryLayer {
    /// A recovery layer with no registered state sections (view agreement
    /// and rejoin still work; the snapshot is just empty).
    pub fn new() -> Self {
        Self {
            sections: Vec::new(),
        }
    }

    /// A recovery layer streaming the given state sections.
    pub fn with_sections(sections: Vec<Rc<dyn StateSection>>) -> Self {
        Self { sections }
    }
}

impl Default for RecoveryLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for RecoveryLayer {
    fn name(&self) -> &str {
        RECOVERY_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
            EventSpec::of::<ViewInstall>(),
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<Suspect>(),
            EventSpec::of::<Alive>(),
            EventSpec::of::<CatchupRequest>(),
            EventSpec::of::<StateRequest>(),
            EventSpec::of::<StateChunk>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["JoinRequest", "Rejoin", "StateRequest", "StateChunk"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        let joining = param_or(params, "joining", false);
        Box::new(RecoverySession {
            sections: self.sections.clone(),
            members: param_node_list(params, "members"),
            view: None,
            phase: if joining {
                Phase::Joining
            } else {
                Phase::Member
            },
            buffered: VecDeque::new(),
            retry_ms: param_or(params, "retry_ms", 500u64).max(10),
            transfer_timeout_ms: param_or(params, "transfer_timeout_ms", 4000u64).max(100),
            chunk_bytes: param_or(params, "chunk_bytes", 1024usize).max(16),
            self_heal: param_or(params, "self_heal", true),
            suspected: BTreeSet::new(),
            serving: HashMap::new(),
            timer: None,
            phase_started_ms: 0,
            catchup: None,
            catchup_count: 0,
            catchup_done_ms: None,
            buffer_shed: 0,
        })
    }
}

/// Where a node stands on its way (back) into the group.
#[derive(Debug)]
enum Phase {
    /// A normal member: pass-through, donates snapshots on request.
    Member,
    /// Restarted, multicasting join requests until a view admits it.
    Joining,
    /// Admitted; pulling the state snapshot from a donor. Boxed: the sync
    /// state (round engine, chunk map) dwarfs the other variants.
    Syncing(Box<SyncState>),
}

/// Joiner-side state of one snapshot transfer.
#[derive(Debug)]
struct SyncState {
    /// Donor candidates: members of the join view, ascending id (the
    /// deterministic donor is the lowest live id).
    candidates: Vec<NodeId>,
    donor_index: usize,
    /// The shared round engine instantiated over *chunk indices*: the
    /// transfer epoch is the round ballot (held by the donor), received
    /// chunks are its acks, and the stall clock is the round's progress
    /// clock (refreshed per chunk, ticked by the retry timer).
    engine: RoundEngine<u32>,
    version: Option<u64>,
    total: Option<u32>,
    // bound: at most `total` chunks of one snapshot; cleared on failover.
    chunks: BTreeMap<u32, Bytes>,
    // bound: <= WINDOW indices (one request window).
    outstanding: BTreeSet<u32>,
    bytes: u64,
}

impl SyncState {
    fn donor(&self) -> Option<NodeId> {
        if self.candidates.is_empty() {
            return None;
        }
        Some(self.candidates[self.donor_index % self.candidates.len()])
    }

    /// The transfer epoch: the in-flight round's ballot epoch (bumped by
    /// re-opening the round on every donor failover).
    fn transfer_epoch(&self) -> u64 {
        self.engine.round_epoch().unwrap_or(0)
    }
}

/// Donor-side cache of one in-flight outgoing transfer: re-requested chunks
/// must come from the *same* snapshot version the stream started with.
#[derive(Debug)]
struct OutgoingTransfer {
    transfer_epoch: u64,
    version: u64,
    chunks: Vec<Bytes>,
    /// When the joiner last asked for a window — the cache holds a full
    /// snapshot copy, so entries whose transfer went quiet are evicted.
    last_request_ms: u64,
}

/// One in-flight *catch-up* transfer: a full member pulling a targeted
/// snapshot from a donor because gossip repair reported its missed span
/// evicted from every reachable repair log. Unlike a rejoin sync the stack
/// stays up, sends keep flowing and no view changes — only the snapshot
/// sections are refreshed underneath the running application.
#[derive(Debug)]
struct CatchupState {
    donor: NodeId,
    /// Round engine over chunk indices, opened at the catch-up epoch
    /// namespace (`CATCHUP_EPOCH_BASE + n`) so donor streams never mix with
    /// rejoin transfers.
    engine: RoundEngine<u32>,
    version: Option<u64>,
    total: Option<u32>,
    // bound: at most `total` chunks of one snapshot; dropped when the transfer completes or is abandoned.
    chunks: BTreeMap<u32, Bytes>,
    // bound: <= WINDOW indices (one request window).
    outstanding: BTreeSet<u32>,
    bytes: u64,
}

impl CatchupState {
    fn transfer_epoch(&self) -> u64 {
        self.engine.round_epoch().unwrap_or(0)
    }
}

/// Session state of the recovery layer.
pub struct RecoverySession {
    // bound: fixed at stack construction -- one entry per registered state section.
    sections: Vec<Rc<dyn StateSection>>,
    // bound: replaced wholesale on every view install; <= view size.
    members: Vec<NodeId>,
    view: Option<View>,
    phase: Phase,
    // bound: capped at BUFFER_CAP (drop-newest + shed counter); flushed when the join completes.
    buffered: VecDeque<Event>,
    retry_ms: u64,
    transfer_timeout_ms: u64,
    chunk_bytes: usize,
    /// Whether the expelled-but-alive detection is armed (default true).
    self_heal: bool,
    /// Members of the current view the local failure detector suspects —
    /// the input of the expelled-but-alive detection: when *every* other
    /// view member is suspected at once, the local node is overwhelmingly
    /// the one that was cut off.
    // bound: subset of the current view; retained on view install, cleared on resolution.
    suspected: BTreeSet<NodeId>,
    // bound: one transfer per active joiner; quiet transfers are evicted after the transfer timeout and non-members on view install.
    serving: HashMap<NodeId, OutgoingTransfer>,
    timer: Option<u64>,
    phase_started_ms: u64,
    /// The in-flight catch-up transfer, if any (at most one at a time).
    catchup: Option<CatchupState>,
    /// Completed catch-up transfers (drives the epoch counter and reports).
    catchup_count: u64,
    /// When the last catch-up completed — cooldown against floor-answer
    /// storms re-pulling a snapshot that was just installed.
    catchup_done_ms: Option<u64>,
    /// Join-view messages shed because the buffer hit `BUFFER_CAP`.
    buffer_shed: u64,
}

impl std::fmt::Debug for RecoverySession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoverySession")
            .field("phase", &self.phase)
            .field("members", &self.members)
            .field("buffered", &self.buffered.len())
            .field(
                "sections",
                &self
                    .sections
                    .iter()
                    .map(|section| section.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl RecoverySession {
    /// Whether the node is fully (re)joined.
    pub fn is_member(&self) -> bool {
        matches!(self.phase, Phase::Member)
    }

    /// Join-view messages shed at the buffer cap (see `BUFFER_CAP`).
    pub fn buffer_shed(&self) -> u64 {
        self.buffer_shed
    }

    /// Completed targeted catch-up transfers.
    pub fn catchup_count(&self) -> u64 {
        self.catchup_count
    }

    fn arm_timer(&mut self, ctx: &mut EventContext<'_>) {
        if let Some(timer_id) = self.timer.take() {
            ctx.cancel_timer(timer_id);
        }
        self.timer = Some(ctx.set_timer(self.retry_ms, RETRY_TAG));
    }

    fn send_join_request(&self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let targets: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|member| *member != local)
            .collect();
        if targets.is_empty() {
            return;
        }
        ctx.dispatch(Event::down(JoinRequest::new(
            local,
            Dest::Nodes(targets),
            Message::new(),
        )));
    }

    /// Asks the current donor for the next (or the still-missing) window of
    /// chunks.
    fn send_request(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let Phase::Syncing(sync) = &mut self.phase else {
            return;
        };
        let Some(donor) = sync.donor() else {
            return;
        };
        // Before the first chunk the total is unknown: an empty missing list
        // asks the donor for a fresh snapshot's first window. Afterwards the
        // engine's un-acked chunk indices are exactly what is missing.
        let missing: Vec<u32> = match sync.total {
            None => Vec::new(),
            Some(_) => sync.engine.missing().into_iter().take(WINDOW).collect(),
        };
        sync.outstanding = missing.iter().copied().collect();
        let mut message = Message::new();
        message.push(&StateRequestBody {
            transfer_epoch: sync.transfer_epoch(),
            missing,
        });
        ctx.dispatch(Event::down(StateRequest::new(
            local,
            Dest::Node(donor),
            message,
        )));
    }

    /// Starts (or ignores) a targeted catch-up against the given donor:
    /// gossip repair reported a missed span evicted from the donor's log, so
    /// only a snapshot section pull can close the gap. The stack stays up —
    /// no view change, no rejoin.
    fn begin_catchup(&mut self, donor: NodeId, ctx: &mut EventContext<'_>) {
        let now = ctx.now_ms();
        if !matches!(self.phase, Phase::Member) || self.catchup.is_some() || donor == ctx.node_id()
        {
            return; // rejoining already transfers; one catch-up at a time
        }
        // Floor answers arrive once per floored stream; the first one's
        // snapshot covers them all, so follow-ups inside the cooldown are
        // satisfied already.
        if let Some(done) = self.catchup_done_ms {
            if now.saturating_sub(done) < self.transfer_timeout_ms {
                return;
            }
        }
        let mut engine = RoundEngine::new();
        engine.open_at(
            Ballot::new(CATCHUP_EPOCH_BASE + self.catchup_count, donor),
            [],
            now,
        );
        self.catchup = Some(CatchupState {
            donor,
            engine,
            version: None,
            total: None,
            chunks: BTreeMap::new(),
            outstanding: BTreeSet::new(),
            bytes: 0,
        });
        ctx.deliver(DeliveryKind::Notification(format!(
            "repair floor from {donor}: pulling a targeted state snapshot to \
             close the evicted span"
        )));
        self.send_catchup_request(ctx);
        self.arm_timer(ctx);
    }

    /// Asks the catch-up donor for the next (or still-missing) chunk window.
    fn send_catchup_request(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let Some(catchup) = &mut self.catchup else {
            return;
        };
        let missing: Vec<u32> = match catchup.total {
            None => Vec::new(),
            Some(_) => catchup.engine.missing().into_iter().take(WINDOW).collect(),
        };
        catchup.outstanding = missing.iter().copied().collect();
        let mut message = Message::new();
        message.push(&StateRequestBody {
            transfer_epoch: catchup.transfer_epoch(),
            missing,
        });
        ctx.dispatch(Event::down(StateRequest::new(
            local,
            Dest::Node(catchup.donor),
            message,
        )));
    }

    /// Accounts one catch-up chunk; installs the snapshot when complete.
    /// Failures abandon the transfer instead of failing over — the donor was
    /// *targeted* (its digest proved it complete), and if the gap persists
    /// gossip raises a fresh [`CatchupRequest`] with the next floor answer.
    fn on_catchup_chunk(
        &mut self,
        from: NodeId,
        header: StateChunkHeader,
        payload: Bytes,
        ctx: &mut EventContext<'_>,
    ) {
        let now = ctx.now_ms();
        let complete = {
            let Some(catchup) = &mut self.catchup else {
                return;
            };
            if header.transfer_epoch != catchup.transfer_epoch() || from != catchup.donor {
                return; // a late chunk from an abandoned catch-up
            }
            match catchup.version {
                None => {
                    catchup.version = Some(header.version);
                    catchup.total = Some(header.total);
                    catchup.engine.extend_participants(0..header.total);
                    catchup.outstanding = (0..header.total.min(WINDOW as u32)).collect();
                }
                Some(version) if version != header.version => return,
                _ => {}
            }
            if header.index >= catchup.total.unwrap_or(0) {
                return;
            }
            let len = payload.len() as u64;
            if catchup.chunks.insert(header.index, payload).is_none() {
                catchup.bytes += len;
            }
            catchup
                .engine
                .record_ack(header.transfer_epoch, header.index);
            catchup.outstanding.remove(&header.index);
            catchup.engine.note_progress(now);
            catchup.engine.completed(&BTreeSet::new())
        };
        if complete {
            let catchup = self.catchup.take().expect("checked above");
            let mut blob = Vec::with_capacity(catchup.bytes as usize);
            for chunk in catchup.chunks.values() {
                blob.extend_from_slice(chunk);
            }
            if self.install_snapshot(&blob) {
                self.catchup_count += 1;
                self.catchup_done_ms = Some(now);
                ctx.deliver(DeliveryKind::CaughtUp {
                    donor: catchup.donor,
                    bytes: catchup.bytes,
                    chunks: catchup.total.unwrap_or(0),
                });
            } else {
                ctx.deliver(DeliveryKind::Notification(format!(
                    "catch-up donor {} streamed a malformed snapshot; abandoning \
                     (gossip will re-escalate if the gap persists)",
                    catchup.donor
                )));
            }
        } else {
            let drained = self
                .catchup
                .as_ref()
                .is_some_and(|catchup| catchup.outstanding.is_empty());
            if drained {
                self.send_catchup_request(ctx);
            }
        }
    }

    /// Moves to the next donor under a fresh transfer epoch (donor crashed,
    /// stalled, or streamed a malformed snapshot).
    fn failover(&mut self, reason: &str, ctx: &mut EventContext<'_>) {
        let next = match &self.phase {
            Phase::Syncing(sync) => sync.donor_index + 1,
            _ => return,
        };
        self.restart_transfer(next, reason, ctx);
    }

    /// Restarts the snapshot pull from the given donor rank under a fresh
    /// transfer epoch, discarding partial progress (chunks from different
    /// donors or epochs must never be mixed).
    fn restart_transfer(&mut self, donor_index: usize, reason: &str, ctx: &mut EventContext<'_>) {
        let now = ctx.now_ms();
        let Phase::Syncing(sync) = &mut self.phase else {
            return;
        };
        let failed = sync
            .donor()
            .map(|node| node.to_string())
            .unwrap_or_else(|| "<none>".into());
        sync.donor_index = donor_index;
        // Abort the old donor's round and open a fresh epoch under the new
        // donor: chunks from different donors or epochs must never be mixed.
        sync.engine.abort();
        let donor = sync.donor().unwrap_or_else(|| ctx.node_id());
        sync.engine.open(donor, [], now);
        sync.version = None;
        sync.total = None;
        sync.chunks.clear();
        sync.outstanding.clear();
        sync.bytes = 0;
        let next = sync
            .donor()
            .map(|node| node.to_string())
            .unwrap_or_else(|| "<none>".into());
        ctx.deliver(DeliveryKind::Notification(format!(
            "state transfer from {failed} {reason}; failing over to {next} \
             under transfer epoch {}",
            sync.transfer_epoch()
        )));
        self.send_request(ctx);
    }

    /// The join view installed: pick the deterministic donor (lowest live
    /// id) and start pulling the snapshot.
    fn begin_sync(&mut self, view: &View, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let now = ctx.now_ms();
        let candidates = view.others(local);
        if candidates.is_empty() {
            // Degenerate solo view: nothing to pull.
            self.finish(local, 0, ctx);
            return;
        }
        let mut engine = RoundEngine::new();
        engine.open(candidates[0], [], now); // transfer epoch 1, first donor
        self.phase = Phase::Syncing(Box::new(SyncState {
            candidates,
            donor_index: 0,
            engine,
            version: None,
            total: None,
            chunks: BTreeMap::new(),
            outstanding: BTreeSet::new(),
            bytes: 0,
        }));
        self.send_request(ctx);
        self.arm_timer(ctx);
    }

    /// Snapshot complete (or nothing to transfer): install, report, replay.
    fn finish(&mut self, donor: NodeId, chunk_count: u32, ctx: &mut EventContext<'_>) {
        let (bytes, epochs) = match &self.phase {
            Phase::Syncing(sync) => (sync.bytes, sync.transfer_epoch()),
            _ => (0, 0),
        };
        let elapsed_ms = ctx.now_ms().saturating_sub(self.phase_started_ms);
        self.phase = Phase::Member;
        if let Some(timer_id) = self.timer.take() {
            ctx.cancel_timer(timer_id);
        }
        ctx.deliver(DeliveryKind::Rejoined {
            donor,
            bytes,
            chunks: chunk_count,
            transfer_epochs: epochs,
            elapsed_ms,
        });
        // Replay the join view's messages *after* the installed snapshot, in
        // arrival order, so the application observes state-then-messages —
        // the view-synchronous delivery contract.
        for event in std::mem::take(&mut self.buffered) {
            ctx.dispatch(event);
        }
    }

    fn install_snapshot(&self, blob: &[u8]) -> bool {
        let mut r = WireReader::new(blob);
        let Ok(count) = r.get_u32() else {
            return false;
        };
        for _ in 0..count {
            let Ok(name) = r.get_str() else {
                return false;
            };
            let Ok(bytes) = r.get_bytes() else {
                return false;
            };
            if let Some(section) = self.sections.iter().find(|section| section.name() == name) {
                if !section.install(&bytes) {
                    return false;
                }
            }
        }
        true
    }

    /// Donor side: answer a request window from the cached (or freshly
    /// exported) snapshot.
    fn on_request(&mut self, from: NodeId, body: StateRequestBody, ctx: &mut EventContext<'_>) {
        if !matches!(self.phase, Phase::Member) {
            // A node that is itself still joining or syncing has no complete
            // state to donate; the joiner will fail over past it.
            return;
        }
        let local = ctx.node_id();
        let now = ctx.now_ms();
        // A completed (or abandoned) transfer stops requesting windows; its
        // cached snapshot copy is dropped once it has been quiet for longer
        // than the joiner-side failover timeout could possibly allow.
        let quiet_after = self.transfer_timeout_ms.saturating_mul(2);
        self.serving
            .retain(|_, transfer| now.saturating_sub(transfer.last_request_ms) < quiet_after);
        // Every transfer *starts* with an empty missing list (the joiner
        // does not know the total yet), so an empty list always means a
        // fresh export — a joiner restarting a second time (its transfer
        // epochs begin at 1 again) must never be served the snapshot cached
        // at its previous rejoin. Non-empty lists are window re-requests and
        // must come from the cached snapshot (same version, no torn state).
        let rebuild = body.missing.is_empty()
            || self
                .serving
                .get(&from)
                .map(|transfer| transfer.transfer_epoch != body.transfer_epoch)
                .unwrap_or(true);
        if rebuild {
            let blob = encode_snapshot(&self.sections);
            let chunks: Vec<Bytes> = if blob.is_empty() {
                vec![Bytes::new()]
            } else {
                (0..blob.len())
                    .step_by(self.chunk_bytes)
                    .map(|start| blob.slice(start..(start + self.chunk_bytes).min(blob.len())))
                    .collect()
            };
            self.serving.insert(
                from,
                OutgoingTransfer {
                    transfer_epoch: body.transfer_epoch,
                    version: now,
                    chunks,
                    last_request_ms: now,
                },
            );
        }
        let transfer = self.serving.get_mut(&from).expect("inserted above");
        transfer.last_request_ms = now;
        let transfer = &*transfer;
        let total = transfer.chunks.len() as u32;
        let indices: Vec<u32> = if body.missing.is_empty() {
            (0..total).take(WINDOW).collect()
        } else {
            body.missing
                .into_iter()
                .filter(|index| *index < total)
                .take(WINDOW * 4)
                .collect()
        };
        for index in indices {
            let mut message = Message::with_payload(transfer.chunks[index as usize].clone());
            message.push(&StateChunkHeader {
                transfer_epoch: transfer.transfer_epoch,
                version: transfer.version,
                index,
                total,
            });
            ctx.dispatch(Event::down(StateChunk::new(
                local,
                Dest::Node(from),
                message,
            )));
        }
    }

    /// Joiner side: account one arriving chunk; finish or pull the next
    /// window.
    fn on_chunk(
        &mut self,
        from: NodeId,
        header: StateChunkHeader,
        payload: Bytes,
        ctx: &mut EventContext<'_>,
    ) {
        let now = ctx.now_ms();
        let complete = {
            let Phase::Syncing(sync) = &mut self.phase else {
                return;
            };
            if header.transfer_epoch != sync.transfer_epoch() || Some(from) != sync.donor() {
                return; // a late chunk from a failed-over donor
            }
            match sync.version {
                None => {
                    sync.version = Some(header.version);
                    sync.total = Some(header.total);
                    // The first chunk reveals the participant set: one round
                    // participant per chunk index. The initial request could
                    // not name indices (the total was unknown); the donor
                    // answered with the first window, which is what is
                    // outstanding now.
                    sync.engine.extend_participants(0..header.total);
                    sync.outstanding = (0..header.total.min(WINDOW as u32)).collect();
                }
                Some(version) if version != header.version => return,
                _ => {}
            }
            if header.index >= sync.total.unwrap_or(0) {
                return;
            }
            let len = payload.len() as u64;
            if sync.chunks.insert(header.index, payload).is_none() {
                sync.bytes += len;
            }
            sync.engine.record_ack(header.transfer_epoch, header.index);
            sync.outstanding.remove(&header.index);
            sync.engine.note_progress(now);
            sync.engine.completed(&BTreeSet::new())
        };
        if complete {
            let Phase::Syncing(sync) = &self.phase else {
                return;
            };
            let total = sync.total.unwrap_or(0);
            let mut blob = Vec::with_capacity(sync.bytes as usize);
            for chunk in sync.chunks.values() {
                blob.extend_from_slice(chunk);
            }
            if self.install_snapshot(&blob) {
                self.finish(from, total, ctx);
            } else {
                self.failover("streamed a malformed snapshot", ctx);
            }
        } else {
            let outstanding_drained = matches!(&self.phase, Phase::Syncing(sync)
                if sync.outstanding.is_empty());
            if outstanding_drained {
                self.send_request(ctx); // pull the next window
            }
        }
    }

    /// Expelled-but-alive detection: a never-crashed member whose failure
    /// detector ends up suspecting *every* other view member is, with
    /// overwhelming likelihood, the one the group expelled (a false
    /// suspicion, a partition). It re-enters through the existing joining
    /// path: the vsync layer above is reset into joining mode via a
    /// [`Rejoin`] event, and the node multicasts [`JoinRequest`]s like a
    /// restarted node would. The threshold of two suspected peers keeps the
    /// legitimate last-survivor case (a 2-member group whose peer crashes)
    /// from blocking itself.
    fn maybe_self_heal(&mut self, ctx: &mut EventContext<'_>) {
        if !self.self_heal || !matches!(self.phase, Phase::Member) {
            return;
        }
        let local = ctx.node_id();
        let Some(view) = &self.view else {
            return;
        };
        let others = view.others(local);
        if others.len() < 2 || !others.iter().all(|member| self.suspected.contains(member)) {
            return;
        }
        self.suspected.clear();
        self.phase = Phase::Joining;
        self.phase_started_ms = ctx.now_ms();
        ctx.deliver(DeliveryKind::Notification(
            "every other view member suspected: assuming false-suspicion expulsion, \
             re-entering through the joining path"
                .into(),
        ));
        ctx.dispatch(Event::up(Rejoin {}));
        self.send_join_request(ctx);
        self.arm_timer(ctx);
    }

    fn on_timer(&mut self, ctx: &mut EventContext<'_>) {
        let now = ctx.now_ms();
        match &mut self.phase {
            Phase::Member => {
                // The only member-phase timer work is an in-flight catch-up:
                // re-request lost chunks, or abandon a donor that went quiet
                // (gossip re-escalates with a fresh floor answer if needed).
                let Some(catchup) = &mut self.catchup else {
                    return; // no re-arm
                };
                if catchup.engine.tick(now, self.transfer_timeout_ms) == Tick::TimedOut {
                    let donor = catchup.donor;
                    self.catchup = None;
                    ctx.deliver(DeliveryKind::Notification(format!(
                        "catch-up from {donor} stalled; abandoning the transfer"
                    )));
                    return; // no re-arm
                }
                self.send_catchup_request(ctx);
            }
            Phase::Joining => self.send_join_request(ctx),
            Phase::Syncing(sync) => {
                if sync.engine.tick(now, self.transfer_timeout_ms) == Tick::TimedOut {
                    self.failover("stalled", ctx);
                } else {
                    // Re-request whatever is outstanding (lost chunks) or
                    // kick off the next window.
                    self.send_request(ctx);
                }
            }
        }
        self.arm_timer(ctx);
    }
}

impl Session for RecoverySession {
    fn layer_name(&self) -> &str {
        RECOVERY_LAYER
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            // Fires on every stack the shared session is woven into —
            // including replacements mid-join — so the retry timer must be
            // re-armed here (the old channel's timers die with it).
            if !matches!(self.phase, Phase::Member) {
                if self.phase_started_ms == 0 {
                    self.phase_started_ms = ctx.now_ms();
                }
                if matches!(self.phase, Phase::Joining) {
                    self.send_join_request(ctx);
                }
                self.arm_timer(ctx);
            }
            ctx.forward(event);
            return;
        }

        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == RECOVERY_LAYER {
                if timer.tag == RETRY_TAG && self.timer == Some(timer.timer_id) {
                    self.timer = None;
                    self.on_timer(ctx);
                }
                return;
            }
            ctx.forward(event);
            return;
        }

        if let Some(install) = event.get::<ViewInstall>() {
            let view = install.view.clone();
            self.serving.retain(|node, _| view.contains(*node));
            self.suspected.retain(|node| view.contains(*node));
            if self
                .catchup
                .as_ref()
                .is_some_and(|catchup| !view.contains(catchup.donor))
            {
                self.catchup = None;
            }
            let admitted = matches!(self.phase, Phase::Joining) && view.contains(ctx.node_id());
            self.view = Some(view.clone());
            if admitted {
                self.begin_sync(&view, ctx);
            } else if let Phase::Syncing(sync) = &mut self.phase {
                // The view moved while syncing: re-derive the candidate
                // list. If the current donor survived, keep streaming from
                // it; if it was expelled, restart from the lowest live donor
                // under a fresh transfer epoch right away (stale chunks must
                // not corrupt the new stream, and waiting for the progress
                // timeout would add seconds to every such rejoin).
                let local = ctx.node_id();
                let donor = sync.donor();
                let candidates = view.others(local);
                if !candidates.is_empty() {
                    sync.candidates = candidates;
                    match donor
                        .and_then(|donor| sync.candidates.iter().position(|node| *node == donor))
                    {
                        Some(position) => sync.donor_index = position,
                        None => self.restart_transfer(0, "donor expelled from the view", ctx),
                    }
                }
            }
            ctx.forward(event);
            return;
        }

        if let Some(suspect) = event.get::<Suspect>() {
            let node = suspect.node;
            self.suspected.insert(node);
            let donor_died = matches!(&self.phase, Phase::Syncing(sync)
                if sync.donor() == Some(node));
            if donor_died {
                self.failover("donor suspected", ctx);
            }
            if self
                .catchup
                .as_ref()
                .is_some_and(|catchup| catchup.donor == node)
            {
                // A catch-up donor is not failed over — it was *targeted*;
                // gossip re-escalates against a live digest sender instead.
                self.catchup = None;
            }
            // The self-heal trigger runs before the suspicion is forwarded,
            // so the Rejoin reset reaches vsync ahead of the Suspect that
            // completed the everyone-is-suspected condition — the expelled
            // node never installs a delusional solo view.
            self.maybe_self_heal(ctx);
            ctx.forward(event);
            return;
        }

        if let Some(alive) = event.get::<Alive>() {
            self.suspected.remove(&alive.node);
            ctx.forward(event);
            return;
        }

        if let Some(request) = event.get::<CatchupRequest>() {
            // Raised by the gossip layer below when a repair floor told it a
            // missed span is unrecoverable by NACK repair. Consumed here —
            // the escalation is recovery's to drive.
            let donor = request.donor;
            self.begin_catchup(donor, ctx);
            return;
        }

        if event.is::<StateRequest>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(request) = event.get_mut::<StateRequest>() else {
                return;
            };
            let from = request.header.source;
            let Ok(body) = request.message.pop::<StateRequestBody>() else {
                return;
            };
            self.on_request(from, body, ctx);
            return;
        }

        if event.is::<StateChunk>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(chunk) = event.get_mut::<StateChunk>() else {
                return;
            };
            let from = chunk.header.source;
            let Ok(header) = chunk.message.pop::<StateChunkHeader>() else {
                return;
            };
            let payload = chunk.message.payload().clone();
            if header.transfer_epoch >= CATCHUP_EPOCH_BASE {
                self.on_catchup_chunk(from, header, payload, ctx);
            } else {
                self.on_chunk(from, header, payload, ctx);
            }
            return;
        }

        // Application data: messages delivered in the join view are buffered
        // until the snapshot installed, so the application never observes a
        // join-view message before the state it causally follows.
        if event.is::<DataEvent>()
            && event.direction == Direction::Up
            && !matches!(self.phase, Phase::Member)
        {
            if self.buffered.len() >= BUFFER_CAP {
                // Drop-newest: the kept prefix still replays in arrival
                // order, and the shed tail is exactly what gossip repair
                // recovers once the join completes.
                self.buffer_shed += 1;
                return;
            }
            self.buffered.push_back(event);
            return;
        }

        ctx.forward(event);
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;

    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;

    use super::*;

    /// A toy section backed by shared bytes.
    struct TestSection {
        name: &'static str,
        state: Rc<RefCell<Vec<u8>>>,
    }

    impl StateSection for TestSection {
        fn name(&self) -> &str {
            self.name
        }
        fn export(&self) -> Vec<u8> {
            self.state.borrow().clone()
        }
        fn install(&self, bytes: &[u8]) -> bool {
            *self.state.borrow_mut() = bytes.to_vec();
            true
        }
    }

    fn section(
        name: &'static str,
        contents: &[u8],
    ) -> (Rc<dyn StateSection>, Rc<RefCell<Vec<u8>>>) {
        let state = Rc::new(RefCell::new(contents.to_vec()));
        (
            Rc::new(TestSection {
                name,
                state: state.clone(),
            }),
            state,
        )
    }

    fn params(members: &[u32], joining: bool) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params.insert("joining".into(), joining.to_string());
        params.insert("chunk_bytes".into(), "16".into());
        params
    }

    fn fire_pending_timers(harness: &mut Harness, platform: &mut TestPlatform) {
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        let cancelled: Vec<_> = std::mem::take(&mut platform.cancelled);
        for (_, key) in timers {
            if !cancelled.contains(&key) {
                harness.fire_timer(key, platform);
            }
        }
    }

    fn requests(events: &[Event]) -> Vec<(NodeId, StateRequestBody)> {
        events
            .iter()
            .filter_map(|event| {
                event.get::<StateRequest>().map(|request| {
                    let body = request.message.clone().pop::<StateRequestBody>().unwrap();
                    let Dest::Node(donor) = request.header.dest else {
                        panic!("state requests are unicast");
                    };
                    (donor, body)
                })
            })
            .collect()
    }

    fn chunks(events: &[Event]) -> Vec<(StateChunkHeader, Bytes)> {
        events
            .iter()
            .filter_map(|event| {
                event.get::<StateChunk>().map(|chunk| {
                    let mut message = chunk.message.clone();
                    let header = message.pop::<StateChunkHeader>().unwrap();
                    (header, message.payload().clone())
                })
            })
            .collect()
    }

    /// Installs a view on the harnessed layer, returning everything the
    /// layer emitted downward (run_down drains the bottom capture itself).
    fn install_view(
        harness: &mut Harness,
        platform: &mut TestPlatform,
        members: &[u32],
    ) -> Vec<Event> {
        harness.run_down(
            Event::down(ViewInstall {
                view: View::new(1, members.iter().copied().map(NodeId).collect()),
            }),
            platform,
        )
    }

    /// Drives a complete donor→joiner transfer through two harnesses and
    /// returns the joiner's deliveries.
    fn run_transfer(
        donor_state: &[u8],
        joiner_members: &[u32],
    ) -> (Rc<RefCell<Vec<u8>>>, TestPlatform) {
        let (donor_section, _) = section("s", donor_state);
        let mut donor_platform = TestPlatform::new(NodeId(0));
        let mut donor = Harness::new(
            RecoveryLayer::with_sections(vec![donor_section]),
            &params(joiner_members, false),
            &mut donor_platform,
        );

        let (joiner_section, joiner_state) = section("s", b"");
        let mut joiner_platform = TestPlatform::new(NodeId(2));
        let mut joiner = Harness::new(
            RecoveryLayer::with_sections(vec![joiner_section]),
            &params(joiner_members, true),
            &mut joiner_platform,
        );

        // Admission: a view containing the joiner installs (the initial
        // state request rides the same drain).
        let mut outgoing = requests(&install_view(
            &mut joiner,
            &mut joiner_platform,
            joiner_members,
        ));

        // Ferry requests and chunks between the two harnesses until the
        // joiner reports completion or nothing moves.
        for _ in 0..64 {
            if outgoing.is_empty() {
                break;
            }
            for (_, body) in outgoing.drain(..) {
                let mut message = Message::new();
                message.push(&body);
                donor.run_up(
                    Event::up(StateRequest::new(NodeId(2), Dest::Node(NodeId(0)), message)),
                    &mut donor_platform,
                );
            }
            for (header, payload) in chunks(&donor.drain_down()) {
                let mut message = Message::with_payload(payload);
                message.push(&header);
                joiner.run_up(
                    Event::up(StateChunk::new(NodeId(0), Dest::Node(NodeId(2)), message)),
                    &mut joiner_platform,
                );
            }
            outgoing = requests(&joiner.drain_down());
        }
        (joiner_state, joiner_platform)
    }

    #[test]
    fn snapshot_blobs_roundtrip_through_sections() {
        let (a, _) = section("alpha", b"aaaa");
        let (b, _) = section("beta", b"bb");
        let blob = encode_snapshot(&[a, b]);

        let (a2, state_a) = section("alpha", b"");
        let (b2, state_b) = section("beta", b"");
        let session = RecoverySession {
            sections: vec![a2, b2],
            members: vec![],
            view: None,
            phase: Phase::Member,
            buffered: VecDeque::new(),
            retry_ms: 100,
            transfer_timeout_ms: 1000,
            chunk_bytes: 16,
            self_heal: true,
            suspected: BTreeSet::new(),
            serving: HashMap::new(),
            timer: None,
            phase_started_ms: 0,
            catchup: None,
            catchup_count: 0,
            catchup_done_ms: None,
            buffer_shed: 0,
        };
        assert!(session.install_snapshot(&blob));
        assert_eq!(&*state_a.borrow(), b"aaaa");
        assert_eq!(&*state_b.borrow(), b"bb");
        assert!(!session.install_snapshot(b"\xff\xff"), "malformed rejected");
    }

    #[test]
    fn a_joining_node_multicasts_join_requests_until_admitted() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut recovery = Harness::new(
            RecoveryLayer::new(),
            &params(&[0, 1, 2], true),
            &mut platform,
        );

        // ChannelInit fired inside Harness::new and was drained; the retry
        // tick re-sends the request.
        platform.advance(500);
        fire_pending_timers(&mut recovery, &mut platform);
        let down = recovery.drain_down();
        let joins: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<JoinRequest>())
            .collect();
        assert_eq!(joins.len(), 1);
        assert_eq!(
            joins[0].get::<JoinRequest>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(0), NodeId(1)])
        );
    }

    #[test]
    fn admission_pulls_from_the_lowest_id_donor_and_installs_the_snapshot() {
        let (state, platform) = run_transfer(
            b"the donor's replicated state, longer than one chunk",
            &[0, 1, 2],
        );
        assert_eq!(
            &*state.borrow(),
            b"the donor's replicated state, longer than one chunk"
        );
        let mut platform = platform;
        let rejoined: Vec<_> = platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::Rejoined {
                    donor,
                    bytes,
                    chunks,
                    transfer_epochs,
                    ..
                } => Some((donor, bytes, chunks, transfer_epochs)),
                _ => None,
            })
            .collect();
        assert_eq!(rejoined.len(), 1);
        let (donor, bytes, chunk_count, epochs) = rejoined[0];
        assert_eq!(donor, NodeId(0), "lowest live id donates");
        assert!(bytes > 0);
        assert!(chunk_count > 1, "chunked transfer ({chunk_count} chunks)");
        assert_eq!(epochs, 1, "first donor succeeded");
    }

    #[test]
    fn join_view_messages_are_buffered_and_replayed_after_install() {
        let (donor_section, _) = section("s", b"history");
        let mut donor_platform = TestPlatform::new(NodeId(0));
        let mut donor = Harness::new(
            RecoveryLayer::with_sections(vec![donor_section]),
            &params(&[0, 1, 2], false),
            &mut donor_platform,
        );

        let (joiner_section, _) = section("s", b"");
        let mut platform = TestPlatform::new(NodeId(2));
        let mut joiner = Harness::new(
            RecoveryLayer::with_sections(vec![joiner_section]),
            &params(&[0, 1, 2], true),
            &mut platform,
        );
        let mut outgoing = requests(&install_view(&mut joiner, &mut platform, &[0, 1, 2]));

        // A data message arrives mid-transfer: held back.
        let held = joiner.run_up(
            Event::up(DataEvent::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                Message::with_payload(&b"early"[..]),
            )),
            &mut platform,
        );
        assert!(held.iter().all(|event| !event.is::<DataEvent>()));

        // Complete the transfer.
        for _ in 0..16 {
            if outgoing.is_empty() {
                break;
            }
            for (_, body) in outgoing.drain(..) {
                let mut message = Message::new();
                message.push(&body);
                donor.run_up(
                    Event::up(StateRequest::new(NodeId(2), Dest::Node(NodeId(0)), message)),
                    &mut donor_platform,
                );
            }
            for (header, payload) in chunks(&donor.drain_down()) {
                let mut message = Message::with_payload(payload);
                message.push(&header);
                let up = joiner.run_up(
                    Event::up(StateChunk::new(NodeId(0), Dest::Node(NodeId(2)), message)),
                    &mut platform,
                );
                // Once the final chunk installs, the buffered message is
                // replayed upward.
                if up.iter().any(|event| event.is::<DataEvent>()) {
                    return;
                }
            }
            outgoing = requests(&joiner.drain_down());
        }
        panic!("the buffered join-view message was never replayed");
    }

    #[test]
    fn a_suspected_donor_fails_over_under_a_fresh_transfer_epoch() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut joiner = Harness::new(
            RecoveryLayer::new(),
            &params(&[0, 1, 2], true),
            &mut platform,
        );
        let first = requests(&install_view(&mut joiner, &mut platform, &[0, 1, 2]));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].0, NodeId(0));
        assert_eq!(first[0].1.transfer_epoch, 1);

        // The failure detector suspects the donor mid-transfer.
        let forwarded = joiner.run_up(Event::up(Suspect { node: NodeId(0) }), &mut platform);
        assert!(
            forwarded.iter().any(|event| event.is::<Suspect>()),
            "suspicions keep flowing to the membership layer above"
        );
        let retried = requests(&joiner.drain_down());
        assert_eq!(retried.len(), 1);
        assert_eq!(retried[0].0, NodeId(1), "next-lowest donor takes over");
        assert_eq!(retried[0].1.transfer_epoch, 2, "fresh transfer epoch");

        // A late chunk from the dead donor is ignored (wrong epoch).
        let mut message = Message::with_payload(Bytes::from_static(b"zombie"));
        message.push(&StateChunkHeader {
            transfer_epoch: 1,
            version: 7,
            index: 0,
            total: 1,
        });
        joiner.run_up(
            Event::up(StateChunk::new(NodeId(0), Dest::Node(NodeId(2)), message)),
            &mut platform,
        );
        assert!(platform
            .take_deliveries()
            .iter()
            .all(|delivery| !matches!(delivery.kind, DeliveryKind::Rejoined { .. })));
    }

    #[test]
    fn a_stalled_transfer_times_out_into_failover() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut joiner = Harness::new(
            RecoveryLayer::new(),
            &params(&[0, 1, 2], true),
            &mut platform,
        );
        install_view(&mut joiner, &mut platform, &[0, 1, 2]);

        // No chunk ever arrives; past the transfer timeout the joiner moves
        // to the next donor.
        platform.advance(4000);
        fire_pending_timers(&mut joiner, &mut platform);
        let retried = requests(&joiner.drain_down());
        assert!(!retried.is_empty());
        assert_eq!(retried[0].0, NodeId(1));
        assert_eq!(retried[0].1.transfer_epoch, 2);
    }

    #[test]
    fn member_nodes_pass_data_through_and_serve_requests_from_cache() {
        let (donor_section, state) = section("s", b"0123456789abcdef0123456789abcdef0123");
        let mut platform = TestPlatform::new(NodeId(0));
        let mut donor = Harness::new(
            RecoveryLayer::with_sections(vec![donor_section]),
            &params(&[0, 1, 2], false),
            &mut platform,
        );

        // Pass-through for data.
        let up = donor.run_up(
            Event::up(DataEvent::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                Message::with_payload(&b"x"[..]),
            )),
            &mut platform,
        );
        assert_eq!(up.len(), 1, "members forward data untouched");

        // First request snapshots the state and answers a window.
        let mut message = Message::new();
        message.push(&StateRequestBody {
            transfer_epoch: 1,
            missing: vec![],
        });
        donor.run_up(
            Event::up(StateRequest::new(NodeId(2), Dest::Node(NodeId(0)), message)),
            &mut platform,
        );
        let first = chunks(&donor.drain_down());
        assert!(!first.is_empty());
        let version = first[0].0.version;

        // The donor's live state changes; a re-request of a missing chunk
        // within the same transfer epoch still comes from the cached
        // snapshot (same version) — no torn snapshots.
        state.borrow_mut().extend_from_slice(b"MORE");
        let mut message = Message::new();
        message.push(&StateRequestBody {
            transfer_epoch: 1,
            missing: vec![0],
        });
        donor.run_up(
            Event::up(StateRequest::new(NodeId(2), Dest::Node(NodeId(0)), message)),
            &mut platform,
        );
        let again = chunks(&donor.drain_down());
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].0.version, version, "cached snapshot version");
        assert_eq!(again[0].1, first[0].1, "identical chunk bytes");
    }

    #[test]
    fn suspecting_every_other_member_triggers_the_rejoin_path() {
        // Expelled-but-alive self-heal: a member (never crashed) whose
        // failure detector ends up suspecting everyone else concludes it
        // was the one expelled and re-enters through the joining path.
        let mut platform = TestPlatform::new(NodeId(2));
        let mut recovery = Harness::new(
            RecoveryLayer::new(),
            &params(&[0, 1, 2], false),
            &mut platform,
        );
        install_view(&mut recovery, &mut platform, &[0, 1, 2]);

        // One of two peers suspected: no reaction yet.
        let up = recovery.run_up(Event::up(Suspect { node: NodeId(0) }), &mut platform);
        assert!(up.iter().any(|event| event.is::<Suspect>()));
        assert!(up.iter().all(|event| !event.is::<Rejoin>()));
        assert!(recovery
            .drain_down()
            .iter()
            .all(|event| !event.is::<JoinRequest>()));

        // The second suspicion completes the condition: the Rejoin reset is
        // dispatched upward *before* the suspicion itself, and join
        // requests go out to the boot membership.
        let up = recovery.run_up(Event::up(Suspect { node: NodeId(1) }), &mut platform);
        let rejoin_at = up.iter().position(|event| event.is::<Rejoin>());
        let suspect_at = up.iter().position(|event| event.is::<Suspect>());
        assert!(rejoin_at.is_some(), "the vsync reset is raised");
        assert!(
            rejoin_at < suspect_at,
            "the reset must reach vsync before the final suspicion"
        );
        let down = recovery.drain_down();
        assert!(down.iter().any(|event| event.is::<JoinRequest>()));

        // Re-admission (a view containing the node) starts the state pull,
        // exactly like a restarted node's rejoin.
        let pulls = requests(&install_view(&mut recovery, &mut platform, &[0, 1, 2]));
        assert_eq!(pulls.len(), 1, "re-admission starts the snapshot pull");
        assert_eq!(pulls[0].0, NodeId(0), "lowest live id donates");
    }

    #[test]
    fn an_alive_member_resets_the_self_heal_evidence() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut recovery = Harness::new(
            RecoveryLayer::new(),
            &params(&[0, 1, 2], false),
            &mut platform,
        );
        install_view(&mut recovery, &mut platform, &[0, 1, 2]);

        recovery.run_up(Event::up(Suspect { node: NodeId(0) }), &mut platform);
        let healed = recovery.run_up(Event::up(Alive { node: NodeId(0) }), &mut platform);
        assert!(
            healed.iter().any(|event| event.is::<Alive>()),
            "alive notifications keep flowing upward"
        );
        // Node 1's suspicion alone no longer completes the condition.
        let up = recovery.run_up(Event::up(Suspect { node: NodeId(1) }), &mut platform);
        assert!(up.iter().all(|event| !event.is::<Rejoin>()));
    }

    #[test]
    fn two_member_groups_never_self_heal() {
        // The last survivor of a 2-member group legitimately suspects
        // "everyone"; it must keep running solo, not block itself joining.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut recovery =
            Harness::new(RecoveryLayer::new(), &params(&[1, 2], false), &mut platform);
        install_view(&mut recovery, &mut platform, &[1, 2]);
        let up = recovery.run_up(Event::up(Suspect { node: NodeId(2) }), &mut platform);
        assert!(up.iter().all(|event| !event.is::<Rejoin>()));
        assert!(recovery
            .drain_down()
            .iter()
            .all(|event| !event.is::<JoinRequest>()));
    }

    #[test]
    fn request_and_chunk_bodies_roundtrip() {
        let body = StateRequestBody {
            transfer_epoch: 3,
            missing: vec![0, 4, 9],
        };
        assert_eq!(
            StateRequestBody::from_bytes(&body.to_bytes()).unwrap(),
            body
        );
        let header = StateChunkHeader {
            transfer_epoch: 2,
            version: 99,
            index: 4,
            total: 11,
        };
        assert_eq!(
            StateChunkHeader::from_bytes(&header.to_bytes()).unwrap(),
            header
        );
    }
    #[test]
    fn adversarial_state_transfer_encodings_are_rejected() {
        // A request whose missing-chunk list claims more entries than the
        // payload carries fails cleanly (no attacker-sized allocation).
        let mut w = WireWriter::new();
        w.put_u64(1);
        w.put_u32(u32::MAX);
        w.put_u32(5);
        assert!(StateRequestBody::from_bytes(&w.finish()).is_err());

        // Every truncation of a valid request and chunk header errors out.
        let request = StateRequestBody {
            transfer_epoch: 3,
            missing: vec![1, 4, 9],
        };
        let bytes = request.to_bytes().to_vec();
        for cut in 0..bytes.len() {
            assert!(StateRequestBody::from_bytes(&bytes[..cut]).is_err());
        }
        let header = StateChunkHeader {
            transfer_epoch: 3,
            version: 7,
            index: 1,
            total: 4,
        };
        let bytes = header.to_bytes().to_vec();
        for cut in 0..bytes.len() {
            assert!(StateChunkHeader::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn corrupted_snapshot_blobs_install_as_failures_not_panics() {
        let (alpha, _) = section("alpha", b"");
        let session = RecoverySession {
            sections: vec![alpha],
            members: vec![],
            view: None,
            phase: Phase::Member,
            buffered: VecDeque::new(),
            retry_ms: 100,
            transfer_timeout_ms: 1000,
            chunk_bytes: 16,
            self_heal: true,
            suspected: BTreeSet::new(),
            serving: HashMap::new(),
            timer: None,
            phase_started_ms: 0,
            catchup: None,
            catchup_count: 0,
            catchup_done_ms: None,
            buffer_shed: 0,
        };

        // A snapshot blob advertising u32::MAX sections with no section
        // bytes behind it is rejected on the first missing section.
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        assert!(!session.install_snapshot(&w.finish()));

        // Single-bit fuzz over a well-formed two-section blob: install
        // either succeeds (the flip hit ignorable content) or reports
        // failure — it never panics.
        let mut w = WireWriter::new();
        w.put_u32(2);
        w.put_str("alpha");
        w.put_bytes(&[1, 2, 3]);
        w.put_str("beta");
        w.put_bytes(&[4, 5]);
        let bytes = w.finish().to_vec();
        for index in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[index] ^= 1 << bit;
                let _ = session.install_snapshot(&mutated);
            }
        }
    }

    #[test]
    fn a_catchup_request_pulls_a_targeted_snapshot_without_a_view_change() {
        // Donor (member, node 0) with live section state; puller (member,
        // node 2) holding an empty copy. A repair-floor escalation from the
        // gossip layer (`CatchupRequest`) pulls the section snapshot over
        // the ordinary StateRequest/StateChunk wire — the stack stays up:
        // no rejoin, no view change, no teardown.
        let payload = b"0123456789abcdef0123456789abcdef0123";
        let (donor_section, _) = section("s", payload);
        let mut donor_platform = TestPlatform::new(NodeId(0));
        let mut donor = Harness::new(
            RecoveryLayer::with_sections(vec![donor_section]),
            &params(&[0, 1, 2], false),
            &mut donor_platform,
        );

        let (puller_section, puller_state) = section("s", b"");
        let mut platform = TestPlatform::new(NodeId(2));
        let mut puller = Harness::new(
            RecoveryLayer::with_sections(vec![puller_section]),
            &params(&[0, 1, 2], false),
            &mut platform,
        );

        puller.run_up(
            Event::up(CatchupRequest { donor: NodeId(0) }),
            &mut platform,
        );
        let mut outgoing = requests(&puller.drain_down());
        assert_eq!(outgoing.len(), 1);
        assert_eq!(outgoing[0].0, NodeId(0), "the pull targets the donor");
        assert!(
            outgoing[0].1.transfer_epoch >= CATCHUP_EPOCH_BASE,
            "catch-up transfers use the epoch namespace disjoint from rejoins"
        );

        // A second escalation while one is in flight is a no-op.
        puller.run_up(
            Event::up(CatchupRequest { donor: NodeId(1) }),
            &mut platform,
        );
        assert!(
            requests(&puller.drain_down()).is_empty(),
            "one catch-up at a time"
        );

        // Ferry request/chunk rounds until the transfer completes.
        for _ in 0..64 {
            if outgoing.is_empty() {
                break;
            }
            for (_, body) in outgoing.drain(..) {
                let mut message = Message::new();
                message.push(&body);
                donor.run_up(
                    Event::up(StateRequest::new(NodeId(2), Dest::Node(NodeId(0)), message)),
                    &mut donor_platform,
                );
            }
            for (header, chunk) in chunks(&donor.drain_down()) {
                let mut message = Message::with_payload(chunk);
                message.push(&header);
                puller.run_up(
                    Event::up(StateChunk::new(NodeId(0), Dest::Node(NodeId(2)), message)),
                    &mut platform,
                );
            }
            outgoing = requests(&puller.drain_down());
        }

        assert_eq!(
            puller_state.borrow().as_slice(),
            &payload[..],
            "the missed span is installed from the snapshot"
        );
        assert!(platform.take_deliveries().iter().any(|delivery| matches!(
            &delivery.kind,
            DeliveryKind::CaughtUp { donor, .. } if *donor == NodeId(0)
        )));

        // The floor answer that triggered the escalation may be repeated by
        // other digest senders: inside the cooldown the puller stays quiet
        // instead of re-pulling the same snapshot.
        puller.run_up(
            Event::up(CatchupRequest { donor: NodeId(0) }),
            &mut platform,
        );
        assert!(
            requests(&puller.drain_down()).is_empty(),
            "repeat escalations inside the cooldown are no-ops"
        );
    }
}
