//! Sequencer-based total ordering.
//!
//! The view coordinator acts as the sequencer: every data message is
//! identified by `(origin, local sequence number)`; the sequencer assigns a
//! global delivery order and multicasts it in [`OrderInfo`] control messages.
//! Every member (including the sender, which keeps a local copy of its own
//! messages) delivers data strictly in global-sequence order.

use std::collections::{BTreeMap, HashMap};

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;

use crate::events::{OrderInfo, ViewInstall};
use crate::headers::{OrderHeader, TotalIdHeader};
use crate::view::View;

/// Registered name of the total ordering layer.
pub const TOTAL_LAYER: &str = "total";

/// The sequencer-based total ordering layer.
///
/// Parameters:
///
/// * `members` — comma-separated initial group membership (the lowest id is
///   the sequencer).
pub struct TotalLayer;

impl Layer for TotalLayer {
    fn name(&self) -> &str {
        TOTAL_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<OrderInfo>(),
            EventSpec::of::<ViewInstall>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["OrderInfo"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(TotalSession {
            view: View::initial(param_node_list(params, "members")),
            local_seq: 0,
            next_global_assignment: 1,
            next_delivery: 1,
            order: BTreeMap::new(),
            buffered: HashMap::new(),
            delivered: 0,
        })
    }
}

/// Session state of the total ordering layer.
#[derive(Debug)]
pub struct TotalSession {
    view: View,
    local_seq: u64,
    /// Next global sequence number the sequencer hands out.
    next_global_assignment: u64,
    /// Next global sequence number to deliver locally.
    next_delivery: u64,
    /// Global order as learnt from the sequencer: global seq -> message id.
    // bound: drained in lockstep with `next_delivery` -- holds only the undelivered suffix.
    order: BTreeMap<u64, TotalIdHeader>,
    /// Messages waiting for their position in the global order.
    // bound: entries leave on delivery; holds only messages awaiting their global slot.
    buffered: HashMap<TotalIdHeader, Event>,
    delivered: u64,
}

impl TotalSession {
    fn is_sequencer(&self, local: NodeId) -> bool {
        self.view.coordinator() == Some(local)
    }

    fn assign_order(&mut self, id: TotalIdHeader, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        let global_seq = self.next_global_assignment;
        self.next_global_assignment += 1;
        self.order.insert(global_seq, id);

        let others = self.view.others(local);
        if !others.is_empty() {
            let mut message = Message::new();
            message.push(&OrderHeader {
                message: id,
                global_seq,
            });
            ctx.dispatch(Event::down(OrderInfo::new(
                local,
                Dest::Nodes(others),
                message,
            )));
        }
    }

    fn try_deliver(&mut self, ctx: &mut EventContext<'_>) {
        while let Some(id) = self.order.get(&self.next_delivery).copied() {
            let Some(event) = self.buffered.remove(&id) else {
                return; // the ordered message has not arrived yet
            };
            self.order.remove(&self.next_delivery);
            self.next_delivery += 1;
            self.delivered += 1;
            ctx.forward(event);
        }
    }
}

impl Session for TotalSession {
    fn layer_name(&self) -> &str {
        TOTAL_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if let Some(install) = event.get::<ViewInstall>() {
            self.view = install.view.clone();
            ctx.forward(event);
            return;
        }

        if event.is::<OrderInfo>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(info) = event.get_mut::<OrderInfo>() else {
                return;
            };
            let Ok(header) = info.message.pop::<OrderHeader>() else {
                return;
            };
            self.order.insert(header.global_seq, header.message);
            self.try_deliver(ctx);
            return;
        }

        let local = ctx.node_id();
        match event.direction {
            Direction::Down => {
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                self.local_seq += 1;
                let id = TotalIdHeader {
                    origin: local,
                    local_seq: self.local_seq,
                };
                // Keep a local copy: the sender must also deliver its own
                // message at its position in the global order.
                let own_copy = Event::up(DataEvent::new(
                    local,
                    Dest::Node(local),
                    data.message.clone(),
                ));
                data.message.push(&id);
                self.buffered.insert(id, own_copy);
                if self.is_sequencer(local) {
                    self.assign_order(id, ctx);
                }
                ctx.forward(event);
                self.try_deliver(ctx);
            }
            Direction::Up => {
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                let Ok(id) = data.message.pop::<TotalIdHeader>() else {
                    return;
                };
                self.buffered.insert(id, event);
                if self.is_sequencer(local) {
                    self.assign_order(id, ctx);
                }
                self.try_deliver(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;

    use super::*;

    fn params(members: &[u32]) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params
    }

    fn incoming(origin: u32, local_seq: u64, payload: &[u8]) -> Event {
        let mut message = Message::with_payload(payload.to_vec());
        message.push(&TotalIdHeader {
            origin: NodeId(origin),
            local_seq,
        });
        Event::up(DataEvent::new(
            NodeId(origin),
            Dest::Node(NodeId(0)),
            message,
        ))
    }

    fn order_info(from: u32, origin: u32, local_seq: u64, global_seq: u64) -> Event {
        let mut message = Message::new();
        message.push(&OrderHeader {
            message: TotalIdHeader {
                origin: NodeId(origin),
                local_seq,
            },
            global_seq,
        });
        Event::up(OrderInfo::new(NodeId(from), Dest::Node(NodeId(1)), message))
    }

    #[test]
    fn sequencer_orders_incoming_messages_and_announces_the_order() {
        // Node 0 is the sequencer.
        let mut platform = TestPlatform::new(NodeId(0));
        let mut total = Harness::new(TotalLayer, &params(&[0, 1, 2]), &mut platform);

        let delivered = total.run_up(incoming(1, 1, b"a"), &mut platform);
        assert_eq!(
            delivered.len(),
            1,
            "sequencer delivers immediately in order"
        );
        let down = total.drain_down();
        let infos: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<OrderInfo>())
            .collect();
        assert_eq!(infos.len(), 1);
        assert_eq!(
            infos[0].get::<OrderInfo>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(1), NodeId(2)])
        );
    }

    #[test]
    fn non_sequencer_waits_for_order_information() {
        // Node 1 is not the sequencer (node 0 is).
        let mut platform = TestPlatform::new(NodeId(1));
        let mut total = Harness::new(TotalLayer, &params(&[0, 1, 2]), &mut platform);

        assert!(total.run_up(incoming(2, 1, b"b"), &mut platform).is_empty());
        let delivered = total.run_up(order_info(0, 2, 1, 1), &mut platform);
        assert_eq!(delivered.len(), 1);
    }

    #[test]
    fn delivery_follows_the_global_order_not_arrival_order() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut total = Harness::new(TotalLayer, &params(&[0, 1, 2]), &mut platform);

        // Two messages arrive; the sequencer ordered "x" after "y".
        assert!(total.run_up(incoming(2, 1, b"x"), &mut platform).is_empty());
        assert!(total.run_up(incoming(0, 1, b"y"), &mut platform).is_empty());
        assert!(total
            .run_up(order_info(0, 2, 1, 2), &mut platform)
            .is_empty());
        let released = total.run_up(order_info(0, 0, 1, 1), &mut platform);
        assert_eq!(released.len(), 2);
        assert_eq!(
            released[0]
                .get::<DataEvent>()
                .unwrap()
                .message
                .payload()
                .as_ref(),
            b"y"
        );
        assert_eq!(
            released[1]
                .get::<DataEvent>()
                .unwrap()
                .message
                .payload()
                .as_ref(),
            b"x"
        );
    }

    #[test]
    fn senders_deliver_their_own_messages_in_order() {
        // Node 1 sends a message; it must deliver it to itself once the
        // sequencer (node 0) announces its position.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut total = Harness::new(TotalLayer, &params(&[0, 1]), &mut platform);

        let out = total.run_down(
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"mine"[..]),
            )),
            &mut platform,
        );
        assert_eq!(
            out.iter().filter(|event| event.is::<DataEvent>()).count(),
            1
        );
        assert!(
            total.drain_up().is_empty(),
            "own message not delivered before ordering"
        );

        let released = total.run_up(order_info(0, 1, 1, 1), &mut platform);
        assert_eq!(released.len(), 1);
        assert_eq!(
            released[0]
                .get::<DataEvent>()
                .unwrap()
                .message
                .payload()
                .as_ref(),
            b"mine"
        );
    }

    #[test]
    fn sequencer_orders_its_own_sends_immediately() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut total = Harness::new(TotalLayer, &params(&[0, 1]), &mut platform);
        let out = total.run_down(
            Event::down(DataEvent::to_group(
                NodeId(0),
                Message::with_payload(&b"seq"[..]),
            )),
            &mut platform,
        );
        assert!(out.iter().any(|event| event.is::<DataEvent>()));
        assert!(out.iter().any(|event| event.is::<OrderInfo>()));
        let up = total.drain_up();
        assert_eq!(up.len(), 1, "sequencer self-delivers immediately");
    }
}
