//! Forward error correction: the "mask the errors" strategy.
//!
//! The paper motivates run-time adaptation with exactly this trade-off: "for
//! small error rates it is preferable to detect and recover (using
//! retransmissions) while for larger error rates it is preferable to mask the
//! errors (using forward error recovery techniques)". This layer implements a
//! simple XOR parity scheme: for every `k` data messages a sender emits one
//! parity block; a receiver that misses exactly one message of a block can
//! reconstruct it locally, without any round trip to the sender.

use std::collections::{BTreeMap, HashMap};

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::NodeId;
use morpheus_appia::session::Session;
use morpheus_appia::wire::Wire;

use crate::events::{FecParity, ViewInstall};
use crate::headers::{FecParityHeader, SeqHeader};

/// Registered name of the forward-error-correction layer.
pub const FEC_LAYER: &str = "fec";

/// Number of recently received encoded messages kept per sender for
/// reconstruction.
const RECEIVE_WINDOW: usize = 256;

/// The XOR-parity forward-error-correction layer.
///
/// Parameters:
///
/// * `k` — block size: one parity message is emitted for every `k` data
///   messages (default 4);
/// * `members` — comma-separated initial group membership (parity blocks are
///   sent point-to-point to every other member).
pub struct FecLayer;

impl Layer for FecLayer {
    fn name(&self) -> &str {
        FEC_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<DataEvent>(),
            EventSpec::of::<FecParity>(),
            EventSpec::of::<ViewInstall>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["FecParity"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(FecSession {
            k: param_or(params, "k", 4usize).max(2),
            members: param_node_list(params, "members"),
            next_seq: 0,
            block: Vec::new(),
            parity: Vec::new(),
            received: HashMap::new(),
            recovered: 0,
        })
    }
}

fn xor_into(parity: &mut Vec<u8>, bytes: &[u8]) {
    if parity.len() < bytes.len() {
        parity.resize(bytes.len(), 0);
    }
    for (slot, byte) in parity.iter_mut().zip(bytes.iter()) {
        *slot ^= *byte;
    }
}

#[derive(Debug, Default)]
struct ReceiveState {
    /// Encoded bytes of recently received messages, by sequence number.
    window: BTreeMap<u64, Vec<u8>>,
}

impl ReceiveState {
    fn remember(&mut self, seq: u64, bytes: Vec<u8>) {
        self.window.insert(seq, bytes);
        while self.window.len() > RECEIVE_WINDOW {
            let oldest = *self.window.keys().next().expect("non-empty");
            self.window.remove(&oldest);
        }
    }
}

/// Session state of the FEC layer.
#[derive(Debug)]
pub struct FecSession {
    k: usize,
    // bound: replaced wholesale on every view install; <= view size.
    members: Vec<NodeId>,
    next_seq: u64,
    /// Sequence numbers and encoded lengths of the current outgoing block.
    // bound: flushed (cleared) every k data messages.
    block: Vec<(u64, u32)>,
    /// XOR accumulator of the current outgoing block.
    // bound: length of the largest encoded message in the block; reset on flush.
    parity: Vec<u8>,
    // bound: one entry per sender heard from; each inner window is capped at RECEIVE_WINDOW.
    received: HashMap<NodeId, ReceiveState>,
    recovered: u64,
}

impl FecSession {
    /// Number of messages reconstructed from parity so far.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    fn emit_parity(&mut self, ctx: &mut EventContext<'_>) {
        if self.block.is_empty() {
            return;
        }
        let local = ctx.node_id();
        let covers: Vec<u64> = self.block.iter().map(|(seq, _)| *seq).collect();
        let lengths: Vec<u32> = self.block.iter().map(|(_, len)| *len).collect();
        let parity_bytes = std::mem::take(&mut self.parity);
        self.block.clear();

        let mut message = Message::with_payload(parity_bytes.clone());
        message.push(&FecParityHeader {
            covers,
            lengths,
            parity_len: parity_bytes.len() as u32,
        });
        let others: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|member| *member != local)
            .collect();
        if others.is_empty() {
            return;
        }
        ctx.dispatch(Event::down(FecParity::new(
            local,
            Dest::Nodes(others),
            message,
        )));
    }
}

impl Session for FecSession {
    fn layer_name(&self) -> &str {
        FEC_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if let Some(install) = event.get::<ViewInstall>() {
            self.members = install.view.members.clone();
            ctx.forward(event);
            return;
        }

        // Parity blocks arriving from a peer.
        if event.is::<FecParity>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(parity_event) = event.get_mut::<FecParity>() else {
                return;
            };
            let origin = parity_event.header.source;
            let Ok(header) = parity_event.message.pop::<FecParityHeader>() else {
                return;
            };
            let parity_payload = parity_event.message.payload().to_vec();
            let state = self.received.entry(origin).or_default();

            let missing: Vec<(usize, u64)> = header
                .covers
                .iter()
                .enumerate()
                .filter(|(_, seq)| !state.window.contains_key(seq))
                .map(|(index, seq)| (index, *seq))
                .collect();
            if missing.len() != 1 {
                // Either nothing is missing or too much is missing to recover.
                return;
            }
            let (missing_index, missing_seq) = missing[0];
            let mut reconstructed = parity_payload;
            for seq in &header.covers {
                if let Some(bytes) = state.window.get(seq) {
                    xor_into(&mut reconstructed, bytes);
                }
            }
            let original_len = header.lengths.get(missing_index).copied().unwrap_or(0) as usize;
            if original_len > reconstructed.len() {
                return;
            }
            reconstructed.truncate(original_len);
            let Ok(mut recovered_message) = Message::from_bytes(&reconstructed) else {
                return;
            };
            if recovered_message.pop::<SeqHeader>().is_err() {
                return;
            }
            state.remember(missing_seq, reconstructed);
            self.recovered += 1;
            let local = ctx.node_id();
            ctx.dispatch(Event::up(DataEvent::new(
                origin,
                Dest::Node(local),
                recovered_message,
            )));
            return;
        }

        match event.direction {
            Direction::Down => {
                if let Some(data) = event.get_mut::<DataEvent>() {
                    if data.header.dest == Dest::Group || matches!(data.header.dest, Dest::Nodes(_))
                    {
                        self.next_seq += 1;
                        data.message.push(&SeqHeader { seq: self.next_seq });
                        let encoded = data.message.to_bytes();
                        xor_into(&mut self.parity, &encoded);
                        self.block.push((self.next_seq, encoded.len() as u32));
                    }
                }
                ctx.forward(event);
                if self.block.len() >= self.k {
                    self.emit_parity(ctx);
                }
            }
            Direction::Up => {
                let Some(data) = event.get_mut::<DataEvent>() else {
                    ctx.forward(event);
                    return;
                };
                let encoded = data.message.to_bytes().to_vec();
                let Ok(header) = data.message.pop::<SeqHeader>() else {
                    return;
                };
                let origin = data.header.source;
                let state = self.received.entry(origin).or_default();
                if state.window.contains_key(&header.seq) {
                    return; // duplicate (possibly already recovered via parity)
                }
                state.remember(header.seq, encoded);
                ctx.forward(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::TestPlatform;
    use morpheus_appia::testing::Harness;

    use super::*;

    fn params(k: usize, members: &[u32]) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert("k".into(), k.to_string());
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params
    }

    fn send(harness: &mut Harness, platform: &mut TestPlatform, payload: &[u8]) -> Vec<Event> {
        harness.run_down(
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(payload.to_vec()),
            )),
            platform,
        )
    }

    #[test]
    fn parity_is_emitted_every_k_messages() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut fec = Harness::new(FecLayer, &params(3, &[1, 2, 3]), &mut platform);

        let mut parity_count = 0;
        for index in 0..9u32 {
            let out = send(&mut fec, &mut platform, &index.to_be_bytes());
            parity_count += out.iter().filter(|event| event.is::<FecParity>()).count();
        }
        assert_eq!(parity_count, 3, "one parity block per 3 data messages");
    }

    #[test]
    fn receiver_reconstructs_a_single_missing_message() {
        let mut platform_tx = TestPlatform::new(NodeId(1));
        let mut sender = Harness::new(FecLayer, &params(3, &[1, 2]), &mut platform_tx);

        // Capture what the sender emits for three messages plus parity.
        let mut emitted = Vec::new();
        for payload in [&b"alpha"[..], &b"bravo"[..], &b"charlie"[..]] {
            emitted.extend(send(&mut sender, &mut platform_tx, payload));
        }
        let data: Vec<&Event> = emitted
            .iter()
            .filter(|event| event.is::<DataEvent>())
            .collect();
        let parity: Vec<&Event> = emitted
            .iter()
            .filter(|event| event.is::<FecParity>())
            .collect();
        assert_eq!(data.len(), 3);
        assert_eq!(parity.len(), 1);

        // The receiver gets messages 1 and 3 but misses message 2.
        let mut platform_rx = TestPlatform::new(NodeId(2));
        let mut receiver = Harness::new(FecLayer, &params(3, &[1, 2]), &mut platform_rx);
        for index in [0usize, 2] {
            let source_data = data[index].get::<DataEvent>().unwrap();
            let delivered = receiver.run_up(
                Event::up(DataEvent::new(
                    NodeId(1),
                    Dest::Node(NodeId(2)),
                    source_data.message.clone(),
                )),
                &mut platform_rx,
            );
            assert_eq!(delivered.len(), 1);
        }

        // Delivering the parity block reconstructs the missing message.
        let parity_data = parity[0].get::<FecParity>().unwrap();
        let recovered = receiver.run_up(
            Event::up(FecParity::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                parity_data.message.clone(),
            )),
            &mut platform_rx,
        );
        assert_eq!(recovered.len(), 1);
        let recovered_data = recovered[0].get::<DataEvent>().unwrap();
        assert_eq!(recovered_data.message.payload().as_ref(), b"bravo");
        assert_eq!(recovered_data.header.source, NodeId(1));
    }

    #[test]
    fn parity_with_everything_received_is_silent() {
        let mut platform_tx = TestPlatform::new(NodeId(1));
        let mut sender = Harness::new(FecLayer, &params(2, &[1, 2]), &mut platform_tx);
        let mut emitted = Vec::new();
        for payload in [&b"a"[..], &b"b"[..]] {
            emitted.extend(send(&mut sender, &mut platform_tx, payload));
        }
        let parity: Vec<&Event> = emitted
            .iter()
            .filter(|event| event.is::<FecParity>())
            .collect();

        let mut platform_rx = TestPlatform::new(NodeId(2));
        let mut receiver = Harness::new(FecLayer, &params(2, &[1, 2]), &mut platform_rx);
        for event in emitted.iter().filter(|event| event.is::<DataEvent>()) {
            let source_data = event.get::<DataEvent>().unwrap();
            receiver.run_up(
                Event::up(DataEvent::new(
                    NodeId(1),
                    Dest::Node(NodeId(2)),
                    source_data.message.clone(),
                )),
                &mut platform_rx,
            );
        }
        let out = receiver.run_up(
            Event::up(FecParity::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                parity[0].get::<FecParity>().unwrap().message.clone(),
            )),
            &mut platform_rx,
        );
        assert!(
            out.is_empty(),
            "no duplicate delivery when nothing is missing"
        );
    }

    #[test]
    fn parity_with_two_missing_messages_cannot_recover() {
        let mut platform_tx = TestPlatform::new(NodeId(1));
        let mut sender = Harness::new(FecLayer, &params(3, &[1, 2]), &mut platform_tx);
        let mut emitted = Vec::new();
        for payload in [&b"a"[..], &b"b"[..], &b"c"[..]] {
            emitted.extend(send(&mut sender, &mut platform_tx, payload));
        }
        let parity: Vec<&Event> = emitted
            .iter()
            .filter(|event| event.is::<FecParity>())
            .collect();
        let data: Vec<&Event> = emitted
            .iter()
            .filter(|event| event.is::<DataEvent>())
            .collect();

        let mut platform_rx = TestPlatform::new(NodeId(2));
        let mut receiver = Harness::new(FecLayer, &params(3, &[1, 2]), &mut platform_rx);
        // Only the first message arrives.
        receiver.run_up(
            Event::up(DataEvent::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                data[0].get::<DataEvent>().unwrap().message.clone(),
            )),
            &mut platform_rx,
        );
        let out = receiver.run_up(
            Event::up(FecParity::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                parity[0].get::<FecParity>().unwrap().message.clone(),
            )),
            &mut platform_rx,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn duplicates_after_recovery_are_suppressed() {
        let mut platform_tx = TestPlatform::new(NodeId(1));
        let mut sender = Harness::new(FecLayer, &params(2, &[1, 2]), &mut platform_tx);
        let mut emitted = Vec::new();
        for payload in [&b"a"[..], &b"b"[..]] {
            emitted.extend(send(&mut sender, &mut platform_tx, payload));
        }
        let data: Vec<&Event> = emitted
            .iter()
            .filter(|event| event.is::<DataEvent>())
            .collect();
        let parity: Vec<&Event> = emitted
            .iter()
            .filter(|event| event.is::<FecParity>())
            .collect();

        let mut platform_rx = TestPlatform::new(NodeId(2));
        let mut receiver = Harness::new(FecLayer, &params(2, &[1, 2]), &mut platform_rx);
        // Receive only message 1, recover message 2 from parity, then the
        // late original of message 2 arrives and must be suppressed.
        receiver.run_up(
            Event::up(DataEvent::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                data[0].get::<DataEvent>().unwrap().message.clone(),
            )),
            &mut platform_rx,
        );
        let recovered = receiver.run_up(
            Event::up(FecParity::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                parity[0].get::<FecParity>().unwrap().message.clone(),
            )),
            &mut platform_rx,
        );
        assert_eq!(recovered.len(), 1);
        let late = receiver.run_up(
            Event::up(DataEvent::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                data[1].get::<DataEvent>().unwrap().message.clone(),
            )),
            &mut platform_rx,
        );
        assert!(late.is_empty());
    }
}
