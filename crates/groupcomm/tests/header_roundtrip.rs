//! Pure codec smoke target for the group-communication headers — the
//! second half of the CI `miri` job. No clocks, no threads, no I/O:
//! encode/decode only, so Miri can check the decoders' memory behaviour
//! against adversarial truncations at acceptable cost.

use morpheus_appia::platform::NodeId;
use morpheus_appia::wire::Wire;
use morpheus_groupcomm::headers::{
    CausalHeader, FecParityHeader, FlushBody, GossipHeader, LivenessDigest, McastHeader, McastMode,
    NackHeader, OrderHeader, RepairDigest, RepairFloorBody, RepairPull, RepairPushHeader,
    RepairRange, SeqHeader, TotalIdHeader,
};

#[cfg(miri)]
const TRUNCATION_STRIDE: usize = 7;
#[cfg(not(miri))]
const TRUNCATION_STRIDE: usize = 1;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
    let bytes = value.to_bytes();
    assert_eq!(T::from_bytes(&bytes).unwrap(), value);
    // Every (strided) truncation must fail cleanly, not panic.
    for len in (0..bytes.len()).step_by(TRUNCATION_STRIDE.max(1)) {
        assert!(
            T::from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} of {} bytes must not decode",
            bytes.len()
        );
    }
}

#[test]
fn data_plane_headers_roundtrip() {
    roundtrip(McastHeader {
        mode: McastMode::RelayRequest,
        origin: NodeId(3),
    });
    roundtrip(SeqHeader { seq: u64::MAX });
    roundtrip(NackHeader {
        origin: NodeId(2),
        missing: vec![4, 5, 9, u64::MAX],
    });
    roundtrip(GossipHeader {
        origin: NodeId(1),
        inc: 12,
        seq: 77,
        ttl: 3,
    });
    roundtrip(FecParityHeader {
        covers: vec![10, 11, 12, 13],
        lengths: vec![100, 90, 80, 70],
        parity_len: 512,
    });
}

#[test]
fn repair_headers_roundtrip() {
    roundtrip(RepairDigest {
        credit: 128,
        entries: vec![RepairRange {
            origin: NodeId(1),
            inc: 12,
            lo: 3,
            hi: 9,
        }],
    });
    roundtrip(RepairFloorBody {
        origin: NodeId(2),
        inc: 12,
        floor: 900,
    });
    roundtrip(RepairPull {
        wants: vec![(NodeId(1), 12, vec![4, 5]), (NodeId(4), 0, vec![1])],
    });
    roundtrip(RepairPushHeader {
        origin: NodeId(1),
        inc: 12,
        seq: 4,
    });
    roundtrip(LivenessDigest {
        entries: vec![(NodeId(0), 12), (NodeId(7), 3)],
    });
}

#[test]
fn ordering_and_view_headers_roundtrip() {
    roundtrip(CausalHeader {
        sender_rank: 2,
        clock: vec![5, 0, 7, u64::MAX],
    });
    roundtrip(TotalIdHeader {
        origin: NodeId(4),
        local_seq: 6,
    });
    roundtrip(OrderHeader {
        message: TotalIdHeader {
            origin: NodeId(4),
            local_seq: 6,
        },
        global_seq: 99,
    });
    roundtrip(FlushBody {
        epoch: 9,
        proposer: NodeId(1),
        flushed: vec![NodeId(1), NodeId(4)],
    });
}

/// Unknown tag bytes must surface as decode errors, not panics.
#[test]
fn unknown_mode_tag_is_rejected() {
    let bytes = McastHeader {
        mode: McastMode::Direct,
        origin: NodeId(1),
    }
    .to_bytes();
    let mut corrupted = bytes.to_vec();
    corrupted[0] = 0xFF;
    assert!(McastHeader::from_bytes(&corrupted).is_err());
}
