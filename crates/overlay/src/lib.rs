//! # morpheus-overlay
//!
//! Partial-view membership and room-sharded dissemination overlays: the
//! scale substrate that makes a node's cost proportional to what it
//! *subscribes to*, not to the size of the whole group.
//!
//! The full-membership planes (view synchrony, epidemic multicast over the
//! complete member list) pay per-node costs that grow with the group: every
//! member tracks every member and relays every stream. This crate provides
//! the two layers that break that coupling, following the designs the
//! large-scale gossip literature converged on:
//!
//! * [`membership`] — a HyParView-style **partial view**: each node keeps a
//!   small symmetric *active* view (its gossip neighbours) and a larger
//!   *passive* view (its repair reservoir), maintained with join /
//!   forward-join random walks, periodic deterministic shuffles and
//!   active-view repair on failure suspicion. Per-node membership state is
//!   O(active + passive) regardless of group size.
//! * [`plumtree`] — a Plumtree-style **per-room spanning-tree push**: each
//!   chat room runs its own lightweight broadcast tree over only the
//!   members subscribed to it. Links start eager (payload push) and are
//!   demoted to lazy (`IHave` announcements) when they deliver duplicates;
//!   a missing announcement is recovered with `Graft`, which both pulls the
//!   payload and repairs the tree. Loss repair rides the exact same
//!   `(origin, inc, seq)` repair log and NACK pull machinery as the
//!   epidemic plane ([`morpheus_groupcomm::repair`]).
//!
//! The remaining modules wire those layers into the evaluation: [`wire`]
//! defines the hardened message bodies, [`zipf`] generates deterministic
//! Zipf-distributed room memberships, [`policy`] applies the paper's
//! context-driven adaptation *per room shard* (small quiet rooms flood
//! directly, large or busy rooms run the tree), and [`sim`] drives whole
//! overlays over the deterministic network simulator with per-component
//! byte accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod membership;
pub mod plumtree;
pub mod policy;
pub mod sim;
pub mod wire;
pub mod zipf;

pub use membership::{MembershipConfig, PartialView};
pub use plumtree::{RoomConfig, RoomOverlay};
pub use policy::{choose_room_stack, RoomStackKind};
pub use sim::{RoomSimReport, RoomSimulation, SimConfig};
pub use wire::OverlayMsg;
pub use zipf::RoomPlan;
