//! Partial-view membership: the HyParView-style layer that bounds a node's
//! membership state by two small views instead of the whole group.
//!
//! Every node keeps:
//!
//! * an **active view** — a small symmetric set of gossip neighbours. All
//!   dissemination (tree links, lazy announcements, repair digests) runs
//!   over active links only. Symmetry is maintained with explicit
//!   `Neighbor` / `Disconnect` handshakes, so both ends agree on the link.
//! * a **passive view** — a larger reservoir of known-alive addresses used
//!   only for repair: when an active neighbour fails (failure-detector
//!   suspicion) or disconnects, a passive member is promoted in its place.
//!
//! Joins enter through any contact node and propagate as bounded random
//! walks (`ForwardJoin`, active walk length `arwl`): the walk's endpoint
//! accepts the joiner into its active view, and a prefix point (`prwl`
//! hops in) records it passively — so even a join through a single contact
//! lands the new node in several distinct views. A periodic **shuffle**
//! walks a sample of one node's views through the overlay and swaps it
//! against the endpoint's passive sample, keeping passive views fresh
//! without any global exchange.
//!
//! The state machine is pure: every handler returns the messages to send,
//! and all randomness comes from the caller's deterministic [`SimRng`], so
//! whole-overlay simulations replay exactly.

use std::collections::BTreeSet;

use morpheus_appia::platform::NodeId;
use morpheus_netsim::SimRng;

use crate::wire::OverlayMsg;

/// Knobs of the partial-view layer.
#[derive(Debug, Clone, Copy)]
pub struct MembershipConfig {
    /// Active-view capacity (gossip degree). Small and O(1) in group size.
    pub active_size: usize,
    /// Passive-view capacity (repair reservoir).
    pub passive_size: usize,
    /// Active random-walk length of a forward-join.
    pub arwl: u8,
    /// Passive random-walk length: the hop at which a forward-join is also
    /// recorded in the passive view.
    pub prwl: u8,
    /// Active-view members sampled into each shuffle.
    pub shuffle_active: usize,
    /// Passive-view members sampled into each shuffle.
    pub shuffle_passive: usize,
    /// Walk length of a shuffle.
    pub shuffle_ttl: u8,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        Self {
            active_size: 5,
            passive_size: 30,
            arwl: 6,
            prwl: 3,
            shuffle_active: 3,
            shuffle_passive: 4,
            shuffle_ttl: 3,
        }
    }
}

/// A message addressed to one peer — the output unit of every handler.
pub type Send = (NodeId, OverlayMsg);

/// The partial-view state of one node.
#[derive(Debug, Clone)]
pub struct PartialView {
    me: NodeId,
    cfg: MembershipConfig,
    /// The symmetric gossip neighbours.
    // bound: capped at `cfg.active_size`; eviction demotes to passive.
    active: BTreeSet<NodeId>,
    /// The repair reservoir.
    // bound: capped at `cfg.passive_size`; random eviction on overflow.
    passive: BTreeSet<NodeId>,
    /// Neighbour promotions currently in flight (avoids re-asking the same
    /// candidate every suspicion tick).
    // bound: subset of `passive` plus at most `active_size` candidates, pruned on reply.
    pending: BTreeSet<NodeId>,
}

impl PartialView {
    /// A fresh, empty view.
    pub fn new(me: NodeId, cfg: MembershipConfig) -> Self {
        Self {
            me,
            cfg,
            active: BTreeSet::new(),
            passive: BTreeSet::new(),
            pending: BTreeSet::new(),
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current active view, in node-id order.
    pub fn active(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.active.iter().copied()
    }

    /// The current passive view, in node-id order.
    pub fn passive(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.passive.iter().copied()
    }

    /// Whether `peer` is an active neighbour.
    pub fn is_active(&self, peer: NodeId) -> bool {
        self.active.contains(&peer)
    }

    /// Active-view size.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Passive-view size.
    pub fn passive_len(&self) -> usize {
        self.passive.len()
    }

    /// Picks one member of a sorted candidate list with the deterministic
    /// rng; `None` when empty.
    fn pick(candidates: &[NodeId], rng: &mut SimRng) -> Option<NodeId> {
        if candidates.is_empty() {
            return None;
        }
        let index = rng.random_below(candidates.len() as u64) as usize;
        candidates.get(index).copied()
    }

    /// Samples up to `limit` distinct members of a sorted candidate list
    /// (partial Fisher–Yates over a copy — deterministic under the rng).
    fn sample(candidates: &[NodeId], limit: usize, rng: &mut SimRng) -> Vec<NodeId> {
        let mut pool = candidates.to_vec();
        if pool.len() <= limit {
            return pool;
        }
        for index in 0..limit {
            let remaining = pool.len() - index;
            let swap = index + rng.random_below(remaining as u64) as usize;
            pool.swap(index, swap);
        }
        pool.truncate(limit);
        pool
    }

    fn active_sorted(&self) -> Vec<NodeId> {
        self.active.iter().copied().collect()
    }

    fn passive_sorted(&self) -> Vec<NodeId> {
        self.passive.iter().copied().collect()
    }

    /// Adds `peer` to the active view, demoting a deterministic-random
    /// victim to the passive view when full. Returns the messages needed
    /// to keep links symmetric (a `Disconnect` to the victim).
    fn add_active(&mut self, peer: NodeId, rng: &mut SimRng, out: &mut Vec<Send>) {
        if peer == self.me || self.active.contains(&peer) {
            return;
        }
        while self.active.len() >= self.cfg.active_size.max(1) {
            let candidates = self.active_sorted();
            let Some(victim) = Self::pick(&candidates, rng) else {
                break;
            };
            self.active.remove(&victim);
            self.add_passive(victim, rng);
            out.push((victim, OverlayMsg::Disconnect));
        }
        self.passive.remove(&peer);
        self.pending.remove(&peer);
        self.active.insert(peer);
    }

    /// Adds `peer` to the passive view, evicting a deterministic-random
    /// non-active victim when full.
    fn add_passive(&mut self, peer: NodeId, rng: &mut SimRng) {
        if peer == self.me || self.active.contains(&peer) || self.passive.contains(&peer) {
            return;
        }
        while self.passive.len() >= self.cfg.passive_size.max(1) {
            let candidates = self.passive_sorted();
            let Some(victim) = Self::pick(&candidates, rng) else {
                break;
            };
            self.passive.remove(&victim);
        }
        self.passive.insert(peer);
    }

    /// Initiates a join through `contact`: the only global knowledge a
    /// node needs is one live address.
    pub fn join(&mut self, contact: NodeId, rng: &mut SimRng) -> Vec<Send> {
        let mut out = Vec::new();
        self.add_active(contact, rng, &mut out);
        out.push((contact, OverlayMsg::Join { joiner: self.me }));
        out
    }

    /// A joiner knocked on this node: admit it (forced — contacts always
    /// accept) and start the forward-join walks through the active view.
    pub fn on_join(&mut self, joiner: NodeId, rng: &mut SimRng) -> Vec<Send> {
        let mut out = Vec::new();
        self.add_active(joiner, rng, &mut out);
        let ttl = self.cfg.arwl;
        for peer in self.active_sorted() {
            if peer != joiner {
                out.push((peer, OverlayMsg::ForwardJoin { joiner, ttl }));
            }
        }
        out
    }

    /// One hop of a forward-join walk.
    pub fn on_forward_join(
        &mut self,
        from: NodeId,
        joiner: NodeId,
        ttl: u8,
        rng: &mut SimRng,
    ) -> Vec<Send> {
        let mut out = Vec::new();
        if joiner == self.me || self.active.contains(&joiner) {
            return out;
        }
        if ttl == 0 || self.active.len() <= 1 {
            // Walk endpoint: accept the joiner into the active view and
            // tell it so (high priority — the joiner may be starting out
            // with an empty view).
            self.add_active(joiner, rng, &mut out);
            out.push((
                joiner,
                OverlayMsg::Neighbor {
                    high_priority: true,
                },
            ));
            return out;
        }
        if ttl == self.cfg.prwl {
            self.add_passive(joiner, rng);
        }
        let candidates: Vec<NodeId> = self
            .active_sorted()
            .into_iter()
            .filter(|peer| *peer != from && *peer != joiner)
            .collect();
        match Self::pick(&candidates, rng) {
            Some(next) => out.push((
                next,
                OverlayMsg::ForwardJoin {
                    joiner,
                    ttl: ttl - 1,
                },
            )),
            None => {
                self.add_active(joiner, rng, &mut out);
                out.push((
                    joiner,
                    OverlayMsg::Neighbor {
                        high_priority: true,
                    },
                ));
            }
        }
        out
    }

    /// A peer asks to become an active neighbour.
    pub fn on_neighbor(
        &mut self,
        from: NodeId,
        high_priority: bool,
        rng: &mut SimRng,
    ) -> Vec<Send> {
        let mut out = Vec::new();
        let accepted = high_priority || self.active.len() < self.cfg.active_size;
        if accepted {
            self.add_active(from, rng, &mut out);
        } else {
            self.add_passive(from, rng);
        }
        out.push((from, OverlayMsg::NeighborReply { accepted }));
        out
    }

    /// The answer to a neighbour request this node sent.
    pub fn on_neighbor_reply(
        &mut self,
        from: NodeId,
        accepted: bool,
        rng: &mut SimRng,
    ) -> Vec<Send> {
        let mut out = Vec::new();
        self.pending.remove(&from);
        if accepted {
            self.add_active(from, rng, &mut out);
        } else {
            // Keep it as a passive candidate; the retry happens on the next
            // shuffle tick. Chaining an immediate retry here can livelock
            // two full nodes into a Neighbor/reject ping-pong — the paced
            // tick is what bounds the repair rate.
            self.add_passive(from, rng);
        }
        out
    }

    /// A neighbour closed the link (eviction at its end).
    pub fn on_disconnect(&mut self, from: NodeId, rng: &mut SimRng) -> Vec<Send> {
        if self.active.remove(&from) {
            self.add_passive(from, rng);
            return self.promote_replacement(rng);
        }
        Vec::new()
    }

    /// The failure detector suspects an active neighbour: drop the link and
    /// promote a passive member in its place — the active-view repair that
    /// keeps the overlay connected through churn without any global view
    /// change.
    pub fn on_suspicion(&mut self, peer: NodeId, rng: &mut SimRng) -> Vec<Send> {
        self.passive.remove(&peer);
        self.pending.remove(&peer);
        if self.active.remove(&peer) {
            return self.promote_replacement(rng);
        }
        Vec::new()
    }

    /// Asks one passive member (not already being asked) to fill a hole in
    /// the active view.
    fn promote_replacement(&mut self, rng: &mut SimRng) -> Vec<Send> {
        if self.active.len() >= self.cfg.active_size {
            return Vec::new();
        }
        let candidates: Vec<NodeId> = self
            .passive_sorted()
            .into_iter()
            .filter(|peer| !self.pending.contains(peer))
            .collect();
        let Some(candidate) = Self::pick(&candidates, rng) else {
            return Vec::new();
        };
        self.pending.insert(candidate);
        vec![(
            candidate,
            OverlayMsg::Neighbor {
                high_priority: self.active.is_empty(),
            },
        )]
    }

    /// The periodic shuffle tick: walk a sample of this node's views to a
    /// random active neighbour. Doubles as the paced retry of active-view
    /// repair — any hole left by a rejected promotion is re-attempted here.
    pub fn shuffle_tick(&mut self, rng: &mut SimRng) -> Vec<Send> {
        let mut out = Vec::new();
        if self.active.len() < self.cfg.active_size {
            out.extend(self.promote_replacement(rng));
        }
        let candidates = self.active_sorted();
        let Some(target) = Self::pick(&candidates, rng) else {
            return out;
        };
        let mut nodes = vec![self.me];
        let actives: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|p| *p != target)
            .collect();
        nodes.extend(Self::sample(&actives, self.cfg.shuffle_active, rng));
        nodes.extend(Self::sample(
            &self.passive_sorted(),
            self.cfg.shuffle_passive,
            rng,
        ));
        out.push((
            target,
            OverlayMsg::Shuffle {
                origin: self.me,
                ttl: self.cfg.shuffle_ttl,
                nodes,
            },
        ));
        out
    }

    /// One hop of a shuffle walk: forward while the TTL lasts, otherwise
    /// swap passive samples with the origin.
    pub fn on_shuffle(
        &mut self,
        from: NodeId,
        origin: NodeId,
        ttl: u8,
        nodes: Vec<NodeId>,
        rng: &mut SimRng,
    ) -> Vec<Send> {
        if origin == self.me {
            return Vec::new();
        }
        if ttl > 0 {
            let candidates: Vec<NodeId> = self
                .active_sorted()
                .into_iter()
                .filter(|peer| *peer != from && *peer != origin)
                .collect();
            if let Some(next) = Self::pick(&candidates, rng) {
                return vec![(
                    next,
                    OverlayMsg::Shuffle {
                        origin,
                        ttl: ttl - 1,
                        nodes,
                    },
                )];
            }
        }
        // Walk endpoint: answer with our own passive sample, then absorb
        // the walked sample into the passive view.
        let reply = Self::sample(&self.passive_sorted(), nodes.len().max(1), rng);
        for node in nodes {
            self.add_passive(node, rng);
        }
        vec![(origin, OverlayMsg::ShuffleReply { nodes: reply })]
    }

    /// The shuffle answer: absorb the endpoint's passive sample.
    pub fn on_shuffle_reply(&mut self, nodes: Vec<NodeId>, rng: &mut SimRng) {
        for node in nodes {
            self.add_passive(node, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::{BTreeMap, VecDeque};

    use super::*;

    /// Delivers every queued message until quiescence, routing each to the
    /// right node's handler — a tiny synchronous bus for view tests.
    fn run_bus(
        views: &mut BTreeMap<NodeId, PartialView>,
        rng: &mut SimRng,
        seeds: Vec<(NodeId, Vec<Send>)>,
    ) {
        let mut queue: VecDeque<(NodeId, NodeId, OverlayMsg)> = seeds
            .into_iter()
            .flat_map(|(from, sends)| sends.into_iter().map(move |(to, msg)| (from, to, msg)))
            .collect();
        let mut hops = 0u32;
        while let Some((from, to, msg)) = queue.pop_front() {
            hops += 1;
            assert!(hops < 100_000, "membership bus diverged");
            let Some(view) = views.get_mut(&to) else {
                continue;
            };
            let replies = match msg {
                OverlayMsg::Join { joiner } => view.on_join(joiner, rng),
                OverlayMsg::ForwardJoin { joiner, ttl } => {
                    view.on_forward_join(from, joiner, ttl, rng)
                }
                OverlayMsg::Neighbor { high_priority } => {
                    view.on_neighbor(from, high_priority, rng)
                }
                OverlayMsg::NeighborReply { accepted } => {
                    view.on_neighbor_reply(from, accepted, rng)
                }
                OverlayMsg::Disconnect => view.on_disconnect(from, rng),
                OverlayMsg::Shuffle { origin, ttl, nodes } => {
                    view.on_shuffle(from, origin, ttl, nodes, rng)
                }
                OverlayMsg::ShuffleReply { nodes } => {
                    view.on_shuffle_reply(nodes, rng);
                    Vec::new()
                }
                other => panic!("unexpected message on membership bus: {other:?}"),
            };
            for (target, reply) in replies {
                queue.push_back((to, target, reply));
            }
        }
    }

    fn build_overlay(n: u32, seed: u64) -> (BTreeMap<NodeId, PartialView>, SimRng) {
        let mut rng = SimRng::new(seed);
        let cfg = MembershipConfig::default();
        let mut views: BTreeMap<NodeId, PartialView> = (0..n)
            .map(|id| (NodeId(id), PartialView::new(NodeId(id), cfg)))
            .collect();
        for id in 1..n {
            let contact = NodeId(0);
            let sends = views.get_mut(&NodeId(id)).unwrap().join(contact, &mut rng);
            run_bus(&mut views, &mut rng, vec![(NodeId(id), sends)]);
        }
        (views, rng)
    }

    #[test]
    fn joins_fill_views_within_bounds() {
        let (views, _) = build_overlay(40, 7);
        let cfg = MembershipConfig::default();
        for view in views.values() {
            assert!(view.active_len() <= cfg.active_size);
            assert!(view.passive_len() <= cfg.passive_size);
            assert!(view.active_len() >= 1, "node {:?} is isolated", view.me());
            assert!(!view.is_active(view.me()), "self-link");
        }
    }

    #[test]
    fn active_graph_is_connected() {
        let (views, _) = build_overlay(40, 21);
        // BFS over the union of active links (symmetry may be transiently
        // one-sided right after an eviction; the union is what dissemination
        // effectively uses since either side can push).
        let mut reached = BTreeSet::new();
        let mut frontier = vec![NodeId(0)];
        reached.insert(NodeId(0));
        while let Some(node) = frontier.pop() {
            for peer in views[&node].active() {
                if reached.insert(peer) {
                    frontier.push(peer);
                }
            }
            for (id, view) in views.iter() {
                if view.is_active(node) && reached.insert(*id) {
                    frontier.push(*id);
                }
            }
        }
        assert_eq!(reached.len(), views.len(), "partition in the active graph");
    }

    #[test]
    fn suspicion_promotes_from_passive() {
        let (mut views, mut rng) = build_overlay(40, 3);
        let victim = views[&NodeId(5)].active().next().expect("has a neighbour");
        let before = views[&NodeId(5)].active_len();
        let sends = views
            .get_mut(&NodeId(5))
            .unwrap()
            .on_suspicion(victim, &mut rng);
        assert!(
            views[&NodeId(5)].passive_len() == 0 || !sends.is_empty(),
            "with a non-empty passive view, repair must ask a replacement"
        );
        assert_eq!(views[&NodeId(5)].active_len(), before - 1);
        run_bus(&mut views, &mut rng, vec![(NodeId(5), sends)]);
        assert!(views[&NodeId(5)].active_len() >= before - 1);
    }

    #[test]
    fn shuffles_spread_passive_knowledge() {
        let (mut views, mut rng) = build_overlay(30, 11);
        for _ in 0..5 {
            let ids: Vec<NodeId> = views.keys().copied().collect();
            for id in ids {
                let sends = views.get_mut(&id).unwrap().shuffle_tick(&mut rng);
                run_bus(&mut views, &mut rng, vec![(id, sends)]);
            }
        }
        let total_passive: usize = views.values().map(PartialView::passive_len).sum();
        assert!(
            total_passive >= views.len(),
            "shuffling should leave every node with passive knowledge"
        );
        let cfg = MembershipConfig::default();
        for view in views.values() {
            assert!(view.passive_len() <= cfg.passive_size);
        }
    }

    #[test]
    fn construction_is_deterministic_in_the_seed() {
        let (a, _) = build_overlay(25, 42);
        let (b, _) = build_overlay(25, 42);
        for (id, view) in a.iter() {
            let other = &b[id];
            assert_eq!(
                view.active().collect::<Vec<_>>(),
                other.active().collect::<Vec<_>>()
            );
            assert_eq!(
                view.passive().collect::<Vec<_>>(),
                other.passive().collect::<Vec<_>>()
            );
        }
    }
}
