//! Per-room spanning-tree push with gossip repair (Plumtree-style).
//!
//! Each room runs its own overlay over only the members subscribed to it.
//! Links start **eager**: a new message is pushed with its payload along
//! every eager link. A duplicate arrival demotes the link to **lazy**
//! (`Prune`); lazy links carry only `IHave` announcements. When a node
//! hears an announcement for a message that never arrives, it sends
//! `Graft` — which both pulls the payload and promotes the link back to
//! eager, repairing the tree around the failed branch. The steady state is
//! a broadcast tree (payload cost `size − 1` per message) plus a thin lazy
//! mesh that doubles as the tree's failure detector.
//!
//! Loss repair rides the same machinery as the epidemic plane: every
//! member keeps a bounded [`RepairLog`] of delivered originals keyed by
//! `(origin, inc, seq)` and a [`Delivered`] tracker per stream, gossips
//! digests of servable spans each repair interval, and NACK-pulls gaps.
//! Both types come from [`morpheus_groupcomm::repair`] — the overlay does
//! not reimplement the repair half, it reuses it per room.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use morpheus_appia::platform::NodeId;
use morpheus_groupcomm::repair::{Delivered, RepairLog, StreamKey};
use morpheus_netsim::SimRng;

use crate::wire::{MsgId, OverlayMsg, RoomSpan};

/// Knobs of one room overlay.
#[derive(Debug, Clone, Copy)]
pub struct RoomConfig {
    /// Hop budget of the eager push (loop damping; the tree is shallow).
    pub push_ttl: u8,
    /// How long an announced-but-missing message waits before grafting.
    pub graft_timeout_ms: u64,
    /// Cadence of the room repair digest (`0` disables NACK repair).
    pub repair_interval_ms: u64,
    /// Cap on messages held in the room repair log.
    pub repair_log_cap: usize,
    /// Age after which a logged message is no longer served.
    pub repair_log_ttl_ms: u64,
    /// Cap on message ids pulled per digest.
    pub repair_window: usize,
    /// Digest targets per repair tick.
    pub repair_fanout: usize,
    /// Whether duplicate arrivals prune links to lazy. Direct-push rooms
    /// (small, quiet — chosen by the per-room policy) keep every link
    /// eager: the flood *is* the tree, and pruning would only add
    /// round-trips.
    pub allow_prune: bool,
}

impl Default for RoomConfig {
    fn default() -> Self {
        Self {
            push_ttl: 12,
            graft_timeout_ms: 150,
            repair_interval_ms: 1_000,
            repair_log_cap: 256,
            repair_log_ttl_ms: 10_000,
            repair_window: 32,
            repair_fanout: 1,
            allow_prune: true,
        }
    }
}

/// Counters of one room overlay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoomStats {
    /// First-copy deliveries (local publishes included).
    pub delivered: u64,
    /// Duplicate eager arrivals (each may demote a link).
    pub duplicates: u64,
    /// Grafts sent (tree repairs / lazy pulls).
    pub grafts: u64,
    /// Prunes sent (tree trims).
    pub prunes: u64,
    /// Deliveries that came through the NACK repair pass.
    pub repaired: u64,
    /// Repair digests sent.
    pub repair_digests: u64,
    /// Repair pulls sent.
    pub repair_pulls: u64,
    /// Logged originals served in answer to pulls.
    pub repair_pushes: u64,
}

/// A message addressed to one peer.
pub type Send = (NodeId, OverlayMsg);

/// A payload delivered to the room's application, with its id.
pub type Delivery = (MsgId, Bytes);

/// The per-room overlay state of one member.
#[derive(Debug)]
pub struct RoomOverlay {
    me: NodeId,
    room: u32,
    cfg: RoomConfig,
    /// Local stream incarnation (set once at construction from the clock).
    inc: u64,
    next_seq: u64,
    /// Links currently carrying payload pushes.
    // bound: subset of the room's neighbour links, capped by room degree.
    eager: BTreeSet<NodeId>,
    /// Links carrying only `IHave` announcements.
    // bound: subset of the room's neighbour links, capped by room degree.
    lazy: BTreeSet<NodeId>,
    /// Per-stream delivery records.
    // bound: one entry per (member, incarnation) stream of this room; members are capped by the room plan, stale incarnations die with the room.
    delivered: BTreeMap<StreamKey, Delivered>,
    /// The room repair log.
    // bound: `cfg.repair_log_cap` ring + `cfg.repair_log_ttl_ms` age, enforced inside `RepairLog`.
    log: RepairLog<Bytes>,
    /// Announced-but-missing messages: first-heard time plus announcers
    /// not yet grafted at.
    // bound: capped at `cfg.repair_window * 4` entries (drop-oldest); each announcer list at most room degree.
    missing: BTreeMap<MsgId, (u64, Vec<NodeId>)>,
    stats: RoomStats,
}

/// Cap multiplier of the missing-announcement map (over `repair_window`).
const MISSING_CAP_FACTOR: usize = 4;

impl RoomOverlay {
    /// A fresh room overlay; `inc` is the member's stream incarnation
    /// (wall-clock at subscription, fenced against restarts).
    pub fn new(me: NodeId, room: u32, inc: u64, cfg: RoomConfig) -> Self {
        Self {
            me,
            room,
            cfg,
            inc,
            // Streams start at 1: the Delivered tracker's floor semantics
            // treat seq 0 as below the first deliverable message.
            next_seq: 1,
            eager: BTreeSet::new(),
            lazy: BTreeSet::new(),
            delivered: BTreeMap::new(),
            log: RepairLog::new(),
            missing: BTreeMap::new(),
            stats: RoomStats::default(),
        }
    }

    /// The room id.
    pub fn room(&self) -> u32 {
        self.room
    }

    /// The counters.
    pub fn stats(&self) -> RoomStats {
        self.stats
    }

    /// Current eager links, in node-id order.
    pub fn eager(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.eager.iter().copied()
    }

    /// Current lazy links, in node-id order.
    pub fn lazy(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.lazy.iter().copied()
    }

    /// All links (eager + lazy).
    pub fn degree(&self) -> usize {
        self.eager.len() + self.lazy.len()
    }

    /// Whether this member has delivered (or itself published) the message.
    pub fn delivered_contains(&self, id: MsgId) -> bool {
        self.already_delivered(id)
    }

    /// Installs a neighbour link, eager-first (Plumtree starts eager and
    /// prunes down to the tree).
    pub fn add_link(&mut self, peer: NodeId) {
        if peer != self.me && !self.lazy.contains(&peer) {
            self.eager.insert(peer);
        }
    }

    /// Removes a failed or departed neighbour entirely.
    pub fn remove_link(&mut self, peer: NodeId) {
        self.eager.remove(&peer);
        self.lazy.remove(&peer);
        for (_, announcers) in self.missing.values_mut() {
            announcers.retain(|node| *node != peer);
        }
    }

    fn promote_eager(&mut self, peer: NodeId) {
        if peer != self.me {
            self.lazy.remove(&peer);
            self.eager.insert(peer);
        }
    }

    fn demote_lazy(&mut self, peer: NodeId) {
        if self.cfg.allow_prune && self.eager.remove(&peer) {
            self.lazy.insert(peer);
        }
    }

    fn record_delivered(&mut self, id: MsgId) -> bool {
        self.delivered
            .entry((id.origin, id.inc))
            .or_default()
            .record(id.seq)
    }

    fn already_delivered(&self, id: MsgId) -> bool {
        self.delivered
            .get(&(id.origin, id.inc))
            .map(|tracker| tracker.contains(id.seq))
            .unwrap_or(false)
    }

    /// Relays a first-copy arrival: payload along eager links, an
    /// announcement along lazy links (the sender excluded from both).
    fn relay(
        &mut self,
        id: MsgId,
        round: u8,
        payload: &Bytes,
        skip: Option<NodeId>,
        out: &mut Vec<Send>,
    ) {
        if round >= self.cfg.push_ttl {
            return;
        }
        for peer in self.eager.iter().copied() {
            if Some(peer) != skip {
                out.push((
                    peer,
                    OverlayMsg::RoomPush {
                        room: self.room,
                        id,
                        round: round + 1,
                        payload: payload.clone(),
                    },
                ));
            }
        }
        for peer in self.lazy.iter().copied() {
            if Some(peer) != skip {
                out.push((
                    peer,
                    OverlayMsg::RoomIHave {
                        room: self.room,
                        ids: vec![id],
                    },
                ));
            }
        }
    }

    /// Publishes one payload into the room. Returns the sends; the local
    /// delivery is implicit (publishers see their own messages).
    pub fn publish(&mut self, payload: Bytes, now_ms: u64) -> Vec<Send> {
        let id = MsgId {
            origin: self.me,
            inc: self.inc,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.record_delivered(id);
        self.stats.delivered += 1;
        if self.cfg.repair_interval_ms > 0 {
            self.log.store(
                (id.origin, id.inc),
                id.seq,
                payload.clone(),
                now_ms,
                self.cfg.repair_log_cap,
            );
        }
        let mut out = Vec::new();
        self.relay(id, 0, &payload, None, &mut out);
        out
    }

    /// An eager payload arrival.
    pub fn on_push(
        &mut self,
        from: NodeId,
        id: MsgId,
        round: u8,
        payload: Bytes,
        now_ms: u64,
        deliveries: &mut Vec<Delivery>,
    ) -> Vec<Send> {
        let mut out = Vec::new();
        if self.record_delivered(id) {
            self.stats.delivered += 1;
            self.missing.remove(&id);
            if self.cfg.repair_interval_ms > 0 {
                self.log.store(
                    (id.origin, id.inc),
                    id.seq,
                    payload.clone(),
                    now_ms,
                    self.cfg.repair_log_cap,
                );
            }
            deliveries.push((id, payload.clone()));
            // The first sender becomes (stays) an eager link: it is this
            // node's parent in the room's tree for that origin.
            self.promote_eager(from);
            self.relay(id, round, &payload, Some(from), &mut out);
        } else {
            // Duplicate: this link is redundant for the tree — demote it.
            self.stats.duplicates += 1;
            if self.cfg.allow_prune && self.eager.contains(&from) {
                self.demote_lazy(from);
                self.stats.prunes += 1;
                out.push((from, OverlayMsg::RoomPrune { room: self.room }));
            }
        }
        out
    }

    /// A lazy announcement: remember what is missing; the graft decision
    /// happens on [`RoomOverlay::service`] once the timeout passes (the
    /// eager copy usually wins the race).
    pub fn on_ihave(&mut self, from: NodeId, ids: Vec<MsgId>, now_ms: u64) {
        for id in ids {
            if self.already_delivered(id) {
                continue;
            }
            let entry = self
                .missing
                .entry(id)
                .or_insert_with(|| (now_ms, Vec::new()));
            if !entry.1.contains(&from) {
                entry.1.push(from);
            }
        }
        // Bounded: drop the oldest entries beyond the cap — they stay
        // recoverable through the repair digests.
        while self.missing.len() > self.cfg.repair_window * MISSING_CAP_FACTOR {
            let Some(oldest) = self
                .missing
                .iter()
                .min_by_key(|(_, (at, _))| *at)
                .map(|(id, _)| *id)
            else {
                break;
            };
            self.missing.remove(&oldest);
        }
    }

    /// A peer grafts this link: promote it to eager and, when the wanted
    /// message is still in the log, push it back along the now-eager link.
    pub fn on_graft(&mut self, from: NodeId, id: MsgId, _now_ms: u64) -> Vec<Send> {
        self.promote_eager(from);
        let mut out = Vec::new();
        if let Some(payload) = self.log.get(&(id.origin, id.inc), id.seq) {
            out.push((
                from,
                OverlayMsg::RoomPush {
                    room: self.room,
                    id,
                    // A grafted push re-enters normal dissemination at the
                    // receiver (it may need to keep relaying downstream).
                    round: self.cfg.push_ttl.saturating_sub(1),
                    payload: payload.clone(),
                },
            ));
        }
        out
    }

    /// A peer pruned this link: stop pushing payloads to it.
    pub fn on_prune(&mut self, from: NodeId) {
        if self.eager.remove(&from) {
            self.lazy.insert(from);
        }
    }

    /// A room repair digest arrived: pull the gaps it can serve.
    pub fn on_repair_digest(&mut self, from: NodeId, spans: Vec<RoomSpan>) -> Vec<Send> {
        let mut wants = Vec::new();
        for span in spans {
            if span.origin == self.me {
                continue;
            }
            let tracker = self.delivered.entry((span.origin, span.inc)).or_default();
            let mut missing = Vec::new();
            tracker.missing_in(
                span.lo,
                span.hi,
                self.cfg.repair_window - wants.len().min(self.cfg.repair_window),
                &mut missing,
            );
            wants.extend(missing.into_iter().map(|seq| MsgId {
                origin: span.origin,
                inc: span.inc,
                seq,
            }));
            if wants.len() >= self.cfg.repair_window {
                break;
            }
        }
        if wants.is_empty() {
            return Vec::new();
        }
        self.stats.repair_pulls += 1;
        vec![(
            from,
            OverlayMsg::RoomRepairPull {
                room: self.room,
                wants,
            },
        )]
    }

    /// A peer pulls gaps: serve them from the room's repair log.
    pub fn on_repair_pull(&mut self, from: NodeId, wants: Vec<MsgId>) -> Vec<Send> {
        let mut out = Vec::new();
        let budget = self.cfg.repair_window * 2;
        for id in wants.into_iter().take(budget) {
            if let Some(payload) = self.log.get(&(id.origin, id.inc), id.seq) {
                self.stats.repair_pushes += 1;
                out.push((
                    from,
                    OverlayMsg::RoomRepairPush {
                        room: self.room,
                        id,
                        payload: payload.clone(),
                    },
                ));
            }
        }
        out
    }

    /// A pulled original arrived.
    pub fn on_repair_push(
        &mut self,
        id: MsgId,
        payload: Bytes,
        now_ms: u64,
        deliveries: &mut Vec<Delivery>,
    ) {
        if self.record_delivered(id) {
            self.stats.delivered += 1;
            self.stats.repaired += 1;
            self.missing.remove(&id);
            if self.cfg.repair_interval_ms > 0 {
                self.log.store(
                    (id.origin, id.inc),
                    id.seq,
                    payload.clone(),
                    now_ms,
                    self.cfg.repair_log_cap,
                );
            }
            deliveries.push((id, payload));
        }
    }

    /// The periodic service tick: graft overdue missing announcements and,
    /// on the repair cadence, gossip a digest of the servable spans.
    /// `repair_due` is true when `repair_interval_ms` has elapsed since the
    /// previous tick (the caller owns the clock).
    pub fn service(&mut self, now_ms: u64, repair_due: bool, rng: &mut SimRng) -> Vec<Send> {
        let mut out = Vec::new();
        // Grafts for announcements that outlived the eager race.
        let overdue: Vec<MsgId> = self
            .missing
            .iter()
            .filter(|(id, (at, announcers))| {
                now_ms.saturating_sub(*at) >= self.cfg.graft_timeout_ms
                    && !announcers.is_empty()
                    && !self.already_delivered(**id)
            })
            .map(|(id, _)| *id)
            .collect();
        for id in overdue {
            let Some((_, announcers)) = self.missing.get_mut(&id) else {
                continue;
            };
            let target = announcers.remove(0);
            let give_up = announcers.is_empty();
            self.promote_eager(target);
            self.stats.grafts += 1;
            out.push((
                target,
                OverlayMsg::RoomGraft {
                    room: self.room,
                    id,
                },
            ));
            if give_up {
                // Out of announcers: leave recovery to the repair digests.
                self.missing.remove(&id);
            }
        }
        if repair_due && self.cfg.repair_interval_ms > 0 {
            self.log.evict(now_ms, self.cfg.repair_log_ttl_ms);
            let spans: Vec<RoomSpan> = self
                .log
                .spans()
                .into_iter()
                .map(|((origin, inc), lo, hi)| RoomSpan {
                    origin,
                    inc,
                    lo,
                    hi,
                })
                .collect();
            if !spans.is_empty() {
                let links: Vec<NodeId> =
                    self.eager.iter().chain(self.lazy.iter()).copied().collect();
                let mut pool = links;
                pool.sort_unstable_by_key(|node| node.0);
                for _ in 0..self.cfg.repair_fanout.min(pool.len()) {
                    let index = rng.random_below(pool.len() as u64) as usize;
                    let target = pool.swap_remove(index);
                    self.stats.repair_digests += 1;
                    out.push((
                        target,
                        OverlayMsg::RoomRepairDigest {
                            room: self.room,
                            spans: spans.clone(),
                        },
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links(overlays: &mut BTreeMap<NodeId, RoomOverlay>, edges: &[(u32, u32)]) {
        for (a, b) in edges {
            overlays.get_mut(&NodeId(*a)).unwrap().add_link(NodeId(*b));
            overlays.get_mut(&NodeId(*b)).unwrap().add_link(NodeId(*a));
        }
    }

    /// Synchronous bus: delivers messages FIFO until quiescence; drops
    /// messages whose id is in `lossy` the first `loss_count` times.
    fn run_bus(
        overlays: &mut BTreeMap<NodeId, RoomOverlay>,
        seeds: Vec<(NodeId, Vec<Send>)>,
        now_ms: u64,
        deliveries: &mut BTreeMap<NodeId, Vec<Delivery>>,
        mut drop_one_push_to: Option<NodeId>,
    ) {
        let mut queue: std::collections::VecDeque<(NodeId, NodeId, OverlayMsg)> = seeds
            .into_iter()
            .flat_map(|(from, sends)| sends.into_iter().map(move |(to, m)| (from, to, m)))
            .collect();
        let mut hops = 0;
        while let Some((from, to, msg)) = queue.pop_front() {
            hops += 1;
            assert!(hops < 100_000, "room bus diverged");
            if matches!(msg, OverlayMsg::RoomPush { .. }) && drop_one_push_to == Some(to) {
                drop_one_push_to = None;
                continue;
            }
            let Some(overlay) = overlays.get_mut(&to) else {
                continue;
            };
            let delivered = deliveries.entry(to).or_default();
            let replies = match msg {
                OverlayMsg::RoomPush {
                    id, round, payload, ..
                } => overlay.on_push(from, id, round, payload, now_ms, delivered),
                OverlayMsg::RoomIHave { ids, .. } => {
                    overlay.on_ihave(from, ids, now_ms);
                    Vec::new()
                }
                OverlayMsg::RoomGraft { id, .. } => overlay.on_graft(from, id, now_ms),
                OverlayMsg::RoomPrune { .. } => {
                    overlay.on_prune(from);
                    Vec::new()
                }
                OverlayMsg::RoomRepairDigest { spans, .. } => overlay.on_repair_digest(from, spans),
                OverlayMsg::RoomRepairPull { wants, .. } => overlay.on_repair_pull(from, wants),
                OverlayMsg::RoomRepairPush { id, payload, .. } => {
                    overlay.on_repair_push(id, payload, now_ms, delivered);
                    Vec::new()
                }
                other => panic!("unexpected room message {other:?}"),
            };
            for (target, reply) in replies {
                queue.push_back((to, target, reply));
            }
        }
    }

    fn room_of(n: u32, edges: &[(u32, u32)]) -> BTreeMap<NodeId, RoomOverlay> {
        let mut overlays: BTreeMap<NodeId, RoomOverlay> = (0..n)
            .map(|id| {
                (
                    NodeId(id),
                    RoomOverlay::new(NodeId(id), 9, 1, RoomConfig::default()),
                )
            })
            .collect();
        links(&mut overlays, edges);
        overlays
    }

    #[test]
    fn flood_covers_every_member_once() {
        let mut overlays = room_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut deliveries = BTreeMap::new();
        let sends = overlays
            .get_mut(&NodeId(0))
            .unwrap()
            .publish(Bytes::from_static(b"m0"), 0);
        run_bus(
            &mut overlays,
            vec![(NodeId(0), sends)],
            0,
            &mut deliveries,
            None,
        );
        for id in 1..5u32 {
            let got = &deliveries[&NodeId(id)];
            assert_eq!(got.len(), 1, "node {id} must deliver exactly once");
        }
    }

    #[test]
    fn duplicates_prune_links_into_a_tree() {
        let mut overlays = room_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut deliveries = BTreeMap::new();
        for round in 0..4u64 {
            let sends = overlays
                .get_mut(&NodeId(0))
                .unwrap()
                .publish(Bytes::from_static(b"mm"), round * 10);
            run_bus(
                &mut overlays,
                vec![(NodeId(0), sends)],
                round * 10,
                &mut deliveries,
                None,
            );
        }
        let total_eager: usize = overlays.values().map(|o| o.eager().count()).sum();
        // A tree over 5 nodes has 4 edges = 8 directed eager links; pruning
        // must have trimmed the 6-edge mesh close to that.
        assert!(
            total_eager <= 10,
            "eager mesh not pruned: {total_eager} directed links"
        );
        let coverage: usize = deliveries.values().map(Vec::len).sum();
        assert_eq!(coverage, 16, "4 messages x 4 receivers, no duplicates");
    }

    #[test]
    fn graft_recovers_a_lost_eager_push() {
        let mut overlays = room_of(3, &[(0, 1), (1, 2), (0, 2)]);
        // Prune 0-2 into a lazy link so node 2 hangs off node 1.
        overlays.get_mut(&NodeId(0)).unwrap().on_prune(NodeId(2));
        overlays.get_mut(&NodeId(2)).unwrap().on_prune(NodeId(0));
        let mut deliveries = BTreeMap::new();
        // The eager push 1→2 is dropped; 2 only hears the IHave from 0.
        let sends = overlays
            .get_mut(&NodeId(0))
            .unwrap()
            .publish(Bytes::from_static(b"lost"), 0);
        run_bus(
            &mut overlays,
            vec![(NodeId(0), sends)],
            0,
            &mut deliveries,
            Some(NodeId(2)),
        );
        assert!(deliveries.get(&NodeId(2)).map(Vec::len).unwrap_or(0) == 0);
        // Service past the graft timeout: node 2 grafts at an announcer.
        let mut rng = SimRng::new(5);
        let sends = overlays
            .get_mut(&NodeId(2))
            .unwrap()
            .service(1_000, false, &mut rng);
        assert!(
            sends
                .iter()
                .any(|(_, m)| matches!(m, OverlayMsg::RoomGraft { .. })),
            "overdue announcement must graft"
        );
        run_bus(
            &mut overlays,
            vec![(NodeId(2), sends)],
            1_000,
            &mut deliveries,
            None,
        );
        assert_eq!(deliveries[&NodeId(2)].len(), 1, "grafted payload arrives");
        assert!(overlays[&NodeId(2)].stats().grafts >= 1);
    }

    #[test]
    fn repair_digest_recovers_when_no_announcement_survived() {
        let mut overlays = room_of(2, &[(0, 1)]);
        let mut deliveries = BTreeMap::new();
        // Publish while node 1's only link drops the push AND the IHave
        // never exists (single link, no lazy edge): simulate by just not
        // running the bus at all.
        let _lost = overlays
            .get_mut(&NodeId(0))
            .unwrap()
            .publish(Bytes::from_static(b"gap"), 0);
        // Repair tick on node 0 → digest → pull → push.
        let mut rng = SimRng::new(9);
        let sends = overlays
            .get_mut(&NodeId(0))
            .unwrap()
            .service(1_000, true, &mut rng);
        assert!(
            sends
                .iter()
                .any(|(_, m)| matches!(m, OverlayMsg::RoomRepairDigest { .. })),
            "repair tick must gossip a digest"
        );
        run_bus(
            &mut overlays,
            vec![(NodeId(0), sends)],
            1_000,
            &mut deliveries,
            None,
        );
        assert_eq!(
            deliveries[&NodeId(1)].len(),
            1,
            "NACK repair closes the gap"
        );
        assert_eq!(overlays[&NodeId(1)].stats().repaired, 1);
    }

    #[test]
    fn direct_push_rooms_never_prune() {
        let cfg = RoomConfig {
            allow_prune: false,
            ..RoomConfig::default()
        };
        let mut overlays: BTreeMap<NodeId, RoomOverlay> = (0..3)
            .map(|id| (NodeId(id), RoomOverlay::new(NodeId(id), 1, 1, cfg)))
            .collect();
        links(&mut overlays, &[(0, 1), (1, 2), (0, 2)]);
        let mut deliveries = BTreeMap::new();
        for round in 0..3u64 {
            let sends = overlays
                .get_mut(&NodeId(0))
                .unwrap()
                .publish(Bytes::from_static(b"dp"), round);
            run_bus(
                &mut overlays,
                vec![(NodeId(0), sends)],
                round,
                &mut deliveries,
                None,
            );
        }
        for overlay in overlays.values() {
            assert_eq!(overlay.lazy().count(), 0, "direct-push keeps links eager");
        }
    }
}
