//! Whole-overlay simulation over the deterministic network simulator.
//!
//! [`RoomSimulation`] drives a full deployment — partial-view membership on
//! every node plus one [`RoomOverlay`] per (node, subscribed room) — over
//! [`morpheus_netsim`]'s event-driven network: every protocol message is
//! wire-encoded ([`OverlayMsg`]), charged to the sender under its traffic
//! class, transmitted with latency and loss, and decoded at the receiver.
//! The harness is what the scale evaluation runs: it produces per-node
//! bytes-on-wire broken down by component and per-room coverage under
//! injected data loss and churn.
//!
//! Two things are materialised by the harness rather than negotiated on
//! the wire, both documented where they happen: the per-room neighbour
//! graphs (a connected ring-plus-chords over each room's members — in a
//! full deployment the rendezvous would route through the partial view)
//! and failure suspicion (modelled as a delayed sweep after a crash, in
//! place of a per-link failure detector). Everything else — joins,
//! shuffles, subscriptions, pushes, grafts, prunes and NACK repair — flows
//! through the simulated network as real encoded packets.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use morpheus_appia::platform::{NodeId, PacketClass};
use morpheus_appia::wire::Wire;
use morpheus_cocaditem::RoomContext;
use morpheus_core::RoomStackKind;
use morpheus_netsim::{
    EventQueue, Network, NodeId as SimNodeId, Packet, PacketTarget, SimRng, SimTime, Topology,
    TrafficClass,
};

use crate::membership::{MembershipConfig, PartialView};
use crate::plumtree::{RoomConfig, RoomOverlay};
use crate::policy::{choose_room_stack, render_room_config};
use crate::wire::{MsgId, OverlayMsg};
use crate::zipf::RoomPlan;

/// Assumed per-packet header overhead (IP + UDP), in bytes.
const HEADER_BYTES: usize = 28;

/// Hard cap on processed events — a runaway-loop backstop far above any
/// configured scenario.
const EVENT_CAP: u64 = 50_000_000;

/// The scenario one simulation runs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Seed of every random choice in the run.
    pub seed: u64,
    /// Population size.
    pub nodes: u32,
    /// Number of rooms.
    pub rooms: u32,
    /// Zipf exponent of the room-size distribution.
    pub zipf_exponent: f64,
    /// Simulated duration, ms.
    pub duration_ms: u64,
    /// Messages published into each room over the run.
    pub publishes_per_room: u32,
    /// Application payload size per publish, bytes.
    pub payload_bytes: usize,
    /// Extra loss injected on Data-class deliveries (0.0–1.0).
    pub data_loss: f64,
    /// Partial-view knobs.
    pub membership: MembershipConfig,
    /// Cadence of the membership shuffle per node, ms.
    pub shuffle_interval_ms: u64,
    /// Cadence of the per-node service tick (graft timers), ms.
    pub service_interval_ms: u64,
    /// Cadence of the per-room repair digest, ms (`0` disables NACK repair).
    pub repair_interval_ms: u64,
    /// Age bound of the per-room repair log, ms.
    pub repair_log_ttl_ms: u64,
    /// How many subscribed nodes crash and later restart (`0` = no churn).
    pub churn_count: u32,
    /// Crash time, ms.
    pub churn_at_ms: u64,
    /// Restart time, ms.
    pub churn_restart_ms: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            nodes: 60,
            rooms: 40,
            zipf_exponent: 1.0,
            duration_ms: 20_000,
            publishes_per_room: 3,
            payload_bytes: 64,
            data_loss: 0.0,
            membership: MembershipConfig::default(),
            shuffle_interval_ms: 1_000,
            service_interval_ms: 100,
            repair_interval_ms: 1_000,
            repair_log_ttl_ms: 120_000,
            churn_count: 0,
            churn_at_ms: 0,
            churn_restart_ms: 0,
        }
    }
}

/// Per-node bytes-on-wire, broken down by component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCost {
    /// The node.
    pub node: u32,
    /// How many rooms it subscribes to.
    pub subscriptions: usize,
    /// Application payload dissemination (eager pushes).
    pub data_bytes: u64,
    /// Overlay maintenance: joins, shuffles, announcements, grafts, prunes.
    pub overlay_bytes: u64,
    /// NACK repair: digests, pulls, served originals.
    pub repair_bytes: u64,
    /// Subscription control.
    pub control_bytes: u64,
}

impl NodeCost {
    /// The cost the scale criterion compares: data + overlay maintenance.
    pub fn data_overlay(&self) -> u64 {
        self.data_bytes + self.overlay_bytes
    }
}

/// Per-room dissemination outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoomCoverage {
    /// The room.
    pub room: u32,
    /// Subscribed members.
    pub size: usize,
    /// The stack the per-room policy chose.
    pub stack: String,
    /// Messages published into the room.
    pub published: u64,
    /// (message, live member) pairs that should have delivered.
    pub expected: u64,
    /// Pairs that actually delivered.
    pub delivered: u64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomSimReport {
    /// Per-node component costs, ordered by node id.
    pub nodes: Vec<NodeCost>,
    /// Per-room coverage, ordered by room id.
    pub rooms: Vec<RoomCoverage>,
    /// Rooms the policy put on direct push.
    pub direct_rooms: usize,
    /// Rooms the policy put on the spanning tree.
    pub tree_rooms: usize,
    /// Nodes that crashed and rejoined.
    pub rejoined: Vec<u32>,
    /// Largest number of distinct peers any rejoiner exchanged messages
    /// with after restarting — the view-change blast radius of churn.
    pub rejoin_touched_max: usize,
    /// Events the run processed.
    pub events_processed: u64,
}

impl RoomSimReport {
    /// Overall delivery coverage across all rooms (1.0 = every live member
    /// got every message).
    pub fn coverage(&self) -> f64 {
        let expected: u64 = self.rooms.iter().map(|r| r.expected).sum();
        let delivered: u64 = self.rooms.iter().map(|r| r.delivered).sum();
        if expected == 0 {
            return 1.0;
        }
        delivered as f64 / expected as f64
    }

    /// Rooms whose every live member delivered every message.
    pub fn fully_covered_rooms(&self) -> usize {
        self.rooms
            .iter()
            .filter(|r| r.delivered >= r.expected)
            .count()
    }

    /// Median per-node data+overlay cost across the population.
    pub fn median_cost(&self) -> u64 {
        let mut costs: Vec<u64> = self.nodes.iter().map(NodeCost::data_overlay).collect();
        costs.sort_unstable();
        costs.get(costs.len() / 2).copied().unwrap_or(0)
    }

    /// Median data+overlay cost of the top decile of subscribers (the
    /// nodes with the most room memberships).
    pub fn top_decile_cost(&self) -> u64 {
        let mut by_subs = self.nodes.clone();
        by_subs.sort_by_key(|n| n.subscriptions);
        let decile = (by_subs.len() / 10).max(1);
        let top: Vec<u64> = by_subs
            .iter()
            .rev()
            .take(decile)
            .map(NodeCost::data_overlay)
            .collect();
        let mut top = top;
        top.sort_unstable();
        top.get(top.len() / 2).copied().unwrap_or(0)
    }

    /// Median subscription count across the population.
    pub fn median_subscriptions(&self) -> usize {
        let mut subs: Vec<usize> = self.nodes.iter().map(|n| n.subscriptions).collect();
        subs.sort_unstable();
        subs.get(subs.len() / 2).copied().unwrap_or(0)
    }
}

enum SimEvent {
    /// A wire-encoded packet arriving at a node.
    Arrive {
        to: NodeId,
        from: NodeId,
        bytes: Bytes,
    },
    Join(NodeId),
    Subscribe(NodeId),
    Shuffle(NodeId),
    Service(NodeId),
    Publish {
        room: u32,
    },
    Crash(NodeId),
    /// The failure-suspicion sweep after a crash (models the failure
    /// detector's notification without simulating per-link heartbeats).
    Suspect(NodeId),
    Restart(NodeId),
}

struct NodeState {
    view: PartialView,
    /// The node's room overlays, one per subscribed room.
    // bound: one entry per subscription of this node, fixed by the room plan.
    rooms: BTreeMap<u32, RoomOverlay>,
    /// Room neighbour lists from the plan-derived room graphs.
    // bound: one entry per subscription; each list is capped by the room's graph degree.
    neighbors: BTreeMap<u32, Vec<NodeId>>,
    alive: bool,
    service_ticks: u64,
    /// Distinct peers contacted since restarting (rejoiners only).
    // bound: at most the population size; only populated for the few churned nodes.
    rejoin_touched: Option<BTreeSet<NodeId>>,
}

/// The simulation harness.
pub struct RoomSimulation {
    cfg: SimConfig,
    plan: RoomPlan,
    network: Network,
    rng: SimRng,
    queue: EventQueue<SimEvent>,
    /// Per-node protocol state, indexed by node id.
    // bound: one entry per node, fixed at construction.
    nodes: Vec<NodeState>,
    /// Message ids published into each room.
    // bound: `publishes_per_room` ids per room, fixed by the scenario.
    published: Vec<Vec<MsgId>>,
    /// The stack each room runs.
    // bound: one entry per room, fixed at construction.
    kinds: Vec<RoomStackKind>,
    rejoined: Vec<u32>,
    events_processed: u64,
    now_ms: u64,
}

fn traffic_class(class: PacketClass) -> TrafficClass {
    match class {
        PacketClass::Data => TrafficClass::Data,
        PacketClass::Control => TrafficClass::Control,
        PacketClass::Context => TrafficClass::Context,
        PacketClass::Repair => TrafficClass::Repair,
        PacketClass::Overlay => TrafficClass::Overlay,
    }
}

impl RoomSimulation {
    /// Builds the scenario: generates the room plan, classifies every room
    /// through the per-room policy, derives the room neighbour graphs and
    /// schedules joins, subscriptions, ticks, publishes and churn.
    pub fn new(cfg: SimConfig) -> Self {
        let plan = RoomPlan::generate(cfg.seed, cfg.nodes, cfg.rooms, cfg.zipf_exponent);
        let mut rng = SimRng::new(cfg.seed ^ 0x4f56_4c53_494d);
        let network = Network::new(Topology::lan(cfg.nodes as usize, false));

        // Per-room stack selection: the publish rate is the scenario's
        // configured rate; size comes from the plan.
        let rate_per_min = if cfg.duration_ms == 0 {
            0.0
        } else {
            cfg.publishes_per_room as f64 * 60_000.0 / cfg.duration_ms as f64
        };
        let kinds: Vec<RoomStackKind> = (0..plan.room_count() as u32)
            .map(|room| {
                let context = RoomContext::synthetic(room, plan.members(room).len(), rate_per_min);
                choose_room_stack(&context)
            })
            .collect();

        // Room graphs: a ring over the members plus random chords, so every
        // room is connected with bounded degree. In a full deployment the
        // rendezvous would route through the partial view; the harness
        // materialises the same outcome deterministically.
        let mut neighbor_sets: Vec<BTreeMap<NodeId, BTreeSet<NodeId>>> =
            Vec::with_capacity(plan.room_count());
        for room in 0..plan.room_count() as u32 {
            let members = plan.members(room);
            let size = members.len();
            let mut edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
            let add = |a: NodeId, b: NodeId, edges: &mut BTreeSet<(NodeId, NodeId)>| {
                if a != b {
                    edges.insert((a.min(b), a.max(b)));
                }
            };
            for i in 0..size {
                add(members[i], members[(i + 1) % size], &mut edges);
            }
            if size > 4 {
                for i in 0..size {
                    let j = rng.random_below(size as u64) as usize;
                    add(members[i], members[j], &mut edges);
                }
            }
            let mut map: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
            for (a, b) in edges {
                map.entry(a).or_default().insert(b);
                map.entry(b).or_default().insert(a);
            }
            neighbor_sets.push(map);
        }

        let base_room_cfg = RoomConfig {
            repair_interval_ms: cfg.repair_interval_ms,
            repair_log_ttl_ms: cfg.repair_log_ttl_ms,
            ..RoomConfig::default()
        };
        let nodes: Vec<NodeState> = (0..cfg.nodes)
            .map(|id| {
                let me = NodeId(id);
                let mut rooms = BTreeMap::new();
                let mut neighbors = BTreeMap::new();
                for room in plan.rooms_of(me) {
                    let room_cfg = render_room_config(&kinds[*room as usize], base_room_cfg);
                    rooms.insert(*room, RoomOverlay::new(me, *room, 1, room_cfg));
                    let peers: Vec<NodeId> = neighbor_sets[*room as usize]
                        .get(&me)
                        .map(|set| set.iter().copied().collect())
                        .unwrap_or_default();
                    neighbors.insert(*room, peers);
                }
                NodeState {
                    view: PartialView::new(me, cfg.membership),
                    rooms,
                    neighbors,
                    alive: true,
                    service_ticks: 0,
                    rejoin_touched: None,
                }
            })
            .collect();

        let mut queue = EventQueue::new();
        for id in 0..cfg.nodes {
            let node = NodeId(id);
            queue.push(
                SimTime::from_millis(u64::from(id % 97)),
                SimEvent::Join(node),
            );
            queue.push(
                SimTime::from_millis(100 + u64::from(id % 61)),
                SimEvent::Subscribe(node),
            );
            queue.push(
                SimTime::from_millis(cfg.shuffle_interval_ms + u64::from(id % 199)),
                SimEvent::Shuffle(node),
            );
            queue.push(
                SimTime::from_millis(cfg.service_interval_ms + u64::from(id % 53)),
                SimEvent::Service(node),
            );
        }
        // Publishes: spread over the middle of the run, leaving the tail
        // for the repair pass to close residual gaps.
        let warm = cfg.duration_ms / 5;
        let span = cfg.duration_ms / 2;
        for room in 0..plan.room_count() as u32 {
            for index in 0..cfg.publishes_per_room {
                let at = warm
                    + u64::from(index) * span / u64::from(cfg.publishes_per_room.max(1))
                    + u64::from(room % 211);
                queue.push(SimTime::from_millis(at), SimEvent::Publish { room });
            }
        }
        // Churn: crash subscribed nodes, restart them later.
        if cfg.churn_count > 0 {
            let mut candidates: Vec<NodeId> = (0..cfg.nodes)
                .map(NodeId)
                .filter(|node| !plan.rooms_of(*node).is_empty())
                .collect();
            for _ in 0..cfg.churn_count.min(candidates.len() as u32) {
                let index = rng.random_below(candidates.len() as u64) as usize;
                let victim = candidates.swap_remove(index);
                queue.push(
                    SimTime::from_millis(cfg.churn_at_ms),
                    SimEvent::Crash(victim),
                );
                queue.push(
                    SimTime::from_millis(cfg.churn_at_ms + 2_000),
                    SimEvent::Suspect(victim),
                );
                queue.push(
                    SimTime::from_millis(cfg.churn_restart_ms),
                    SimEvent::Restart(victim),
                );
            }
        }

        let published = vec![Vec::new(); plan.room_count()];
        Self {
            cfg,
            plan,
            network,
            rng,
            queue,
            nodes,
            published,
            kinds,
            rejoined: Vec::new(),
            events_processed: 0,
            now_ms: 0,
        }
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, msg: &OverlayMsg) {
        let bytes = msg.to_bytes();
        let class = traffic_class(msg.class());
        let packet = Packet {
            from: SimNodeId(from.0),
            target: PacketTarget::Unicast(SimNodeId(to.0)),
            size_bytes: bytes.len() + HEADER_BYTES,
            class,
            payload: bytes,
        };
        let now = SimTime::from_millis(self.now_ms);
        for delivery in self.network.send(packet, now, &mut self.rng) {
            // Injected data loss, on top of the link model's own: the
            // bytes were spent (the sender is still charged), the packet
            // just never arrives — which is what the repair pass exists
            // to survive.
            if delivery.class == TrafficClass::Data && self.rng.chance(self.cfg.data_loss) {
                continue;
            }
            self.queue.push(
                delivery.at,
                SimEvent::Arrive {
                    to: NodeId(delivery.to.0),
                    from: NodeId(delivery.from.0),
                    bytes: delivery.payload,
                },
            );
        }
    }

    fn dispatch(&mut self, from: NodeId, sends: Vec<(NodeId, OverlayMsg)>) {
        if let Some(touched) = self.nodes[from.0 as usize].rejoin_touched.as_mut() {
            for (to, _) in &sends {
                touched.insert(*to);
            }
        }
        for (to, msg) in sends {
            self.transmit(from, to, &msg);
        }
    }

    fn on_arrive(&mut self, to: NodeId, from: NodeId, bytes: Bytes) {
        let Ok(msg) = OverlayMsg::from_bytes(&bytes) else {
            return;
        };
        let index = to.0 as usize;
        if !self.nodes[index].alive {
            return;
        }
        let now_ms = self.now_ms;
        let mut deliveries = Vec::new();
        let sends = {
            let node = &mut self.nodes[index];
            match msg {
                OverlayMsg::Join { joiner } => node.view.on_join(joiner, &mut self.rng),
                OverlayMsg::ForwardJoin { joiner, ttl } => {
                    node.view.on_forward_join(from, joiner, ttl, &mut self.rng)
                }
                OverlayMsg::Neighbor { high_priority } => {
                    node.view.on_neighbor(from, high_priority, &mut self.rng)
                }
                OverlayMsg::NeighborReply { accepted } => {
                    node.view.on_neighbor_reply(from, accepted, &mut self.rng)
                }
                OverlayMsg::Disconnect => node.view.on_disconnect(from, &mut self.rng),
                OverlayMsg::Shuffle { origin, ttl, nodes } => {
                    node.view
                        .on_shuffle(from, origin, ttl, nodes, &mut self.rng)
                }
                OverlayMsg::ShuffleReply { nodes } => {
                    node.view.on_shuffle_reply(nodes, &mut self.rng);
                    Vec::new()
                }
                OverlayMsg::Subscribe { room } => {
                    if let Some(overlay) = node.rooms.get_mut(&room) {
                        overlay.add_link(from);
                    }
                    Vec::new()
                }
                OverlayMsg::Unsubscribe { room } => {
                    if let Some(overlay) = node.rooms.get_mut(&room) {
                        overlay.remove_link(from);
                    }
                    Vec::new()
                }
                OverlayMsg::RoomPush {
                    room,
                    id,
                    round,
                    payload,
                } => node
                    .rooms
                    .get_mut(&room)
                    .map(|overlay| {
                        overlay.on_push(from, id, round, payload, now_ms, &mut deliveries)
                    })
                    .unwrap_or_default(),
                OverlayMsg::RoomIHave { room, ids } => {
                    if let Some(overlay) = node.rooms.get_mut(&room) {
                        overlay.on_ihave(from, ids, now_ms);
                    }
                    Vec::new()
                }
                OverlayMsg::RoomGraft { room, id } => node
                    .rooms
                    .get_mut(&room)
                    .map(|overlay| overlay.on_graft(from, id, now_ms))
                    .unwrap_or_default(),
                OverlayMsg::RoomPrune { room } => {
                    if let Some(overlay) = node.rooms.get_mut(&room) {
                        overlay.on_prune(from);
                    }
                    Vec::new()
                }
                OverlayMsg::RoomRepairDigest { room, spans } => node
                    .rooms
                    .get_mut(&room)
                    .map(|overlay| overlay.on_repair_digest(from, spans))
                    .unwrap_or_default(),
                OverlayMsg::RoomRepairPull { room, wants } => node
                    .rooms
                    .get_mut(&room)
                    .map(|overlay| overlay.on_repair_pull(from, wants))
                    .unwrap_or_default(),
                OverlayMsg::RoomRepairPush { room, id, payload } => {
                    if let Some(overlay) = node.rooms.get_mut(&room) {
                        overlay.on_repair_push(id, payload, now_ms, &mut deliveries);
                    }
                    Vec::new()
                }
            }
        };
        self.dispatch(to, sends);
    }

    fn on_event(&mut self, event: SimEvent) {
        match event {
            SimEvent::Arrive { to, from, bytes } => self.on_arrive(to, from, bytes),
            SimEvent::Join(node) => {
                if node.0 > 0 {
                    let contact = NodeId(self.rng.random_below(u64::from(node.0)) as u32);
                    let sends = self.nodes[node.0 as usize]
                        .view
                        .join(contact, &mut self.rng);
                    self.dispatch(node, sends);
                }
            }
            SimEvent::Subscribe(node) => {
                let index = node.0 as usize;
                if !self.nodes[index].alive {
                    return;
                }
                let sends: Vec<(NodeId, OverlayMsg)> = self.nodes[index]
                    .neighbors
                    .iter()
                    .flat_map(|(room, peers)| {
                        peers
                            .iter()
                            .map(|peer| (*peer, OverlayMsg::Subscribe { room: *room }))
                    })
                    .collect();
                // Our side of each link comes up as the subscription goes
                // out; the peer's side comes up when it arrives.
                let rooms: Vec<(u32, Vec<NodeId>)> = self.nodes[index]
                    .neighbors
                    .iter()
                    .map(|(room, peers)| (*room, peers.clone()))
                    .collect();
                for (room, peers) in rooms {
                    if let Some(overlay) = self.nodes[index].rooms.get_mut(&room) {
                        for peer in peers {
                            overlay.add_link(peer);
                        }
                    }
                }
                self.dispatch(node, sends);
            }
            SimEvent::Shuffle(node) => {
                let index = node.0 as usize;
                if self.nodes[index].alive {
                    let sends = self.nodes[index].view.shuffle_tick(&mut self.rng);
                    self.dispatch(node, sends);
                }
                let next = self.now_ms + self.cfg.shuffle_interval_ms;
                if next < self.cfg.duration_ms {
                    self.queue
                        .push(SimTime::from_millis(next), SimEvent::Shuffle(node));
                }
            }
            SimEvent::Service(node) => {
                let index = node.0 as usize;
                if self.nodes[index].alive {
                    self.nodes[index].service_ticks += 1;
                    let ticks = self.nodes[index].service_ticks;
                    let per_repair =
                        (self.cfg.repair_interval_ms / self.cfg.service_interval_ms.max(1)).max(1);
                    let repair_due = ticks.is_multiple_of(per_repair);
                    let rooms: Vec<u32> = self.nodes[index].rooms.keys().copied().collect();
                    for room in rooms {
                        let sends = {
                            let overlay = self.nodes[index].rooms.get_mut(&room).unwrap();
                            overlay.service(self.now_ms, repair_due, &mut self.rng)
                        };
                        self.dispatch(node, sends);
                    }
                }
                let next = self.now_ms + self.cfg.service_interval_ms;
                if next < self.cfg.duration_ms {
                    self.queue
                        .push(SimTime::from_millis(next), SimEvent::Service(node));
                }
            }
            SimEvent::Publish { room } => {
                let Some(publisher) = self
                    .plan
                    .members(room)
                    .iter()
                    .copied()
                    .find(|member| self.nodes[member.0 as usize].alive)
                else {
                    return;
                };
                let payload = Bytes::from(vec![0x6du8; self.cfg.payload_bytes]);
                let (id, sends) = {
                    let overlay = self.nodes[publisher.0 as usize]
                        .rooms
                        .get_mut(&room)
                        .expect("publisher subscribes to its own room");
                    let before = overlay.stats().delivered;
                    let sends = overlay.publish(payload, self.now_ms);
                    debug_assert_eq!(overlay.stats().delivered, before + 1);
                    // The id the publish was assigned is reconstructible
                    // from the first push; for empty rooms fall back below.
                    let id = sends.iter().find_map(|(_, msg)| match msg {
                        OverlayMsg::RoomPush { id, .. } => Some(*id),
                        _ => None,
                    });
                    (id, sends)
                };
                if let Some(id) = id {
                    self.published[room as usize].push(id);
                }
                self.dispatch(publisher, sends);
            }
            SimEvent::Crash(node) => {
                let index = node.0 as usize;
                self.nodes[index].alive = false;
                if let Some(sim_node) = self.network.topology_mut().node_mut(SimNodeId(node.0)) {
                    sim_node.alive = false;
                }
            }
            SimEvent::Suspect(crashed) => {
                // The failure detector's verdict reaches everyone who holds
                // a link to the crashed node: active views repair around it,
                // room overlays drop its links.
                for id in 0..self.cfg.nodes {
                    if id == crashed.0 || !self.nodes[id as usize].alive {
                        continue;
                    }
                    let node = NodeId(id);
                    let sends = {
                        let state = &mut self.nodes[id as usize];
                        let mut sends = Vec::new();
                        if state.view.is_active(crashed) {
                            sends = state.view.on_suspicion(crashed, &mut self.rng);
                        }
                        for overlay in state.rooms.values_mut() {
                            overlay.remove_link(crashed);
                        }
                        sends
                    };
                    self.dispatch(node, sends);
                }
            }
            SimEvent::Restart(node) => {
                let index = node.0 as usize;
                if self.nodes[index].alive {
                    return;
                }
                self.nodes[index].alive = true;
                if let Some(sim_node) = self.network.topology_mut().node_mut(SimNodeId(node.0)) {
                    sim_node.alive = true;
                }
                self.rejoined.push(node.0);
                // Fresh membership state and a new stream incarnation: the
                // node re-enters through one contact's partial view — no
                // group-wide view change exists to wait for.
                let base_room_cfg = RoomConfig {
                    repair_interval_ms: self.cfg.repair_interval_ms,
                    repair_log_ttl_ms: self.cfg.repair_log_ttl_ms,
                    ..RoomConfig::default()
                };
                {
                    let state = &mut self.nodes[index];
                    state.view = PartialView::new(node, self.cfg.membership);
                    state.rejoin_touched = Some(BTreeSet::new());
                    let rooms: Vec<u32> = state.neighbors.keys().copied().collect();
                    for room in rooms {
                        let cfg = render_room_config(&self.kinds[room as usize], base_room_cfg);
                        state
                            .rooms
                            .insert(room, RoomOverlay::new(node, room, 2, cfg));
                    }
                }
                let contact = (0..self.cfg.nodes)
                    .map(NodeId)
                    .find(|peer| *peer != node && self.nodes[peer.0 as usize].alive);
                if let Some(contact) = contact {
                    let sends = self.nodes[index].view.join(contact, &mut self.rng);
                    self.dispatch(node, sends);
                }
                self.queue.push(
                    SimTime::from_millis(self.now_ms + 10),
                    SimEvent::Subscribe(node),
                );
            }
        }
    }

    /// Runs the scenario to its configured duration and reports.
    pub fn run(mut self) -> RoomSimReport {
        while let Some((at, event)) = self.queue.pop() {
            if at.as_millis() > self.cfg.duration_ms {
                break;
            }
            self.now_ms = at.as_millis();
            self.events_processed += 1;
            assert!(
                self.events_processed < EVENT_CAP,
                "room simulation event cap exceeded"
            );
            self.on_event(event);
        }
        self.report()
    }

    fn report(&self) -> RoomSimReport {
        let stats = self.network.stats();
        let nodes: Vec<NodeCost> = (0..self.cfg.nodes)
            .map(|id| {
                let node_stats = stats.node_or_default(SimNodeId(id));
                NodeCost {
                    node: id,
                    subscriptions: self.plan.subscription_count(NodeId(id)),
                    data_bytes: node_stats.bytes_sent_of(TrafficClass::Data),
                    overlay_bytes: node_stats.bytes_sent_of(TrafficClass::Overlay),
                    repair_bytes: node_stats.bytes_sent_of(TrafficClass::Repair),
                    control_bytes: node_stats.bytes_sent_of(TrafficClass::Control),
                }
            })
            .collect();
        let mut rooms = Vec::with_capacity(self.plan.room_count());
        let mut direct_rooms = 0;
        let mut tree_rooms = 0;
        for room in 0..self.plan.room_count() as u32 {
            match self.kinds[room as usize] {
                RoomStackKind::DirectPush => direct_rooms += 1,
                RoomStackKind::TreePush { .. } => tree_rooms += 1,
            }
            let members = self.plan.members(room);
            let ids = &self.published[room as usize];
            let mut expected = 0u64;
            let mut delivered = 0u64;
            for member in members {
                let state = &self.nodes[member.0 as usize];
                if !state.alive {
                    continue;
                }
                let Some(overlay) = state.rooms.get(&room) else {
                    continue;
                };
                for id in ids {
                    expected += 1;
                    if overlay.delivered_contains(*id) {
                        delivered += 1;
                    }
                }
            }
            rooms.push(RoomCoverage {
                room,
                size: members.len(),
                stack: self.kinds[room as usize].name(),
                published: ids.len() as u64,
                expected,
                delivered,
            });
        }
        let rejoin_touched_max = self
            .nodes
            .iter()
            .filter_map(|state| state.rejoin_touched.as_ref().map(BTreeSet::len))
            .max()
            .unwrap_or(0);
        RoomSimReport {
            nodes,
            rooms,
            direct_rooms,
            tree_rooms,
            rejoined: self.rejoined.clone(),
            rejoin_touched_max,
            events_processed: self.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            seed: 11,
            nodes: 40,
            rooms: 25,
            duration_ms: 12_000,
            publishes_per_room: 2,
            ..SimConfig::default()
        }
    }

    #[test]
    fn lossless_run_covers_every_room() {
        let report = RoomSimulation::new(quick_cfg()).run();
        assert_eq!(report.rooms.len(), 25);
        assert!(
            report.coverage() >= 1.0,
            "lossless coverage {} < 1.0",
            report.coverage()
        );
        assert_eq!(report.fully_covered_rooms(), 25);
        assert!(report.direct_rooms > 0, "small rooms must flood");
    }

    #[test]
    fn repair_closes_gaps_under_data_loss() {
        let cfg = SimConfig {
            data_loss: 0.10,
            ..quick_cfg()
        };
        let report = RoomSimulation::new(cfg).run();
        assert!(
            report.coverage() >= 1.0,
            "10% loss not repaired: coverage {}",
            report.coverage()
        );
        let repair_bytes: u64 = report.nodes.iter().map(|n| n.repair_bytes).sum();
        assert!(repair_bytes > 0, "repair must actually run under loss");
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let a = RoomSimulation::new(quick_cfg()).run();
        let b = RoomSimulation::new(quick_cfg()).run();
        assert_eq!(a, b, "same config must replay the identical report");
    }

    #[test]
    fn heavy_subscribers_pay_more_than_the_median() {
        let cfg = SimConfig {
            seed: 3,
            nodes: 80,
            rooms: 120,
            duration_ms: 15_000,
            publishes_per_room: 3,
            ..SimConfig::default()
        };
        let report = RoomSimulation::new(cfg).run();
        let top = report.top_decile_cost();
        let median = report.median_cost();
        assert!(
            top > median,
            "cost must scale with subscriptions: top {top} vs median {median}"
        );
    }

    #[test]
    fn churned_nodes_rejoin_without_a_group_wide_view_change() {
        let cfg = SimConfig {
            churn_count: 3,
            churn_at_ms: 4_000,
            churn_restart_ms: 7_000,
            data_loss: 0.05,
            ..quick_cfg()
        };
        let report = RoomSimulation::new(cfg).run();
        assert_eq!(report.rejoined.len(), 3, "every churned node restarts");
        assert!(report.rejoin_touched_max > 0, "rejoin exchanges messages");
        assert!(
            report.rejoin_touched_max < 40 / 2,
            "rejoin touched {} peers — that is a group-wide view change",
            report.rejoin_touched_max
        );
        // The room shards themselves recover: coverage stays high even
        // though three members lost all state mid-run.
        assert!(
            report.coverage() >= 0.98,
            "churn coverage {}",
            report.coverage()
        );
    }
}
