//! Deterministic Zipf-distributed room membership.
//!
//! Real chat workloads are heavy-tailed twice over: a few rooms hold a
//! large share of the population while most rooms are tiny, and a few
//! users sit in many rooms while most sit in a handful. [`RoomPlan`]
//! generates both tails deterministically from `(seed, n, rooms,
//! exponent)` — the same tuple always produces byte-identical plans, so a
//! scenario can be replayed exactly across runs and machines.
//!
//! Room sizes follow `size(r) ∝ 1 / (r+1)^exponent` (clamped to
//! `[MIN_ROOM_SIZE, n]`), and members are drawn by weighted sampling with
//! node weights `w(i) ∝ 1 / (rank(i)+1)^SUBSCRIBER_EXPONENT` over a
//! seed-derived rank permutation — which is what skews per-node
//! subscription counts and lets the evaluation compare top-decile against
//! median subscribers.

use morpheus_appia::platform::NodeId;
use morpheus_netsim::SimRng;

/// Smallest room the generator produces: a room needs a publisher and at
/// least one other subscriber to measure dissemination at all.
pub const MIN_ROOM_SIZE: usize = 2;

/// The largest room, as a fraction denominator of the population (`n / 5`).
const MAX_ROOM_DIVISOR: usize = 5;

/// Zipf exponent of the per-node subscription weights.
const SUBSCRIBER_EXPONENT: f64 = 0.9;

/// A fully materialised room-membership plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomPlan {
    n: u32,
    /// Members of each room, sorted by node id.
    // bound: `rooms` entries of at most `n / MAX_ROOM_DIVISOR` members each, fixed at generation.
    members: Vec<Vec<NodeId>>,
    /// Rooms of each node, sorted by room id.
    // bound: `n` entries; total size equals the sum of room sizes, fixed at generation.
    subscriptions: Vec<Vec<u32>>,
}

impl RoomPlan {
    /// Generates the plan for `n` nodes across `rooms` rooms. Deterministic
    /// in all four arguments; `exponent` shapes the room-size tail.
    pub fn generate(seed: u64, n: u32, rooms: u32, exponent: f64) -> RoomPlan {
        let mut rng = SimRng::new(seed ^ 0x524f_4f4d_504c_414e);
        let n_usize = n.max(2) as usize;
        let max_size = (n_usize / MAX_ROOM_DIVISOR).max(MIN_ROOM_SIZE);

        // Seed-derived popularity ranks: a permutation of the nodes, so the
        // heavy subscribers are spread over the id space instead of always
        // being the low ids.
        let mut ranked: Vec<u32> = (0..n.max(2)).collect();
        for index in 0..ranked.len() {
            let remaining = ranked.len() - index;
            let swap = index + rng.random_below(remaining as u64) as usize;
            ranked.swap(index, swap);
        }
        // Cumulative subscription weights in ranked order.
        let mut cumulative = Vec::with_capacity(n_usize);
        let mut total = 0.0f64;
        for rank in 0..n_usize {
            total += 1.0 / ((rank + 1) as f64).powf(SUBSCRIBER_EXPONENT);
            cumulative.push(total);
        }

        let mut members = Vec::with_capacity(rooms as usize);
        let mut subscriptions: Vec<Vec<u32>> = vec![Vec::new(); n_usize];
        for room in 0..rooms {
            let scale = 1.0 / ((room + 1) as f64).powf(exponent.max(0.0));
            let size = ((max_size as f64 * scale).round() as usize).clamp(MIN_ROOM_SIZE, n_usize);
            let mut picked: Vec<NodeId> = Vec::with_capacity(size);
            let mut attempts = 0usize;
            let attempt_cap = size * 30;
            while picked.len() < size && attempts < attempt_cap {
                attempts += 1;
                let point = rng.random_f64() * total;
                let rank = cumulative.partition_point(|c| *c < point).min(n_usize - 1);
                let node = NodeId(ranked[rank]);
                if !picked.contains(&node) {
                    picked.push(node);
                }
            }
            // Pathological weight skew can starve the sampler; fill the
            // remainder deterministically from the lowest unpicked ids.
            let mut next = 0u32;
            while picked.len() < size {
                let candidate = NodeId(next);
                if !picked.contains(&candidate) {
                    picked.push(candidate);
                }
                next += 1;
            }
            picked.sort_unstable_by_key(|node| node.0);
            for node in &picked {
                subscriptions[node.0 as usize].push(room);
            }
            members.push(picked);
        }
        RoomPlan {
            n: n.max(2),
            members,
            subscriptions,
        }
    }

    /// Number of nodes the plan covers.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of rooms.
    pub fn room_count(&self) -> usize {
        self.members.len()
    }

    /// Members of one room, sorted by node id. Empty for unknown rooms.
    pub fn members(&self, room: u32) -> &[NodeId] {
        self.members
            .get(room as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The rooms one node subscribes to, sorted by room id.
    pub fn rooms_of(&self, node: NodeId) -> &[u32] {
        self.subscriptions
            .get(node.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of rooms one node subscribes to.
    pub fn subscription_count(&self, node: NodeId) -> usize {
        self.rooms_of(node).len()
    }

    /// The designated publisher of a room: its lowest-id member.
    pub fn publisher(&self, room: u32) -> Option<NodeId> {
        self.members(room).first().copied()
    }

    /// Total memberships across every room.
    pub fn total_memberships(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// Per-node subscription counts, sorted ascending — the input to
    /// percentile comparisons.
    pub fn subscription_distribution(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = self.subscriptions.iter().map(Vec::len).collect();
        counts.sort_unstable();
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_replays_exactly() {
        let a = RoomPlan::generate(99, 200, 300, 1.0);
        let b = RoomPlan::generate(99, 200, 300, 1.0);
        assert_eq!(a, b, "same (seed, n, rooms, exponent) must replay exactly");
        let c = RoomPlan::generate(100, 200, 300, 1.0);
        assert_ne!(a, c, "a different seed must move the plan");
    }

    #[test]
    fn room_sizes_follow_the_zipf_tail() {
        let plan = RoomPlan::generate(7, 500, 1000, 1.0);
        assert_eq!(plan.room_count(), 1000);
        let head = plan.members(0).len();
        let tail = plan.members(999).len();
        assert!(head >= 50, "the head room should be large, got {head}");
        assert_eq!(tail, MIN_ROOM_SIZE, "the tail collapses to the minimum");
        // At least half of all rooms sit at the minimum size: the tail is
        // heavy, which is what makes per-room (not per-group) cost matter.
        let at_min = (0..1000)
            .filter(|room| plan.members(*room).len() == MIN_ROOM_SIZE)
            .count();
        assert!(at_min >= 500, "only {at_min} rooms at minimum size");
        // Sizes are nonincreasing in room rank (same clamp, shrinking scale).
        for room in 1..1000u32 {
            assert!(plan.members(room).len() <= plan.members(room - 1).len());
        }
    }

    #[test]
    fn membership_lists_are_sorted_unique_and_consistent() {
        let plan = RoomPlan::generate(13, 120, 200, 1.2);
        for room in 0..plan.room_count() as u32 {
            let members = plan.members(room);
            assert!(members.windows(2).all(|w| w[0].0 < w[1].0), "sorted+unique");
            for member in members {
                assert!(member.0 < plan.node_count());
                assert!(plan.rooms_of(*member).contains(&room), "inverse index");
            }
        }
        let forward: usize = plan.total_memberships();
        let inverse: usize = (0..plan.node_count())
            .map(|id| plan.subscription_count(NodeId(id)))
            .sum();
        assert_eq!(forward, inverse);
    }

    #[test]
    fn subscription_counts_are_heavy_tailed() {
        let plan = RoomPlan::generate(42, 500, 1000, 1.0);
        let counts = plan.subscription_distribution();
        let median = counts[counts.len() / 2];
        let p90 = counts[counts.len() * 9 / 10];
        assert!(median >= 1, "every percentile subscribed to something");
        assert!(
            p90 as f64 >= 2.5 * median as f64,
            "subscription skew too flat: p90 {p90} vs median {median}"
        );
        assert!(
            counts[counts.len() - 1] < plan.room_count(),
            "nobody is in every room"
        );
    }
}
