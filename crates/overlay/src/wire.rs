//! Wire bodies of the overlay planes.
//!
//! One tagged union covers both layers — partial-view membership
//! maintenance and per-room tree dissemination — so the simulation can
//! carry every overlay packet as opaque bytes and every receive path goes
//! through one hardened decoder. Decoding never panics: every length
//! prefix is checked against both a protocol cap and the remaining bytes
//! before any allocation, and unknown tags are rejected.

use bytes::Bytes;
use morpheus_appia::platform::{NodeId, PacketClass};
use morpheus_appia::wire::{Wire, WireError, WireReader, WireWriter};

/// Cap on node-list lengths (shuffle exchanges). Views are small by
/// design; anything larger is malformed or adversarial.
pub const MAX_NODE_LIST: usize = 64;

/// Cap on message-id and span lists (`IHave`, repair digests and pulls).
pub const MAX_ID_LIST: usize = 256;

/// Identifier of one room message: the stream key plus the sequence
/// number — the same `(origin, inc, seq)` coordinates the epidemic plane's
/// repair log uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgId {
    /// Originating node.
    pub origin: NodeId,
    /// Origin's stream incarnation.
    pub inc: u64,
    /// Sequence number within the stream.
    pub seq: u64,
}

impl Wire for MsgId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.origin.0);
        w.put_u64(self.inc);
        w.put_u64(self.seq);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MsgId {
            origin: NodeId(r.get_u32()?),
            inc: r.get_u64()?,
            seq: r.get_u64()?,
        })
    }
}

/// One servable span of a room repair digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoomSpan {
    /// Originating node of the stream.
    pub origin: NodeId,
    /// Stream incarnation.
    pub inc: u64,
    /// Lowest servable sequence number.
    pub lo: u64,
    /// Highest servable sequence number.
    pub hi: u64,
}

impl Wire for RoomSpan {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.origin.0);
        w.put_u64(self.inc);
        w.put_u64(self.lo);
        w.put_u64(self.hi);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RoomSpan {
            origin: NodeId(r.get_u32()?),
            inc: r.get_u64()?,
            lo: r.get_u64()?,
            hi: r.get_u64()?,
        })
    }
}

/// Every overlay packet body, across both planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayMsg {
    /// A new node asks a contact to admit it (HyParView join).
    Join {
        /// The joining node.
        joiner: NodeId,
    },
    /// A join propagated through the overlay as a bounded random walk.
    ForwardJoin {
        /// The joining node.
        joiner: NodeId,
        /// Remaining walk length.
        ttl: u8,
    },
    /// Request to become an active-view neighbour.
    Neighbor {
        /// High priority: the requester's active view is empty, the
        /// receiver must accept even if it has to evict.
        high_priority: bool,
    },
    /// Answer to a [`OverlayMsg::Neighbor`] request.
    NeighborReply {
        /// Whether the receiver admitted the requester.
        accepted: bool,
    },
    /// Symmetric removal from the sender's active view.
    Disconnect,
    /// Periodic shuffle: a bounded random walk carrying a sample of the
    /// origin's views, refreshing passive views along the way.
    Shuffle {
        /// Node whose sample this is (the walk's initiator).
        origin: NodeId,
        /// Remaining walk length.
        ttl: u8,
        /// The origin's sample (itself + active + passive picks).
        nodes: Vec<NodeId>,
    },
    /// Answer to a shuffle: the receiver's own passive sample.
    ShuffleReply {
        /// The replier's passive-view sample.
        nodes: Vec<NodeId>,
    },
    /// The sender subscribes to a room (enters its per-room overlay).
    Subscribe {
        /// Room identifier.
        room: u32,
    },
    /// The sender leaves a room's overlay.
    Unsubscribe {
        /// Room identifier.
        room: u32,
    },
    /// Eager payload push along a room's broadcast tree.
    RoomPush {
        /// Room identifier.
        room: u32,
        /// Message identifier.
        id: MsgId,
        /// Hop count from the origin (grows by one per eager hop).
        round: u8,
        /// Application payload.
        payload: Bytes,
    },
    /// Lazy announcement along non-tree links: "I have these messages".
    RoomIHave {
        /// Room identifier.
        room: u32,
        /// Announced message identifiers.
        ids: Vec<MsgId>,
    },
    /// Pulls a missing announced message and promotes the link to eager —
    /// the tree-repair half of the lazy path.
    RoomGraft {
        /// Room identifier.
        room: u32,
        /// The missing message.
        id: MsgId,
    },
    /// Demotes the link to lazy after a duplicate eager delivery.
    RoomPrune {
        /// Room identifier.
        room: u32,
    },
    /// Periodic room repair digest: the spans the sender's per-room repair
    /// log can serve.
    RoomRepairDigest {
        /// Room identifier.
        room: u32,
        /// Servable spans, in deterministic stream order.
        spans: Vec<RoomSpan>,
    },
    /// NACK pull of room messages the sender misses.
    RoomRepairPull {
        /// Room identifier.
        room: u32,
        /// The missing message identifiers.
        wants: Vec<MsgId>,
    },
    /// Answer to a pull: one logged original, re-streamed.
    RoomRepairPush {
        /// Room identifier.
        room: u32,
        /// Message identifier.
        id: MsgId,
        /// The original payload.
        payload: Bytes,
    },
}

impl OverlayMsg {
    /// Accounting class of this body: payload pushes are data, loss repair
    /// is repair, subscriptions are control, everything that maintains
    /// views or tree links is overlay maintenance.
    pub fn class(&self) -> PacketClass {
        match self {
            OverlayMsg::RoomPush { .. } => PacketClass::Data,
            OverlayMsg::Subscribe { .. } | OverlayMsg::Unsubscribe { .. } => PacketClass::Control,
            OverlayMsg::RoomRepairDigest { .. }
            | OverlayMsg::RoomRepairPull { .. }
            | OverlayMsg::RoomRepairPush { .. } => PacketClass::Repair,
            _ => PacketClass::Overlay,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            OverlayMsg::Join { .. } => 1,
            OverlayMsg::ForwardJoin { .. } => 2,
            OverlayMsg::Neighbor { .. } => 3,
            OverlayMsg::NeighborReply { .. } => 4,
            OverlayMsg::Disconnect => 5,
            OverlayMsg::Shuffle { .. } => 6,
            OverlayMsg::ShuffleReply { .. } => 7,
            OverlayMsg::Subscribe { .. } => 8,
            OverlayMsg::Unsubscribe { .. } => 9,
            OverlayMsg::RoomPush { .. } => 10,
            OverlayMsg::RoomIHave { .. } => 11,
            OverlayMsg::RoomGraft { .. } => 12,
            OverlayMsg::RoomPrune { .. } => 13,
            OverlayMsg::RoomRepairDigest { .. } => 14,
            OverlayMsg::RoomRepairPull { .. } => 15,
            OverlayMsg::RoomRepairPush { .. } => 16,
        }
    }
}

fn put_node_list(w: &mut WireWriter, nodes: &[NodeId]) {
    let count = nodes.len().min(MAX_NODE_LIST);
    w.put_u16(count as u16);
    for node in nodes.iter().take(count) {
        w.put_u32(node.0);
    }
}

fn get_node_list(r: &mut WireReader<'_>) -> Result<Vec<NodeId>, WireError> {
    let len = usize::from(r.get_u16()?);
    if len > MAX_NODE_LIST {
        return Err(WireError::LengthOutOfRange(len as u64));
    }
    if len > r.remaining() / 4 {
        return Err(WireError::Malformed("node list count exceeds payload"));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(NodeId(r.get_u32()?));
    }
    Ok(out)
}

fn put_list<T: Wire>(w: &mut WireWriter, items: &[T], cap: usize) {
    let count = items.len().min(cap);
    w.put_u16(count as u16);
    for item in items.iter().take(count) {
        item.encode(w);
    }
}

fn get_list<T: Wire>(
    r: &mut WireReader<'_>,
    cap: usize,
    min_encoded: usize,
) -> Result<Vec<T>, WireError> {
    let len = usize::from(r.get_u16()?);
    if len > cap {
        return Err(WireError::LengthOutOfRange(len as u64));
    }
    if len > r.remaining() / min_encoded {
        return Err(WireError::Malformed("list count exceeds payload"));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl Wire for OverlayMsg {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.tag());
        match self {
            OverlayMsg::Join { joiner } => w.put_u32(joiner.0),
            OverlayMsg::ForwardJoin { joiner, ttl } => {
                w.put_u32(joiner.0);
                w.put_u8(*ttl);
            }
            OverlayMsg::Neighbor { high_priority } => w.put_bool(*high_priority),
            OverlayMsg::NeighborReply { accepted } => w.put_bool(*accepted),
            OverlayMsg::Disconnect => {}
            OverlayMsg::Shuffle { origin, ttl, nodes } => {
                w.put_u32(origin.0);
                w.put_u8(*ttl);
                put_node_list(w, nodes);
            }
            OverlayMsg::ShuffleReply { nodes } => put_node_list(w, nodes),
            OverlayMsg::Subscribe { room } | OverlayMsg::Unsubscribe { room } => w.put_u32(*room),
            OverlayMsg::RoomPush {
                room,
                id,
                round,
                payload,
            } => {
                w.put_u32(*room);
                id.encode(w);
                w.put_u8(*round);
                w.put_bytes(payload);
            }
            OverlayMsg::RoomIHave { room, ids } => {
                w.put_u32(*room);
                put_list(w, ids, MAX_ID_LIST);
            }
            OverlayMsg::RoomGraft { room, id } => {
                w.put_u32(*room);
                id.encode(w);
            }
            OverlayMsg::RoomPrune { room } => w.put_u32(*room),
            OverlayMsg::RoomRepairDigest { room, spans } => {
                w.put_u32(*room);
                put_list(w, spans, MAX_ID_LIST);
            }
            OverlayMsg::RoomRepairPull { room, wants } => {
                w.put_u32(*room);
                put_list(w, wants, MAX_ID_LIST);
            }
            OverlayMsg::RoomRepairPush { room, id, payload } => {
                w.put_u32(*room);
                id.encode(w);
                w.put_bytes(payload);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let tag = r.get_u8()?;
        Ok(match tag {
            1 => OverlayMsg::Join {
                joiner: NodeId(r.get_u32()?),
            },
            2 => OverlayMsg::ForwardJoin {
                joiner: NodeId(r.get_u32()?),
                ttl: r.get_u8()?,
            },
            3 => OverlayMsg::Neighbor {
                high_priority: r.get_bool()?,
            },
            4 => OverlayMsg::NeighborReply {
                accepted: r.get_bool()?,
            },
            5 => OverlayMsg::Disconnect,
            6 => OverlayMsg::Shuffle {
                origin: NodeId(r.get_u32()?),
                ttl: r.get_u8()?,
                nodes: get_node_list(r)?,
            },
            7 => OverlayMsg::ShuffleReply {
                nodes: get_node_list(r)?,
            },
            8 => OverlayMsg::Subscribe { room: r.get_u32()? },
            9 => OverlayMsg::Unsubscribe { room: r.get_u32()? },
            10 => OverlayMsg::RoomPush {
                room: r.get_u32()?,
                id: MsgId::decode(r)?,
                round: r.get_u8()?,
                payload: r.get_bytes()?,
            },
            11 => OverlayMsg::RoomIHave {
                room: r.get_u32()?,
                ids: get_list(r, MAX_ID_LIST, 20)?,
            },
            12 => OverlayMsg::RoomGraft {
                room: r.get_u32()?,
                id: MsgId::decode(r)?,
            },
            13 => OverlayMsg::RoomPrune { room: r.get_u32()? },
            14 => OverlayMsg::RoomRepairDigest {
                room: r.get_u32()?,
                spans: get_list(r, MAX_ID_LIST, 28)?,
            },
            15 => OverlayMsg::RoomRepairPull {
                room: r.get_u32()?,
                wants: get_list(r, MAX_ID_LIST, 20)?,
            },
            16 => OverlayMsg::RoomRepairPush {
                room: r.get_u32()?,
                id: MsgId::decode(r)?,
                payload: r.get_bytes()?,
            },
            other => return Err(WireError::InvalidTag(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<OverlayMsg> {
        let id = MsgId {
            origin: NodeId(7),
            inc: 11,
            seq: 42,
        };
        vec![
            OverlayMsg::Join { joiner: NodeId(3) },
            OverlayMsg::ForwardJoin {
                joiner: NodeId(3),
                ttl: 6,
            },
            OverlayMsg::Neighbor {
                high_priority: true,
            },
            OverlayMsg::NeighborReply { accepted: false },
            OverlayMsg::Disconnect,
            OverlayMsg::Shuffle {
                origin: NodeId(9),
                ttl: 4,
                nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
            OverlayMsg::ShuffleReply {
                nodes: vec![NodeId(5)],
            },
            OverlayMsg::Subscribe { room: 77 },
            OverlayMsg::Unsubscribe { room: 77 },
            OverlayMsg::RoomPush {
                room: 77,
                id,
                round: 2,
                payload: Bytes::from_static(b"hello room"),
            },
            OverlayMsg::RoomIHave {
                room: 77,
                ids: vec![id],
            },
            OverlayMsg::RoomGraft { room: 77, id },
            OverlayMsg::RoomPrune { room: 77 },
            OverlayMsg::RoomRepairDigest {
                room: 77,
                spans: vec![RoomSpan {
                    origin: NodeId(7),
                    inc: 11,
                    lo: 1,
                    hi: 42,
                }],
            },
            OverlayMsg::RoomRepairPull {
                room: 77,
                wants: vec![id],
            },
            OverlayMsg::RoomRepairPush {
                room: 77,
                id,
                payload: Bytes::from_static(b"replay"),
            },
        ]
    }

    #[test]
    fn every_body_roundtrips() {
        for msg in samples() {
            let bytes = msg.to_bytes();
            let back = OverlayMsg::from_bytes(&bytes).expect("roundtrip");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn classes_partition_the_planes() {
        use PacketClass::*;
        let classes: Vec<PacketClass> = samples().iter().map(OverlayMsg::class).collect();
        assert_eq!(
            classes,
            vec![
                Overlay, Overlay, Overlay, Overlay, Overlay, Overlay, Overlay, Control, Control,
                Data, Overlay, Overlay, Overlay, Repair, Repair, Repair,
            ]
        );
    }

    /// Every truncation of every valid encoding must fail cleanly (or, for
    /// self-delimiting prefixes, decode to *something*) — never panic.
    #[test]
    fn truncation_sweep_never_panics() {
        for msg in samples() {
            let bytes = msg.to_bytes();
            for cut in 0..bytes.len() {
                let _ = OverlayMsg::from_bytes(&bytes[..cut]);
            }
        }
    }

    /// Deterministic single-bit flips across every encoding: decode must
    /// return (ok or error), never panic, and never over-allocate.
    #[test]
    fn bit_flip_sweep_never_panics() {
        for msg in samples() {
            let bytes = msg.to_bytes();
            for index in 0..bytes.len() {
                for bit in 0..8 {
                    let mut flipped = bytes.to_vec();
                    flipped[index] ^= 1 << bit;
                    let _ = OverlayMsg::from_bytes(&flipped);
                }
            }
        }
    }

    #[test]
    fn adversarial_lengths_are_rejected() {
        // A shuffle whose node-list length claims more than the cap.
        let mut w = WireWriter::new();
        w.put_u8(6);
        w.put_u32(9);
        w.put_u8(4);
        w.put_u16(u16::MAX);
        let bytes = w.finish();
        assert!(matches!(
            OverlayMsg::from_bytes(&bytes),
            Err(WireError::LengthOutOfRange(_))
        ));

        // An IHave whose id count exceeds what the payload could hold.
        let mut w = WireWriter::new();
        w.put_u8(11);
        w.put_u32(1);
        w.put_u16(200);
        let bytes = w.finish();
        assert!(OverlayMsg::from_bytes(&bytes).is_err());
    }

    #[test]
    fn oversized_lists_are_clamped_on_encode() {
        let nodes: Vec<NodeId> = (0..(MAX_NODE_LIST as u32 + 9)).map(NodeId).collect();
        let msg = OverlayMsg::ShuffleReply { nodes };
        let decoded = OverlayMsg::from_bytes(&msg.to_bytes()).expect("decodes");
        match decoded {
            OverlayMsg::ShuffleReply { nodes } => assert_eq!(nodes.len(), MAX_NODE_LIST),
            other => panic!("wrong variant {other:?}"),
        }
    }
}
