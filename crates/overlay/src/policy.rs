//! Per-room stack selection: the paper's context-driven adaptation applied
//! at room-shard grain.
//!
//! The whole-group planes adapt once for everybody; a room-sharded overlay
//! can do better, because each room has its own size, traffic and member
//! context. The decision logic itself lives with the rest of the control
//! subsystem ([`morpheus_core::RoomRules`]) and evaluates the
//! [`RoomContext`] slice Cocaditem extracts per room; this module renders
//! the chosen [`RoomStackKind`] into the overlay's concrete [`RoomConfig`].

use morpheus_cocaditem::RoomContext;
use morpheus_core::RoomRules;
pub use morpheus_core::RoomStackKind;

use crate::plumtree::RoomConfig;

/// Picks the stack one room shard should run, under the default room rules:
/// small or quiet rooms flood directly, large busy rooms run the spanning
/// tree with a push depth derived from the room size.
pub fn choose_room_stack(context: &RoomContext) -> RoomStackKind {
    RoomRules::default().evaluate(context)
}

/// Renders a room stack kind into the overlay configuration, on top of a
/// base config carrying the group-inherited knobs (repair cadence, log
/// bounds — see `StackCatalog::room_params`).
pub fn render_room_config(kind: &RoomStackKind, base: RoomConfig) -> RoomConfig {
    match kind {
        RoomStackKind::DirectPush => RoomConfig {
            allow_prune: false,
            ..base
        },
        RoomStackKind::TreePush { push_ttl } => RoomConfig {
            allow_prune: true,
            push_ttl: (*push_ttl).min(u8::MAX as u32) as u8,
            ..base
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rooms_flood_and_large_busy_rooms_run_the_tree() {
        let tiny = choose_room_stack(&RoomContext::synthetic(0, 3, 50.0));
        assert_eq!(tiny, RoomStackKind::DirectPush);
        let quiet = choose_room_stack(&RoomContext::synthetic(1, 100, 0.2));
        assert_eq!(quiet, RoomStackKind::DirectPush);
        let busy = choose_room_stack(&RoomContext::synthetic(2, 100, 60.0));
        assert!(matches!(busy, RoomStackKind::TreePush { .. }));
    }

    #[test]
    fn rendering_preserves_the_group_inherited_knobs() {
        let base = RoomConfig {
            repair_interval_ms: 333,
            repair_log_cap: 77,
            ..RoomConfig::default()
        };
        let direct = render_room_config(&RoomStackKind::DirectPush, base);
        assert!(!direct.allow_prune);
        assert_eq!(direct.repair_interval_ms, 333);
        assert_eq!(direct.repair_log_cap, 77);
        let tree = render_room_config(&RoomStackKind::TreePush { push_ttl: 6 }, base);
        assert!(tree.allow_prune);
        assert_eq!(tree.push_ttl, 6);
        assert_eq!(tree.repair_log_cap, 77);
    }
}
