//! The scenario runner: a deterministic, discrete-event execution of a full
//! distributed Morpheus deployment.

use std::rc::Rc;

use bytes::Bytes;

use morpheus_appia::platform::{
    AppDelivery, DeliveryKind, InPacket, NodeId, NodeProfile, PacketClass, PacketDest,
};
use morpheus_appia::timer::TimerKey;
use morpheus_core::{MorpheusNode, NodeOptions};
use morpheus_groupcomm::recovery::StateSection;
use morpheus_netsim::{
    EventQueue, Network, NodeId as SimNodeId, Packet, PacketTarget, SimRng, SimTime, Topology,
    TrafficClass, Wireless80211b,
};

use crate::platform::SimPlatform;
use crate::report::{
    GossipReport, NodeReport, RejoinReport, RoundReport, RunReport, WedgeReport, WireBytes,
};
use crate::scenario::{Scenario, TopologyChoice};

/// Per-node application bindings for a run.
///
/// The runner itself knows nothing about the application on top; a binding
/// supplies the application payloads, taps every delivery, and provides the
/// app-level state sections the recovery layer streams to a rejoining node
/// (e.g. the chat crate's room history). Every method has a no-op default,
/// and [`Runner::run`] uses a default binding.
pub trait AppBinding {
    /// Fresh state sections for a node that is (re)starting. Called once per
    /// node at boot and again on every restart — restarting resets the
    /// node's application state, exactly like its protocol state.
    fn state_sections(&mut self, node: NodeId) -> Vec<Rc<dyn StateSection>> {
        let _ = node;
        Vec::new()
    }

    /// Composes one application payload for a workload send; `None` falls
    /// back to the runner's built-in opaque payload.
    fn compose(&mut self, node: NodeId, seq: u64, size: usize) -> Option<Bytes> {
        let _ = (node, seq, size);
        None
    }

    /// Observes one application delivery.
    fn on_delivery(&mut self, node: NodeId, delivery: &AppDelivery) {
        let _ = (node, delivery);
    }
}

/// The no-op binding used by [`Runner::run`].
struct NoBinding;

impl AppBinding for NoBinding {}

/// Opaque payload carried by simulated packets. The channel name is
/// interned, so fanning a packet out to many receivers clones a refcount
/// instead of a string.
#[derive(Debug, Clone)]
struct NetPayload {
    channel: morpheus_appia::Name,
    bytes: Bytes,
}

/// Events driving the simulation.
#[derive(Debug)]
enum SimEvent {
    /// A packet arrives at a node.
    Packet {
        to: NodeId,
        from: NodeId,
        class: PacketClass,
        payload: NetPayload,
    },
    /// A protocol timer fires at a node. Timers are stamped with the node's
    /// incarnation so timers armed before a restart cannot fire into the
    /// fresh kernel (whose timer ids restart from scratch and could
    /// collide).
    Timer {
        node: NodeId,
        key: TimerKey,
        incarnation: u32,
    },
    /// The application on a node emits one chat message.
    AppSend { node: NodeId, seq: u64 },
    /// The node crashes (fails silently) at this instant.
    NodeFailure { node: NodeId },
    /// The node restarts with empty state and rejoins the group.
    NodeRestart { node: NodeId },
}

/// Per-node bookkeeping collected during a run.
#[derive(Debug, Default, Clone)]
struct NodeTally {
    app_deliveries: u64,
    view_changes: u64,
    notifications: Vec<String>,
    rounds: Vec<RoundReport>,
    reconfig_errors: u64,
    packet_errors: u64,
    control_dropped: u64,
    data_dropped: u64,
    partition_dropped: u64,
    corrupted: u64,
    last_view_id: Option<u64>,
    context_converged_ms: Option<u64>,
    min_view_members: Option<usize>,
    restarts: u64,
    rejoin: Option<RejoinReport>,
    catchups: u64,
    shed_packets: u64,
}

/// Fixed per-packet framing overhead added to every transmission (UDP + IP
/// headers), so energy and byte counts are not unrealistically small.
const FRAMING_OVERHEAD_BYTES: usize = 28;

/// How often (in simulated milliseconds) the wedge detector samples the
/// run's progress.
const WEDGE_SAMPLE_MS: u64 = 500;

/// Completed reconfiguration rounds beyond which the wedge detector calls
/// round-epoch churn: a healthy run completes a handful of rounds, a
/// flip-flopping control loop completes them endlessly.
const WEDGE_ROUND_CAP: u64 = 256;

/// Margin (in simulated milliseconds) a churn victim is left alone after
/// its restart before it may be crashed again, so every crash hits a member
/// that had a chance to rejoin.
const CHURN_REJOIN_MARGIN_MS: u64 = 10_000;

/// Executes [`Scenario`]s.
#[derive(Debug, Default, Clone)]
pub struct Runner {
    /// Hard cap on processed simulation events (safety net against runaway
    /// feedback loops). `0` means no cap.
    pub max_events: u64,
}

impl Runner {
    /// Creates a runner with default settings.
    pub fn new() -> Self {
        Self { max_events: 0 }
    }

    /// Runs a scenario to completion and reports the results.
    pub fn run(&self, scenario: &Scenario) -> RunReport {
        self.run_with_binding(scenario, &mut NoBinding)
    }

    /// Runs a scenario with an application binding supplying payloads,
    /// delivery taps and rejoin state sections.
    pub fn run_with_binding(&self, scenario: &Scenario, binding: &mut dyn AppBinding) -> RunReport {
        let members = scenario.members();
        let topology = build_topology(scenario);
        let mut network = Network::new(topology);
        network.set_faults(scenario.fault_schedule.clone());
        let mut rng = SimRng::new(scenario.seed);
        let mut queue: EventQueue<SimEvent> = EventQueue::new();

        // Instantiate one Morpheus node per participant.
        let mut nodes: Vec<MorpheusNode> = Vec::with_capacity(members.len());
        let mut platforms: Vec<SimPlatform> = Vec::with_capacity(members.len());
        let mut tallies: Vec<NodeTally> = vec![NodeTally::default(); members.len()];
        let mut incarnations: Vec<u32> = vec![0; members.len()];
        // The channels [`Scenario::control_loss`] / [`Scenario::data_loss`]
        // degrade — read from the same options every node is built with,
        // not hardcoded.
        let boot_options = node_options(scenario, &members, false);
        let control_channel = boot_options.control_channel;
        let data_channel = boot_options.data_channel;
        // One cap serves two roles: data-plane transmissions are *shed* at
        // the enqueue boundary once the event queue reaches it (graceful
        // overload degradation — gossip repair recovers what was shed),
        // while control/context/timer events are never shed, so a queue that
        // still grows past the cap is a control-plane runaway and trips the
        // wedge detector below.
        let queue_cap = if scenario.wedge_queue_cap > 0 {
            scenario.wedge_queue_cap
        } else {
            100_000 + 2_000 * members.len() as u64
        };

        for member in &members {
            let (node, platform) = build_node(scenario, &members, *member, 0, 0, &network, binding);
            nodes.push(node);
            platforms.push(platform);
        }

        // Side effects produced while the nodes were constructed (initial
        // context publications, timers) must be flushed before time starts.
        for index in 0..members.len() {
            flush_node(
                index,
                SimTime::ZERO,
                scenario,
                &control_channel,
                &data_channel,
                &mut nodes,
                &mut platforms,
                &mut tallies,
                &mut network,
                &mut queue,
                queue_cap,
                &mut rng,
                &incarnations,
                binding,
            );
        }

        // Schedule the application workload.
        for sender in &scenario.workload.senders {
            for seq in 0..scenario.workload.messages_per_sender {
                let at = scenario.workload.warmup_ms + seq * scenario.workload.interval_ms;
                queue.push(
                    SimTime::from_millis(at),
                    SimEvent::AppSend { node: *sender, seq },
                );
            }
        }

        // Schedule injected node failures and restarts.
        for (at_ms, node) in &scenario.failures {
            queue.push(
                SimTime::from_millis(*at_ms),
                SimEvent::NodeFailure { node: *node },
            );
        }
        for (at_ms, node) in &scenario.restarts {
            queue.push(
                SimTime::from_millis(*at_ms),
                SimEvent::NodeRestart { node: *node },
            );
        }

        // Expand the fault schedule's overload régimes into extra
        // application sends: during each window every workload sender emits
        // one additional message per interval on top of the configured
        // rate. Extra sends reuse the AppSend path with sequence numbers
        // beyond the configured workload, so payloads stay unique.
        {
            let mut extra_seq = scenario.workload.messages_per_sender;
            for (start_ms, end_ms, interval_ms) in scenario.fault_schedule.overload_events() {
                let mut at = start_ms;
                while at < end_ms {
                    for sender in &scenario.workload.senders {
                        queue.push(
                            SimTime::from_millis(at),
                            SimEvent::AppSend {
                                node: *sender,
                                seq: extra_seq,
                            },
                        );
                    }
                    extra_seq += 1;
                    at += interval_ms.max(1);
                }
            }
        }

        // Expand the fault schedule's churn régimes into crash/restart
        // pairs. A dedicated rng stream keeps fault-free runs byte-for-byte
        // identical to what they were without the fault layer, while churn
        // victims still replay exactly from `(seed, schedule)`. Senders and
        // node 0 (the deterministic first rejoin donor) are spared, and a
        // victim is left alone long enough to rejoin before it is eligible
        // again.
        {
            let mut churn_rng = SimRng::new(scenario.seed ^ 0xC4A5_F417_5EED_0001);
            let mut busy_until: Vec<u64> = vec![0; members.len()];
            for (start_ms, end_ms, interval_ms, down_ms) in scenario.fault_schedule.churn_events() {
                let mut at = start_ms;
                while at < end_ms {
                    let eligible: Vec<usize> = (1..members.len())
                        .filter(|index| {
                            let node = members[*index];
                            !scenario.workload.senders.contains(&node) && busy_until[*index] <= at
                        })
                        .collect();
                    if let Some(&index) = churn_rng.pick(&eligible) {
                        let node = members[index];
                        queue.push(SimTime::from_millis(at), SimEvent::NodeFailure { node });
                        queue.push(
                            SimTime::from_millis(at + down_ms),
                            SimEvent::NodeRestart { node },
                        );
                        busy_until[index] = at + down_ms + CHURN_REJOIN_MARGIN_MS;
                    }
                    at += interval_ms.max(1);
                }
            }
        }

        // Main discrete-event loop.
        let end = SimTime::from_millis(scenario.end_time_ms());
        let mut processed: u64 = 0;
        let mut last_time = SimTime::ZERO;
        // Wedge-detector state: progress is sampled on a sim-time grid; a
        // wedge is declared when the signature stalls for a whole window
        // while live, reachable members disagree on the installed view —
        // or when the event queue or the round count grows without bound.
        let wedge_enabled = scenario.wedge_window_ms > 0;
        let mut wedge: Option<WedgeReport> = None;
        let mut max_queue_depth: u64 = 0;
        let mut next_wedge_sample_ms: u64 = 0;
        let mut last_progress_sig: u64 = 0;
        let mut stalled_since: Option<u64> = None;
        let corruption_possible = scenario.fault_schedule.has_corruption();
        // Reused across packet events so the hot loop does not allocate a
        // fresh batch vector per arrival.
        let mut batch: Vec<InPacket> = Vec::new();
        while let Some((time, event)) = queue.pop() {
            if time > end {
                break;
            }
            if self.max_events != 0 && processed >= self.max_events {
                break;
            }
            processed += 1;
            last_time = time;
            max_queue_depth = max_queue_depth.max(queue.len() as u64);

            if wedge_enabled && time.as_millis() >= next_wedge_sample_ms {
                next_wedge_sample_ms = time.as_millis() + WEDGE_SAMPLE_MS;
                // Data packets are shed at the cap, so only unsheddable
                // (control-plane) growth can push the queue past it — with
                // head-room for the control events already in flight.
                if queue.len() as u64 > queue_cap * 2 {
                    wedge = Some(WedgeReport {
                        at_ms: time.as_millis(),
                        reason: format!(
                            "event queue grew past {} entries despite data shedding",
                            queue_cap * 2
                        ),
                    });
                    break;
                }
                let rounds: u64 = tallies.iter().map(|tally| tally.rounds.len() as u64).sum();
                if rounds > WEDGE_ROUND_CAP {
                    wedge = Some(WedgeReport {
                        at_ms: time.as_millis(),
                        reason: format!(
                            "more than {WEDGE_ROUND_CAP} reconfiguration rounds completed \
                             (round-epoch churn)"
                        ),
                    });
                    break;
                }
                let sig = progress_signature(&tallies);
                if sig != last_progress_sig {
                    last_progress_sig = sig;
                    stalled_since = None;
                } else if live_views_disagree(scenario, &network, &tallies, time.as_millis()) {
                    let since = *stalled_since.get_or_insert(time.as_millis());
                    if time.as_millis().saturating_sub(since) >= scenario.wedge_window_ms {
                        wedge = Some(WedgeReport {
                            at_ms: time.as_millis(),
                            reason: format!(
                                "no progress for {}ms while live members disagree on the \
                                 installed view",
                                scenario.wedge_window_ms
                            ),
                        });
                        break;
                    }
                } else {
                    stalled_since = None;
                }
            }

            let node_id = match &event {
                SimEvent::Packet { to, .. } => *to,
                SimEvent::Timer { node, .. } => *node,
                SimEvent::AppSend { node, .. } => *node,
                SimEvent::NodeFailure { node } => *node,
                SimEvent::NodeRestart { node } => *node,
            };
            let index = node_id.0 as usize;
            if index >= nodes.len() {
                continue;
            }
            if let SimEvent::NodeFailure { node } = &event {
                if let Some(sim_node) = network.topology_mut().node_mut(SimNodeId(node.0)) {
                    sim_node.alive = false;
                }
                continue;
            }
            if let SimEvent::NodeRestart { node } = &event {
                let node = *node;
                if let Some(sim_node) = network.topology_mut().node_mut(SimNodeId(node.0)) {
                    sim_node.alive = true;
                }
                incarnations[index] += 1;
                // A fresh incarnation: empty protocol and application state,
                // a joining stack, a new deterministic rng stream. Timers of
                // the previous incarnation are fenced off by the incarnation
                // stamp.
                let (fresh, platform) = build_node(
                    scenario,
                    &members,
                    node,
                    incarnations[index],
                    time.as_millis(),
                    &network,
                    binding,
                );
                nodes[index] = fresh;
                platforms[index] = platform;
                tallies[index].restarts += 1;
                tallies[index].rejoin = None;
                // A fresh incarnation has not installed any view yet, so it
                // must not count as "disagreeing" in the wedge detector
                // until it actually installs one.
                tallies[index].last_view_id = None;
                // Post-restart context convergence is what the recovery
                // metrics care about; the pre-crash value is obsolete.
                tallies[index].context_converged_ms = None;
                tallies[index]
                    .notifications
                    .push(format!("restarted (incarnation {})", incarnations[index]));
                flush_node(
                    index,
                    time,
                    scenario,
                    &control_channel,
                    &data_channel,
                    &mut nodes,
                    &mut platforms,
                    &mut tallies,
                    &mut network,
                    &mut queue,
                    queue_cap,
                    &mut rng,
                    &incarnations,
                    binding,
                );
                continue;
            }
            // Crashed nodes stop processing anything.
            if !network.is_operational(SimNodeId(node_id.0)) {
                continue;
            }

            platforms[index].set_now(time.as_millis());
            platforms[index].set_profile(profile_for(&network, scenario, node_id));

            match event {
                SimEvent::Packet {
                    to,
                    from,
                    class,
                    payload,
                } => {
                    // Drain every packet arriving at this node at this very
                    // instant into one batch, delivered with a single kernel
                    // queue drain (the FIFO tie-break of the event queue is
                    // preserved because the batch keeps arrival order).
                    batch.clear();
                    batch.push(InPacket {
                        from,
                        to,
                        class,
                        channel: payload.channel,
                        payload: payload.bytes,
                    });
                    while let Some((_, more)) = queue.pop_if(|at, next| {
                        at == time
                            && matches!(next, SimEvent::Packet { to: next_to, .. } if *next_to == to)
                    }) {
                        let SimEvent::Packet { to, from, class, payload } = more else {
                            unreachable!("pop_if only matches packet events");
                        };
                        processed += 1;
                        batch.push(InPacket {
                            from,
                            to,
                            class,
                            channel: payload.channel,
                            payload: payload.bytes,
                        });
                    }
                    if corruption_possible {
                        // Byte-level corruption at the receive boundary: each
                        // arriving packet independently gets one random bit
                        // flipped, exercising every decode path with
                        // adversarial input. Drawn from the run's rng, so the
                        // damage replays from `(seed, schedule)`.
                        let rate = scenario.fault_schedule.corruption_rate(time.as_millis());
                        if rate > 0.0 {
                            for packet in batch.iter_mut() {
                                if !packet.payload.is_empty() && rng.chance(rate) {
                                    let mut bytes = packet.payload.to_vec();
                                    let at = rng.random_below(bytes.len() as u64) as usize;
                                    bytes[at] ^= 1 << rng.random_below(8);
                                    packet.payload = Bytes::from(bytes);
                                    tallies[index].corrupted += 1;
                                }
                            }
                        }
                    }
                    if scenario.is_partitioned(to, time.as_millis()) {
                        // The node is cut off: everything addressed to it in
                        // this instant is dropped at its network interface.
                        tallies[index].partition_dropped += batch.len() as u64;
                        batch.clear();
                    } else {
                        tallies[index].packet_errors += nodes[index]
                            .deliver_packet_batch(batch.drain(..), &mut platforms[index])
                            as u64;
                    }
                }
                SimEvent::Timer {
                    key, incarnation, ..
                } => {
                    if incarnation == incarnations[index]
                        && !platforms[index].consume_cancellation(&key)
                    {
                        nodes[index].timer_fired(key, &mut platforms[index]);
                    }
                }
                SimEvent::AppSend { seq, .. } => {
                    let payload = binding
                        .compose(node_id, seq, scenario.workload.payload_size)
                        .unwrap_or_else(|| {
                            chat_payload(node_id, seq, scenario.workload.payload_size)
                        });
                    nodes[index].send_to_group(payload, &mut platforms[index]);
                }
                SimEvent::NodeFailure { .. } | SimEvent::NodeRestart { .. } => {
                    unreachable!("handled above")
                }
            }

            flush_node(
                index,
                time,
                scenario,
                &control_channel,
                &data_channel,
                &mut nodes,
                &mut platforms,
                &mut tallies,
                &mut network,
                &mut queue,
                queue_cap,
                &mut rng,
                &incarnations,
                binding,
            );
        }

        build_report(
            scenario,
            last_time,
            processed,
            &network,
            &nodes,
            &tallies,
            wedge,
            max_queue_depth,
        )
    }
}

/// A scalar fingerprint of everything that counts as forward progress:
/// deliveries, view installs, completed rounds, restarts, rejoins and
/// context convergence. Any change between wedge samples means the run is
/// still moving.
fn progress_signature(tallies: &[NodeTally]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut sig: u64 = 0xcbf2_9ce4_8422_2325;
    for tally in tallies {
        for value in [
            tally.app_deliveries,
            tally.view_changes,
            tally.rounds.len() as u64,
            tally.restarts,
            u64::from(tally.rejoin.is_some()),
            tally.context_converged_ms.unwrap_or(0),
            tally.last_view_id.unwrap_or(0),
        ] {
            sig = (sig ^ value).wrapping_mul(PRIME);
        }
    }
    sig
}

/// True when at least two members that are alive, unpartitioned and not
/// currently flapped down have installed different views. Stalled progress
/// while this holds is the wedge signature; disagreement among nodes the
/// schedule is actively isolating is expected and does not count.
fn live_views_disagree(
    scenario: &Scenario,
    network: &Network,
    tallies: &[NodeTally],
    at_ms: u64,
) -> bool {
    let mut live_view: Option<u64> = None;
    for (index, tally) in tallies.iter().enumerate() {
        let node = NodeId(index as u32);
        if !network.is_operational(SimNodeId(node.0))
            || scenario.is_partitioned(node, at_ms)
            || scenario
                .fault_schedule
                .node_flapped_down(SimNodeId(node.0), at_ms)
            || scenario
                .fault_schedule
                .node_partitioned(SimNodeId(node.0), at_ms)
        {
            continue;
        }
        let Some(view) = tally.last_view_id else {
            continue;
        };
        match live_view {
            None => live_view = Some(view),
            Some(existing) if existing != view => return true,
            Some(_) => {}
        }
    }
    false
}

/// The node options every incarnation of a scenario node is built with.
fn node_options(scenario: &Scenario, members: &[NodeId], rejoining: bool) -> NodeOptions {
    let mut options = NodeOptions::new(members.to_vec())
        .with_initial_stack(scenario.initial_stack.clone())
        .with_publish_interval(scenario.publish_interval_ms);
    options.adaptive = scenario.adaptive;
    options.hb_interval_ms = scenario.hb_interval_ms;
    options.suspect_timeout_ms = scenario.suspect_timeout_ms;
    options.retransmit_interval_ms = scenario.retransmit_interval_ms;
    options.round_timeout_ms = scenario.round_timeout_ms;
    options.control_fanout = scenario.control_fanout;
    options.gossip_repair_interval_ms = scenario.repair_interval_ms;
    options.transfer_chunk_bytes = scenario.transfer_chunk_bytes;
    options.rejoining = rejoining;
    for (key, value) in &scenario.core_params {
        options = options.with_core_param(key.clone(), value.clone());
    }
    options
}

/// Builds one node incarnation: incarnation 0 is a boot member, higher
/// incarnations come up as rejoining members with fresh state.
fn build_node(
    scenario: &Scenario,
    members: &[NodeId],
    member: NodeId,
    incarnation: u32,
    now_ms: u64,
    network: &Network,
    binding: &mut dyn AppBinding,
) -> (MorpheusNode, SimPlatform) {
    let profile = profile_for(network, scenario, member);
    let mut platform = SimPlatform::new(
        profile,
        scenario
            .seed
            .wrapping_add(0x9E37 + u64::from(member.0))
            .wrapping_add(0x517E * u64::from(incarnation)),
    );
    // The clock must be right *before* the stacks come up: failure-detector
    // grace periods, join timestamps and snapshot versions are all taken at
    // channel creation.
    platform.set_now(now_ms);
    let options = node_options(scenario, members, incarnation > 0);
    let node = MorpheusNode::with_app_state(options, binding.state_sections(member), &mut platform)
        .expect("scenario stacks are built from the catalogue and always instantiate");
    (node, platform)
}

/// Builds the netsim topology for a scenario.
fn build_topology(scenario: &Scenario) -> Topology {
    let wireless = Wireless80211b {
        loss_rate: scenario.wireless_loss,
        ..Wireless80211b::default()
    };
    let topology = match scenario.topology {
        TopologyChoice::HybridCell => {
            Topology::hybrid_cell(scenario.fixed_nodes, scenario.mobile_nodes)
        }
        TopologyChoice::Lan { native_multicast } => {
            Topology::lan(scenario.device_count(), native_multicast)
        }
        TopologyChoice::AdHoc => Topology::ad_hoc(scenario.device_count()),
        TopologyChoice::Wan => Topology::wan(scenario.device_count()),
    };
    topology.with_wireless(wireless)
}

/// The locally observable context of a node, refreshed from the simulator.
fn profile_for(network: &Network, scenario: &Scenario, node: NodeId) -> NodeProfile {
    let sim_id = SimNodeId(node.0);
    let kind = network.kind_of(sim_id);
    let topology = network.topology();
    let device_class = if kind.is_mobile() {
        morpheus_appia::platform::DeviceClass::MobilePda
    } else {
        morpheus_appia::platform::DeviceClass::FixedPc
    };
    NodeProfile {
        node_id: node,
        device_class,
        battery_level: network.battery_fraction(sim_id),
        link_quality: 1.0 - topology.local_loss_rate(sim_id),
        bandwidth_kbps: topology.local_bandwidth_kbps(sim_id),
        error_rate: if kind.is_mobile() {
            scenario.wireless_loss
        } else {
            0.0
        },
        has_native_multicast: topology.native_multicast_available(sim_id),
    }
}

/// Generates one chat payload of the requested size.
fn chat_payload(sender: NodeId, seq: u64, size: usize) -> Bytes {
    let mut payload = format!("chat:{sender}:{seq}:").into_bytes();
    payload.resize(size.max(payload.len()), b'x');
    Bytes::from(payload)
}

fn traffic_class(class: PacketClass) -> TrafficClass {
    match class {
        PacketClass::Data => TrafficClass::Data,
        PacketClass::Control => TrafficClass::Control,
        PacketClass::Context => TrafficClass::Context,
        PacketClass::Repair => TrafficClass::Repair,
        PacketClass::Overlay => TrafficClass::Overlay,
    }
}

/// Drains every side effect a node produced and feeds it back into the
/// simulation: packets onto the network, timers onto the event queue,
/// reconfiguration requests into the node's local module, deliveries into the
/// tallies. Repeats until the node is quiescent.
#[allow(clippy::too_many_arguments)]
fn flush_node(
    index: usize,
    now: SimTime,
    scenario: &Scenario,
    control_channel: &str,
    data_channel: &str,
    nodes: &mut [MorpheusNode],
    platforms: &mut [SimPlatform],
    tallies: &mut [NodeTally],
    network: &mut Network,
    queue: &mut EventQueue<SimEvent>,
    queue_cap: u64,
    rng: &mut SimRng,
    incarnations: &[u32],
    binding: &mut dyn AppBinding,
) {
    loop {
        let mut progressed = false;

        // 1. Reconfiguration requests raised by the Core control layer.
        for request in platforms[index].take_reconfig_requests() {
            progressed = true;
            if nodes[index]
                .apply_reconfiguration(request, &mut platforms[index])
                .is_err()
            {
                tallies[index].reconfig_errors += 1;
            }
        }

        // 2. Outgoing packets. When the scenario degrades the control plane
        //    (or, for repair experiments, the data channel), packets on that
        //    channel are dropped here with the run's rng, accounted
        //    separately from the link model's own losses — so each
        //    experiment isolates the loss tolerance of one protocol.
        //    A partitioned node's traffic is dropped wholesale.
        for out in platforms[index].take_packets() {
            progressed = true;
            if scenario.is_partitioned(NodeId(index as u32), now.as_millis()) {
                tallies[index].partition_dropped += 1;
                continue;
            }
            if scenario.control_loss > 0.0
                && out.channel.as_str() == control_channel
                && rng.chance(scenario.control_loss)
            {
                tallies[index].control_dropped += 1;
                continue;
            }
            if scenario.data_loss > 0.0
                && out.channel.as_str() == data_channel
                && rng.chance(scenario.data_loss)
            {
                tallies[index].data_dropped += 1;
                continue;
            }
            let target = match out.dest {
                PacketDest::Node(to) => PacketTarget::Unicast(SimNodeId(to.0)),
                PacketDest::Broadcast => PacketTarget::Broadcast,
            };
            let packet = Packet {
                from: SimNodeId(out.from.0),
                target,
                size_bytes: out.payload.len() + FRAMING_OVERHEAD_BYTES,
                class: traffic_class(out.class),
                payload: NetPayload {
                    channel: out.channel,
                    bytes: out.payload,
                },
            };
            for delivery in network.send(packet, now, rng) {
                // Bounded event queue with graceful shedding: once the
                // queue is at capacity, *data*-plane arrivals are dropped
                // here (the epidemic repair plane recovers them), while
                // control/context arrivals and timers are never shed — a
                // queue still growing past the cap is control runaway and
                // is left to the wedge detector.
                if out.class == PacketClass::Data && queue.len() as u64 >= queue_cap {
                    tallies[index].shed_packets += 1;
                    continue;
                }
                queue.push(
                    delivery.at,
                    SimEvent::Packet {
                        to: NodeId(delivery.to.0),
                        from: NodeId(delivery.from.0),
                        class: out.class,
                        payload: delivery.payload,
                    },
                );
            }
        }

        // 3. Timers, stamped with the node's current incarnation.
        for (delay, key) in platforms[index].take_timer_requests() {
            progressed = true;
            queue.push(
                now + delay,
                SimEvent::Timer {
                    node: NodeId(index as u32),
                    key,
                    incarnation: incarnations[index],
                },
            );
        }

        // 4. Application deliveries.
        for delivery in platforms[index].take_deliveries() {
            progressed = true;
            binding.on_delivery(NodeId(index as u32), &delivery);
            match delivery.kind {
                DeliveryKind::Data { .. } => tallies[index].app_deliveries += 1,
                DeliveryKind::ViewChange {
                    view_id,
                    ref members,
                } => {
                    tallies[index].view_changes += 1;
                    tallies[index].last_view_id = Some(view_id);
                    let smallest = tallies[index].min_view_members.get_or_insert(members.len());
                    *smallest = (*smallest).min(members.len());
                    // Relay the data channel's view onto the control channel:
                    // installed views are authoritative membership for the
                    // whole control plane (fd, cocaditem, core).
                    nodes[index].install_control_view(
                        view_id,
                        members.clone(),
                        &mut platforms[index],
                    );
                }
                DeliveryKind::Reconfigured { stack } => {
                    tallies[index]
                        .notifications
                        .push(format!("reconfigured to {stack}"));
                }
                DeliveryKind::ReconfigurationComplete {
                    stack,
                    epoch,
                    latency_ms,
                    retransmits,
                    nodes: quorum,
                } => {
                    tallies[index].notifications.push(format!(
                        "reconfiguration to `{stack}` (epoch {epoch}) completed across \
                         {quorum} nodes in {latency_ms} ms after {retransmits} retransmits"
                    ));
                    tallies[index].rounds.push(RoundReport {
                        coordinator: NodeId(index as u32),
                        stack,
                        epoch,
                        latency_ms,
                        retransmits,
                        nodes: quorum,
                    });
                }
                DeliveryKind::Rejoined {
                    donor,
                    bytes,
                    chunks,
                    transfer_epochs,
                    elapsed_ms,
                } => {
                    tallies[index].notifications.push(format!(
                        "rejoined via donor {donor} in {elapsed_ms} ms ({bytes} bytes, \
                         {chunks} chunks, {transfer_epochs} transfer epochs)"
                    ));
                    tallies[index].rejoin = Some(RejoinReport {
                        at_ms: now.as_millis(),
                        donor,
                        bytes,
                        chunks,
                        transfer_epochs,
                        elapsed_ms,
                    });
                }
                DeliveryKind::CaughtUp {
                    donor,
                    bytes,
                    chunks,
                } => {
                    tallies[index].notifications.push(format!(
                        "caught up past the repair-log floor via donor {donor} \
                         ({bytes} bytes, {chunks} chunks) without rejoining"
                    ));
                    tallies[index].catchups += 1;
                }
                DeliveryKind::ContextConverged { .. } => {
                    // First full coverage of the membership by this node's
                    // context store: the dissemination convergence metric.
                    tallies[index]
                        .context_converged_ms
                        .get_or_insert(now.as_millis());
                }
                DeliveryKind::Notification(text) => tallies[index].notifications.push(text),
            }
        }

        let _ = scenario;
        if !progressed {
            return;
        }
    }
}

/// Assembles the final report.
#[allow(clippy::too_many_arguments)]
fn build_report(
    scenario: &Scenario,
    last_time: SimTime,
    events_processed: u64,
    network: &Network,
    nodes: &[MorpheusNode],
    tallies: &[NodeTally],
    wedge: Option<WedgeReport>,
    max_queue_depth: u64,
) -> RunReport {
    let mut node_reports = Vec::with_capacity(nodes.len());
    for (index, node) in nodes.iter().enumerate() {
        let node_id = NodeId(index as u32);
        let sim_id = SimNodeId(index as u32);
        let stats = network.stats().node_or_default(sim_id);
        let tally = &tallies[index];
        node_reports.push(NodeReport {
            node: node_id,
            is_mobile: network.kind_of(sim_id).is_mobile(),
            sent_data: stats.sent_of(TrafficClass::Data),
            sent_control: stats.sent_of(TrafficClass::Control),
            sent_context: stats.sent_of(TrafficClass::Context),
            sent_repair: stats.sent_of(TrafficClass::Repair),
            sent_overlay: stats.sent_of(TrafficClass::Overlay),
            received_total: stats.total_received(),
            bytes_sent: stats.bytes_sent,
            wire_bytes: WireBytes {
                data: stats.bytes_sent_of(TrafficClass::Data),
                control: stats.bytes_sent_of(TrafficClass::Control),
                context: stats.bytes_sent_of(TrafficClass::Context),
                repair: stats.bytes_sent_of(TrafficClass::Repair),
                overlay: stats.bytes_sent_of(TrafficClass::Overlay),
            },
            energy_joules: stats.energy_joules,
            battery_fraction: network.battery_fraction(sim_id),
            app_deliveries: tally.app_deliveries,
            view_changes: tally.view_changes,
            final_stack: node.current_stack().to_string(),
            reconfigurations: node.reconfigurations(),
            notifications: tally.notifications.clone(),
            rounds: tally.rounds.clone(),
            errors: tally.packet_errors + tally.reconfig_errors,
            context_converged_ms: tally.context_converged_ms,
            min_view_members: tally.min_view_members,
            restarts: tally.restarts,
            rejoin: tally.rejoin.clone(),
            catchups: tally.catchups,
            buffer_shed: node
                .recovery_stats()
                .map(|(buffer_shed, _)| buffer_shed)
                .unwrap_or(0),
            gossip: node.gossip_stats().map(|stats| GossipReport {
                forwarded: stats.forwarded,
                duplicates: stats.duplicates,
                repair_digests: stats.repair_digests,
                repair_pulls: stats.repair_pulls,
                repair_pulled_seqs: stats.repair_pulled_seqs,
                repair_pushes: stats.repair_pushes,
                repaired_deliveries: stats.repaired_deliveries,
                late_duplicates: stats.late_duplicates,
                deferred_pushes: stats.deferred_pushes,
                outbox_shed: stats.outbox_shed,
                floor_escalations: stats.floor_escalations,
                rate_limited_pushes: stats.rate_limited_pushes,
            }),
        });
    }
    let stats = network.stats();
    RunReport {
        scenario: scenario.name.clone(),
        devices: scenario.device_count(),
        adaptive: scenario.adaptive,
        duration_ms: last_time.as_millis(),
        events_processed,
        messages_lost: stats.total_lost_of(TrafficClass::Data),
        control_lost: stats.total_lost_of(TrafficClass::Control)
            + stats.total_lost_of(TrafficClass::Context)
            + stats.total_lost_of(TrafficClass::Repair)
            + stats.total_lost_of(TrafficClass::Overlay)
            + tallies
                .iter()
                .map(|tally| tally.control_dropped)
                .sum::<u64>(),
        messages_lost_to_crashed: stats.total_lost_to_dead(),
        data_dropped: tallies.iter().map(|tally| tally.data_dropped).sum(),
        partition_dropped: tallies.iter().map(|tally| tally.partition_dropped).sum(),
        fault_dropped: stats.total_fault_dropped(),
        corrupted_packets: tallies.iter().map(|tally| tally.corrupted).sum(),
        shed_packets: tallies.iter().map(|tally| tally.shed_packets).sum(),
        max_queue_depth,
        wedge,
        nodes: node_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Workload;

    fn small_figure3(devices: usize, optimized: bool) -> Scenario {
        let mut scenario = Scenario::figure3(devices, optimized, 60);
        scenario.workload.warmup_ms = 2500;
        scenario.publish_interval_ms = 500;
        scenario
    }

    #[test]
    fn non_adaptive_mobile_node_pays_the_full_fanout() {
        let report = Runner::new().run(&small_figure3(4, false));
        let mobile = report.node(NodeId(1)).unwrap();
        // 60 group sends, each expanded to 3 point-to-point messages.
        assert_eq!(mobile.sent_data, 180);
        assert_eq!(mobile.final_stack, "best-effort");
        assert_eq!(mobile.reconfigurations, 0);
    }

    #[test]
    fn adaptive_run_switches_to_mecho_and_flattens_the_mobile_load() {
        let report = Runner::new().run(&small_figure3(6, true));
        let mobile = report.node(NodeId(1)).unwrap();
        assert!(
            mobile.final_stack.starts_with("hybrid-mecho"),
            "unexpected final stack {}",
            mobile.final_stack
        );
        assert!(mobile.reconfigurations >= 1);
        // After the switch, each chat message costs the mobile node a single
        // transmission, so the data count stays close to the message count.
        assert!(
            mobile.sent_data <= 120,
            "mobile sent {} data messages, expected roughly 60",
            mobile.sent_data
        );
        // The fixed relay pays the fan-out instead (paper footnote 1).
        let fixed = report.node(NodeId(0)).unwrap();
        assert!(fixed.sent_data > mobile.sent_data);
        // Messages are still delivered to every participant.
        assert!(report.total_app_deliveries() > 0);
    }

    #[test]
    fn adaptive_and_baseline_agree_for_two_devices() {
        let optimized = Runner::new().run(&small_figure3(2, true));
        let baseline = Runner::new().run(&small_figure3(2, false));
        let sent_optimized = optimized.node(NodeId(1)).unwrap().sent_data;
        let sent_baseline = baseline.node(NodeId(1)).unwrap().sent_data;
        assert_eq!(
            sent_baseline, 60,
            "with two devices every interaction is a single point-to-point message"
        );
        assert_eq!(sent_optimized, sent_baseline);
    }

    #[test]
    fn deliveries_reach_the_other_participants() {
        let report = Runner::new().run(&small_figure3(3, false));
        // Two receivers, 60 messages each (loss-free wired/wireless defaults).
        assert_eq!(report.total_app_deliveries(), 120);
        assert_eq!(report.messages_lost, 0);
    }

    #[test]
    fn lossy_wireless_runs_record_losses() {
        let scenario = small_figure3(4, false).with_wireless_loss(0.3).with_seed(7);
        let report = Runner::new().run(&scenario);
        assert!(report.messages_lost > 0);
        let mobile = report.node(NodeId(1)).unwrap();
        assert_eq!(
            mobile.sent_data, 180,
            "losses do not change how much the sender transmits"
        );
        assert!(report.total_app_deliveries() < 360);
    }

    #[test]
    fn ad_hoc_scenarios_run_with_every_node_mobile() {
        let mut scenario = Scenario::new("adhoc", 0, 3)
            .with_topology(crate::scenario::TopologyChoice::AdHoc)
            .non_adaptive();
        scenario.workload = Workload::paper_chat(vec![NodeId(0)], 20);
        scenario.workload.warmup_ms = 1000;
        let report = Runner::new().run(&scenario);
        assert!(report.nodes.iter().all(|node| node.is_mobile));
        assert_eq!(report.node(NodeId(0)).unwrap().sent_data, 40);
    }

    #[test]
    fn max_events_caps_the_run() {
        let runner = Runner { max_events: 10 };
        let report = runner.run(&small_figure3(3, false));
        assert!(report.total_app_deliveries() < 10);
    }

    use morpheus_netsim::FaultSchedule;

    fn harness_with(schedule: &str, n: usize, seed: u64) -> Scenario {
        Scenario::fault_harness(n, seed)
            .with_fault_schedule(FaultSchedule::parse(schedule).expect("test schedule parses"))
    }

    #[test]
    fn flap_and_oneway_drops_are_fault_accounted_not_lost() {
        let scenario = harness_with(
            "flap(node=3,start=7000,down=400,up=1200,until=11000);\
             oneway(from=4,to=5,start=7000,end=10000)",
            6,
            11,
        );
        let report = Runner::new().run(&scenario);
        assert!(
            report.fault_dropped > 0,
            "injected faults were active while traffic flowed"
        );
        assert_eq!(
            report.messages_lost, 0,
            "live links never lose data; every drop is fault-accounted"
        );
        assert!(
            report.wedge.is_none(),
            "unexpected wedge: {:?}",
            report.wedge
        );
        assert!(report.total_app_deliveries() > 0);
    }

    #[test]
    fn corrupted_packets_are_rejected_not_crashed_on() {
        let scenario = harness_with("corrupt(start=6000,end=12000,rate=0.05)", 6, 13);
        let report = Runner::new().run(&scenario);
        assert!(
            report.corrupted_packets > 0,
            "corruption window saw traffic"
        );
        assert!(
            report.total_errors() <= report.corrupted_packets,
            "every decode error is explained by an injected corruption \
             ({} errors, {} corrupted)",
            report.total_errors(),
            report.corrupted_packets
        );
        assert_eq!(report.messages_lost, 0);
        assert!(
            report.wedge.is_none(),
            "unexpected wedge: {:?}",
            report.wedge
        );
    }

    #[test]
    fn churn_victims_restart_and_rejoin() {
        let scenario = harness_with("churn(start=6000,end=12000,interval=2000,down=2500)", 8, 17);
        let report = Runner::new().run(&scenario);
        let restarts: u64 = report.nodes.iter().map(|node| node.restarts).sum();
        assert!(restarts >= 2, "churn produced only {restarts} restarts");
        assert!(
            report.nodes.iter().any(|node| node.rejoin.is_some()),
            "at least one churn victim completed a state-transfer rejoin"
        );
        assert_eq!(report.messages_lost, 0);
        assert!(
            report.wedge.is_none(),
            "unexpected wedge: {:?}",
            report.wedge
        );
    }

    #[test]
    fn wan_region_tiers_slow_the_group_without_losing_data() {
        let scenario = harness_with("wanregions(start=7000,end=13000,regions=3,step=60)", 6, 19);
        let first = Runner::new().run(&scenario);
        assert_eq!(
            first.messages_lost, 0,
            "region latency delays packets, it never drops them"
        );
        assert!(first.wedge.is_none(), "unexpected wedge: {:?}", first.wedge);
        assert!(first.total_app_deliveries() > 0);
        let second = Runner::new().run(&scenario);
        assert_eq!(first, second, "WAN-region replay from (seed, schedule)");
    }

    #[test]
    fn mass_churn_victims_restart_and_replay_deterministically() {
        let scenario = harness_with("masschurn(start=7000,end=11000,per=2,down=2000)", 8, 29);
        let first = Runner::new().run(&scenario);
        let restarts: u64 = first.nodes.iter().map(|node| node.restarts).sum();
        assert!(
            restarts >= 4,
            "mass churn produced only {restarts} restarts"
        );
        assert_eq!(first.messages_lost, 0);
        assert!(first.wedge.is_none(), "unexpected wedge: {:?}", first.wedge);
        let second = Runner::new().run(&scenario);
        assert_eq!(first, second, "mass-churn replay from (seed, schedule)");
    }

    #[test]
    fn flap_oneway_drops_are_fault_accounted_and_replay() {
        let scenario = harness_with(
            "flaponeway(from=2,to=4,start=7000,down=500,up=900,until=12000)",
            6,
            31,
        );
        let first = Runner::new().run(&scenario);
        assert!(
            first.fault_dropped > 0,
            "the flapping one-way link dropped traffic"
        );
        assert_eq!(
            first.messages_lost, 0,
            "every drop is fault-accounted, never a live-link loss"
        );
        assert!(first.wedge.is_none(), "unexpected wedge: {:?}", first.wedge);
        let second = Runner::new().run(&scenario);
        assert_eq!(first, second, "flap-oneway replay from (seed, schedule)");
    }

    #[test]
    fn permanent_one_way_silence_wedges_deterministically() {
        // Node 5 transmits into the void forever but hears everything: the
        // group expels it, it can never complete a rejoin handshake, and the
        // run makes no further progress while node 5 still holds the old
        // view — exactly what the wedge detector exists to catch. Replaying
        // the same `(seed, schedule)` must reproduce the identical wedge.
        let schedule: String = (0..5)
            .map(|to| format!("oneway(from=5,to={to},start=7000,end=600000)"))
            .collect::<Vec<_>>()
            .join(";");
        let scenario = harness_with(&schedule, 6, 23);
        let first = Runner::new().run(&scenario);
        let second = Runner::new().run(&scenario);
        let wedge_a = first.wedge.expect("the silenced member wedges the run");
        let wedge_b = second.wedge.expect("the replay wedges too");
        assert_eq!(wedge_a, wedge_b, "wedge must replay from (seed, schedule)");
    }

    #[test]
    fn fault_runs_replay_identically_from_seed_and_schedule() {
        let base = Scenario::fault_harness(8, 42);
        let schedule = FaultSchedule::generate(42, 8, base.end_time_ms());
        let scenario = base.with_fault_schedule(schedule);
        let first = Runner::new().run(&scenario);
        let second = Runner::new().run(&scenario);
        assert_eq!(
            first, second,
            "whole-report determinism in (seed, schedule)"
        );
    }

    #[test]
    fn fault_free_harness_run_is_clean() {
        let report = Runner::new().run(&Scenario::fault_harness(5, 3));
        assert_eq!(report.fault_dropped, 0);
        assert_eq!(report.corrupted_packets, 0);
        assert_eq!(report.messages_lost, 0);
        assert!(
            report.wedge.is_none(),
            "unexpected wedge: {:?}",
            report.wedge
        );
        assert!(report.total_app_deliveries() > 0);
    }
}
