//! The platform binding between a Morpheus node and the network simulator.

use std::collections::HashSet;

use morpheus_appia::platform::{
    AppDelivery, NodeId, NodeProfile, OutPacket, Platform, ReconfigRequest,
};
use morpheus_appia::timer::TimerKey;
use morpheus_netsim::SimRng;

/// A deterministic [`Platform`] implementation backed by the simulator.
///
/// The runner owns one `SimPlatform` per node. All side effects requested by
/// the node's protocol stack (packets, timers, application deliveries,
/// reconfiguration requests) are buffered here and drained by the runner
/// after each interaction, which keeps the node code free of any reference to
/// the simulation engine.
#[derive(Debug)]
pub struct SimPlatform {
    node_id: NodeId,
    profile: NodeProfile,
    now_ms: u64,
    rng: SimRng,
    /// Packets queued for transmission.
    pub out_packets: Vec<OutPacket>,
    /// Timers armed since the last drain: `(delay_ms, key)`.
    pub timer_requests: Vec<(u64, TimerKey)>,
    /// Timers cancelled since the last drain.
    pub cancelled_timers: HashSet<TimerKey>,
    /// Application deliveries produced since the last drain.
    pub deliveries: Vec<AppDelivery>,
    /// Reconfiguration requests raised since the last drain.
    pub reconfig_requests: Vec<ReconfigRequest>,
}

impl SimPlatform {
    /// Creates a platform for one node.
    pub fn new(profile: NodeProfile, seed: u64) -> Self {
        Self {
            node_id: profile.node_id,
            profile,
            now_ms: 0,
            rng: SimRng::new(seed),
            out_packets: Vec::new(),
            timer_requests: Vec::new(),
            cancelled_timers: HashSet::new(),
            deliveries: Vec::new(),
            reconfig_requests: Vec::new(),
        }
    }

    /// Advances the platform's clock to the given simulated time.
    pub fn set_now(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
    }

    /// Refreshes the locally observable context (battery, link state) before
    /// handing control to the node.
    pub fn set_profile(&mut self, profile: NodeProfile) {
        self.profile = profile;
    }

    /// Drains the queued outgoing packets.
    pub fn take_packets(&mut self) -> Vec<OutPacket> {
        std::mem::take(&mut self.out_packets)
    }

    /// Drains the timers armed since the last call.
    pub fn take_timer_requests(&mut self) -> Vec<(u64, TimerKey)> {
        std::mem::take(&mut self.timer_requests)
    }

    /// Drains the application deliveries.
    pub fn take_deliveries(&mut self) -> Vec<AppDelivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Drains the reconfiguration requests.
    pub fn take_reconfig_requests(&mut self) -> Vec<ReconfigRequest> {
        std::mem::take(&mut self.reconfig_requests)
    }

    /// Whether the timer was cancelled (and forgets the cancellation).
    pub fn consume_cancellation(&mut self, key: &TimerKey) -> bool {
        self.cancelled_timers.remove(key)
    }
}

impl Platform for SimPlatform {
    fn now_ms(&self) -> u64 {
        self.now_ms
    }

    fn node_id(&self) -> NodeId {
        self.node_id
    }

    fn profile(&self) -> NodeProfile {
        self.profile.clone()
    }

    fn send(&mut self, packet: OutPacket) {
        self.out_packets.push(packet);
    }

    fn set_timer(&mut self, delay_ms: u64, key: TimerKey) {
        self.timer_requests.push((delay_ms, key));
    }

    fn cancel_timer(&mut self, key: TimerKey) {
        self.cancelled_timers.insert(key);
    }

    fn deliver(&mut self, delivery: AppDelivery) {
        self.deliveries.push(delivery);
    }

    fn random_u64(&mut self) -> u64 {
        self.rng.random_u64()
    }

    fn request_reconfiguration(&mut self, request: ReconfigRequest) {
        self.reconfig_requests.push(request);
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::channel::ChannelId;
    use morpheus_appia::platform::{DeliveryKind, PacketClass, PacketDest};

    use super::*;

    #[test]
    fn platform_buffers_side_effects_until_drained() {
        let mut platform = SimPlatform::new(NodeProfile::mobile_pda(NodeId(3)), 7);
        platform.set_now(100);
        assert_eq!(platform.now_ms(), 100);
        platform.set_now(50);
        assert_eq!(platform.now_ms(), 100, "time never goes backwards");

        platform.send(OutPacket {
            from: NodeId(3),
            dest: PacketDest::Node(NodeId(0)),
            class: PacketClass::Data,
            channel: "data".into(),
            payload: bytes::Bytes::from_static(b"x"),
        });
        platform.set_timer(10, TimerKey::new(ChannelId(1), 1));
        platform.deliver(AppDelivery {
            channel: "data".into(),
            kind: DeliveryKind::Notification("n".into()),
        });
        platform.request_reconfiguration(ReconfigRequest {
            channel: "data".into(),
            stack_name: "s".into(),
            description: "<channel name=\"data\"><layer name=\"network\"/></channel>".into(),
            epoch: 1,
            coordinator: NodeId(0),
        });

        assert_eq!(platform.take_packets().len(), 1);
        assert_eq!(platform.take_timer_requests().len(), 1);
        assert_eq!(platform.take_deliveries().len(), 1);
        assert_eq!(platform.take_reconfig_requests().len(), 1);
        assert!(platform.take_packets().is_empty());
    }

    #[test]
    fn cancellations_are_consumed_once() {
        let mut platform = SimPlatform::new(NodeProfile::fixed_pc(NodeId(0)), 1);
        let key = TimerKey::new(ChannelId(2), 9);
        platform.cancel_timer(key);
        assert!(platform.consume_cancellation(&key));
        assert!(!platform.consume_cancellation(&key));
    }

    #[test]
    fn deterministic_randomness_per_seed() {
        let mut a = SimPlatform::new(NodeProfile::fixed_pc(NodeId(0)), 42);
        let mut b = SimPlatform::new(NodeProfile::fixed_pc(NodeId(0)), 42);
        assert_eq!(a.random_u64(), b.random_u64());
    }

    #[test]
    fn profile_refresh_changes_what_the_stack_sees() {
        let mut platform = SimPlatform::new(NodeProfile::mobile_pda(NodeId(1)), 1);
        assert_eq!(platform.profile().battery_level, 1.0);
        let mut drained = NodeProfile::mobile_pda(NodeId(1));
        drained.battery_level = 0.25;
        platform.set_profile(drained);
        assert_eq!(platform.profile().battery_level, 0.25);
    }
}
