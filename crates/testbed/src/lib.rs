//! # morpheus-testbed
//!
//! The simulated experimental testbed: it instantiates one
//! [`morpheus_core::MorpheusNode`] per participant, binds each to the
//! deterministic discrete-event network simulator (`morpheus-netsim`) through
//! a [`platform::SimPlatform`], and runs complete distributed scenarios —
//! including the paper's evaluation scenario (a hybrid 802.11b cell with
//! fixed PCs and mobile PDAs exchanging chat traffic).
//!
//! * [`scenario::Scenario`] describes an experiment: devices, topology,
//!   workload, whether adaptation is enabled, seeds.
//! * [`runner::Runner`] executes a scenario to completion and produces a
//!   [`report::RunReport`] with the per-node message counts (the metric of
//!   the paper's Figure 3), energy, deliveries and reconfiguration events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod platform;
pub mod report;
pub mod runner;
pub mod scenario;

pub use platform::SimPlatform;
pub use report::{NodeReport, RejoinReport, RoundReport, RunReport, WedgeReport, WireBytes};
pub use runner::{AppBinding, Runner};
pub use scenario::{Scenario, TopologyChoice, Workload};
