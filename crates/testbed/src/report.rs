//! Run reports: the measurements a scenario produces.

use morpheus_appia::platform::NodeId;
use serde::{Deserialize, Serialize};

/// One completed reconfiguration round, as reported by its coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// The coordinator that completed the round.
    pub coordinator: NodeId,
    /// Stack configuration the group agreed on.
    pub stack: String,
    /// Reconfiguration epoch of the round.
    pub epoch: u64,
    /// Time from initiation to the last acknowledgement, in milliseconds.
    pub latency_ms: u64,
    /// Command retransmissions the round needed.
    pub retransmits: u64,
    /// Size of the live quorum that acknowledged.
    pub nodes: usize,
}

/// One completed rejoin (view-synchronous state transfer), as reported by
/// the restarted node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejoinReport {
    /// Simulated time at which the rejoin completed.
    pub at_ms: u64,
    /// The donor the snapshot was streamed from.
    pub donor: NodeId,
    /// Snapshot bytes transferred.
    pub bytes: u64,
    /// Chunks the snapshot was streamed in.
    pub chunks: u32,
    /// Transfer epochs used (more than 1 means donor failover happened).
    pub transfer_epochs: u64,
    /// Restart-to-member latency as measured by the rejoining node, in
    /// milliseconds.
    pub elapsed_ms: u64,
}

/// A wedge the runner's progress detector caught: the run stopped making
/// progress in a way waiting would not fix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WedgeReport {
    /// Simulated time at which the wedge was declared.
    pub at_ms: u64,
    /// What tripped the detector (stalled disagreement, queue growth,
    /// round churn).
    pub reason: String,
}

/// Bytes put on the wire by one node, broken down by component — the
/// measurement behind the subscription-proportional cost claim: a node's
/// data + overlay bytes should track what it subscribes to, while control,
/// context and repair stay bounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireBytes {
    /// Application data bytes.
    pub data: u64,
    /// Group-communication control bytes (membership, flush, acks, ...).
    pub control: u64,
    /// Context dissemination bytes.
    pub context: u64,
    /// Loss-repair bytes (NACK digests, pulls, re-streamed originals).
    pub repair: u64,
    /// Overlay-maintenance bytes (partial views, shuffles, grafts, prunes).
    pub overlay: u64,
}

impl WireBytes {
    /// Sum over every component.
    pub fn total(&self) -> u64 {
        self.data + self.control + self.context + self.repair + self.overlay
    }

    /// Adds another breakdown component-wise.
    pub fn add(&mut self, other: &WireBytes) {
        self.data += other.data;
        self.control += other.control;
        self.context += other.context;
        self.repair += other.repair;
        self.overlay += other.overlay;
    }
}

/// Measurements for one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Whether the node is a mobile device.
    pub is_mobile: bool,
    /// Data messages transmitted (each point-to-point send counts once).
    pub sent_data: u64,
    /// Group-communication control messages transmitted.
    pub sent_control: u64,
    /// Context dissemination messages transmitted.
    pub sent_context: u64,
    /// Loss-repair messages transmitted (NACK digests, pulls, re-streams).
    pub sent_repair: u64,
    /// Overlay-maintenance messages transmitted.
    pub sent_overlay: u64,
    /// Messages received (all classes).
    pub received_total: u64,
    /// Bytes transmitted.
    pub bytes_sent: u64,
    /// Bytes transmitted, broken down by component.
    pub wire_bytes: WireBytes,
    /// Energy spent by the radio, in joules.
    pub energy_joules: f64,
    /// Remaining battery fraction at the end of the run.
    pub battery_fraction: f64,
    /// Application (chat) messages delivered to this node.
    pub app_deliveries: u64,
    /// Number of view changes reported to the application.
    pub view_changes: u64,
    /// Name of the stack deployed at the end of the run.
    pub final_stack: String,
    /// Number of stack reconfigurations applied.
    pub reconfigurations: u64,
    /// Notifications reported to the application (reconfiguration reports).
    pub notifications: Vec<String>,
    /// Reconfiguration rounds this node completed as coordinator.
    pub rounds: Vec<RoundReport>,
    /// Packet or reconfiguration processing errors (should be zero).
    pub errors: u64,
    /// Simulated time at which this node's context store first covered the
    /// whole membership (`None` if it never did).
    pub context_converged_ms: Option<u64>,
    /// Size of the smallest view announced to this node (`None` if no view
    /// was ever announced). A value below the boot membership means some
    /// member was expelled — e.g. by a (possibly false) suspicion.
    pub min_view_members: Option<usize>,
    /// How many times this node was restarted during the run.
    pub restarts: u64,
    /// The node's last completed rejoin, when it restarted and made it back
    /// into the group.
    pub rejoin: Option<RejoinReport>,
    /// Targeted snapshot catch-ups this node completed (repair-floor
    /// escalations healed without a rejoin).
    pub catchups: u64,
    /// Join-view messages shed at the recovery layer's buffer cap.
    pub buffer_shed: u64,
    /// Counters of the node's epidemic data stack at the end of the run
    /// (`None` when the final stack is not gossip-based).
    pub gossip: Option<GossipReport>,
}

/// End-of-run counters of one node's epidemic (gossip) data stack: the
/// push phase plus the NACK/anti-entropy repair pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GossipReport {
    /// Push-phase forwards performed.
    pub forwarded: u64,
    /// Push-phase duplicates suppressed.
    pub duplicates: u64,
    /// Repair digests gossiped.
    pub repair_digests: u64,
    /// NACK pulls sent.
    pub repair_pulls: u64,
    /// Message identifiers requested across all pulls.
    pub repair_pulled_seqs: u64,
    /// Logged messages served in answer to pulls.
    pub repair_pushes: u64,
    /// Messages delivered through the repair pass (gaps the push phase
    /// missed).
    pub repaired_deliveries: u64,
    /// Late duplicates suppressed by the delivery tracker.
    pub late_duplicates: u64,
    /// Pushes left waiting in the outbox by a flush because the peer was
    /// out of credit (backpressure at work, not a loss).
    pub deferred_pushes: u64,
    /// Pushes shed at the outbox cap (drop-newest; recoverable via repair).
    pub outbox_shed: u64,
    /// Repair-floor answers that escalated to a snapshot catch-up.
    pub floor_escalations: u64,
    /// Pull responses refused by the per-interval push rate limit.
    pub rate_limited_pushes: u64,
}

impl NodeReport {
    /// Total messages transmitted by this node, all classes included — the
    /// quantity the paper's Figure 3 plots for the mobile device.
    pub fn sent_total(&self) -> u64 {
        self.sent_data
            + self.sent_control
            + self.sent_context
            + self.sent_repair
            + self.sent_overlay
    }
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the scenario.
    pub scenario: String,
    /// Number of participating devices.
    pub devices: usize,
    /// Whether adaptation was enabled.
    pub adaptive: bool,
    /// Simulated duration of the run, in milliseconds.
    pub duration_ms: u64,
    /// Discrete simulation events the runner processed (packets, timers,
    /// application sends) — wall-clock throughput is `events_processed`
    /// divided by the measured run time.
    pub events_processed: u64,
    /// *Data* (chat) packets lost in transit — the safety metric: a healthy
    /// reconfiguration protocol keeps this at zero even when the control
    /// plane is degraded.
    pub messages_lost: u64,
    /// Control-plane packets (commands, acks, heartbeats, context
    /// publications) lost in transit.
    pub control_lost: u64,
    /// Packets (all classes) that were addressed to a node that was crashed
    /// at delivery time — in-flight traffic towards a dead member, kept out
    /// of `messages_lost` so the safety metric covers live members only.
    pub messages_lost_to_crashed: u64,
    /// Data-channel packets dropped by the runner's injected
    /// [`crate::Scenario::data_loss`] — the loss the epidemic repair pass
    /// masks. Kept out of `messages_lost`, which remains the live-link
    /// safety metric.
    pub data_dropped: u64,
    /// Packets (all classes, both directions) dropped because a node was
    /// partitioned ([`crate::Scenario::with_partition`]).
    pub partition_dropped: u64,
    /// Packets swallowed by injected faults (link flaps, one-way
    /// partitions — [`crate::Scenario::fault_schedule`]). Kept out of
    /// `messages_lost`, which remains the live-link safety metric.
    pub fault_dropped: u64,
    /// Packets the runner corrupted in flight (byte flips driven by the
    /// fault schedule). Each may surface as a decode error at the receiver;
    /// `total_errors() <= corrupted_packets` is the decode-hardening
    /// invariant fault sweeps assert.
    pub corrupted_packets: u64,
    /// Data-class packets shed at the bounded event queue's cap (drop-newest
    /// graceful degradation under overload; recoverable via gossip repair).
    /// Control-plane events are never shed.
    pub shed_packets: u64,
    /// Deepest the simulation event queue ever got. With the bounded queue
    /// active this stays at or near the cap even under sustained overload.
    pub max_queue_depth: u64,
    /// The wedge the progress detector caught, if any (`None` on healthy
    /// runs, and always `None` when the detector is disabled).
    pub wedge: Option<WedgeReport>,
    /// Per-node measurements, in node-id order.
    pub nodes: Vec<NodeReport>,
}

impl RunReport {
    /// The report of one node.
    pub fn node(&self, node: NodeId) -> Option<&NodeReport> {
        self.nodes.iter().find(|report| report.node == node)
    }

    /// Every mobile node's report.
    pub fn mobile_nodes(&self) -> impl Iterator<Item = &NodeReport> {
        self.nodes.iter().filter(|report| report.is_mobile)
    }

    /// Every fixed node's report.
    pub fn fixed_nodes(&self) -> impl Iterator<Item = &NodeReport> {
        self.nodes.iter().filter(|report| !report.is_mobile)
    }

    /// Total messages sent by the instrumented mobile node (the lowest-id
    /// mobile node), all classes included.
    pub fn measured_mobile_sent(&self) -> u64 {
        self.mobile_nodes()
            .map(NodeReport::sent_total)
            .next()
            .unwrap_or(0)
    }

    /// Total messages sent by the fixed nodes, all classes included.
    pub fn fixed_sent_total(&self) -> u64 {
        self.fixed_nodes().map(NodeReport::sent_total).sum()
    }

    /// Total chat messages delivered to applications across all nodes.
    pub fn total_app_deliveries(&self) -> u64 {
        self.nodes.iter().map(|report| report.app_deliveries).sum()
    }

    /// Total reconfigurations applied across all nodes.
    pub fn total_reconfigurations(&self) -> u64 {
        self.nodes
            .iter()
            .map(|report| report.reconfigurations)
            .sum()
    }

    /// Sum of processing errors across all nodes (expected to be zero).
    pub fn total_errors(&self) -> u64 {
        self.nodes.iter().map(|report| report.errors).sum()
    }

    /// Reconfiguration-latency notifications produced by the coordinator.
    pub fn reconfiguration_notices(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .flat_map(|report| report.notifications.iter())
            .filter(|text| text.contains("reconfiguration"))
            .map(String::as_str)
            .collect()
    }

    /// Every completed reconfiguration round, across all coordinators, in
    /// epoch order.
    pub fn completed_rounds(&self) -> Vec<&RoundReport> {
        let mut rounds: Vec<&RoundReport> = self
            .nodes
            .iter()
            .flat_map(|report| report.rounds.iter())
            .collect();
        rounds.sort_by_key(|round| round.epoch);
        rounds
    }

    /// Simulated time by which *every* node's context store covered the
    /// whole membership, or `None` while any node is still missing context —
    /// the dissemination convergence metric of the gossip control plane.
    pub fn context_convergence_ms(&self) -> Option<u64> {
        self.nodes
            .iter()
            .map(|node| node.context_converged_ms)
            .collect::<Option<Vec<u64>>>()
            .and_then(|times| times.into_iter().max())
    }

    /// Epidemic delivery coverage of a many-to-many chat: total application
    /// deliveries over the expected count (`messages × (receivers − 1)` per
    /// sender — nodes do not self-deliver). Deliberately *not* clamped: a
    /// value above 1.0 means duplicate deliveries reached the application,
    /// which is as much a delivery-guarantee violation as a gap — callers
    /// assert both sides. Meaningful for crash-free runs on any multicast
    /// stack.
    pub fn delivery_coverage(&self, senders: usize, messages_per_sender: u64) -> f64 {
        let expected = senders as u64 * messages_per_sender * (self.devices as u64 - 1);
        if expected == 0 {
            return 1.0;
        }
        self.total_app_deliveries() as f64 / expected as f64
    }

    /// Sum of the per-node gossip repair counters (zeros when no node ended
    /// on an epidemic stack).
    pub fn gossip_totals(&self) -> GossipReport {
        let mut totals = GossipReport::default();
        for gossip in self.nodes.iter().filter_map(|node| node.gossip.as_ref()) {
            totals.forwarded += gossip.forwarded;
            totals.duplicates += gossip.duplicates;
            totals.repair_digests += gossip.repair_digests;
            totals.repair_pulls += gossip.repair_pulls;
            totals.repair_pulled_seqs += gossip.repair_pulled_seqs;
            totals.repair_pushes += gossip.repair_pushes;
            totals.repaired_deliveries += gossip.repaired_deliveries;
            totals.late_duplicates += gossip.late_duplicates;
            totals.deferred_pushes += gossip.deferred_pushes;
            totals.outbox_shed += gossip.outbox_shed;
            totals.floor_escalations += gossip.floor_escalations;
            totals.rate_limited_pushes += gossip.rate_limited_pushes;
        }
        totals
    }

    /// Sum of the per-node wire-byte breakdowns — the run's cost profile by
    /// component.
    pub fn wire_bytes_totals(&self) -> WireBytes {
        let mut totals = WireBytes::default();
        for node in &self.nodes {
            totals.add(&node.wire_bytes);
        }
        totals
    }

    /// Total targeted snapshot catch-ups completed across all nodes.
    pub fn total_catchups(&self) -> u64 {
        self.nodes.iter().map(|node| node.catchups).sum()
    }

    /// Every completed rejoin, in node order.
    pub fn rejoins(&self) -> Vec<(NodeId, &RejoinReport)> {
        self.nodes
            .iter()
            .filter_map(|node| node.rejoin.as_ref().map(|rejoin| (node.node, rejoin)))
            .collect()
    }

    /// Total command retransmissions across all completed rounds.
    pub fn total_retransmits(&self) -> u64 {
        self.completed_rounds()
            .iter()
            .map(|round| round.retransmits)
            .sum()
    }

    /// Renders a fixed-width table of the per-node counters, suitable for
    /// printing from examples and benches.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scenario: {} ({} devices, adaptive: {})\n",
            self.scenario, self.devices, self.adaptive
        ));
        out.push_str(&format!(
            "duration: {:.1}s   lost data packets: {}   lost control packets: {}\n",
            self.duration_ms as f64 / 1000.0,
            self.messages_lost,
            self.control_lost
        ));
        out.push_str(
            "node   kind    sent-data  sent-ctrl  sent-ctx  sent-total  delivered  stack\n",
        );
        for node in &self.nodes {
            out.push_str(&format!(
                "{:<6} {:<7} {:>9}  {:>9}  {:>8}  {:>10}  {:>9}  {}\n",
                node.node.to_string(),
                if node.is_mobile { "mobile" } else { "fixed" },
                node.sent_data,
                node.sent_control,
                node.sent_context,
                node.sent_total(),
                node.app_deliveries,
                node.final_stack,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u32, mobile: bool, data: u64, control: u64) -> NodeReport {
        NodeReport {
            node: NodeId(id),
            is_mobile: mobile,
            sent_data: data,
            sent_control: control,
            sent_context: 1,
            sent_repair: 0,
            sent_overlay: 0,
            received_total: 0,
            bytes_sent: 0,
            wire_bytes: WireBytes {
                data: 100,
                control: 20,
                context: 4,
                repair: 8,
                overlay: 16,
            },
            energy_joules: 0.0,
            battery_fraction: 1.0,
            app_deliveries: 5,
            view_changes: 1,
            final_stack: "best-effort".into(),
            reconfigurations: 0,
            notifications: vec!["reconfiguration to `x` completed across 2 nodes in 3 ms".into()],
            rounds: vec![RoundReport {
                coordinator: NodeId(id),
                stack: "x".into(),
                epoch: u64::from(id) + 1,
                latency_ms: 3,
                retransmits: u64::from(id),
                nodes: 2,
            }],
            errors: 0,
            context_converged_ms: Some(u64::from(id) * 100),
            min_view_members: Some(2),
            restarts: 0,
            rejoin: None,
            catchups: 0,
            buffer_shed: 0,
            gossip: Some(GossipReport {
                forwarded: 10,
                duplicates: 2,
                repair_digests: 3,
                repair_pulls: 1,
                repair_pulled_seqs: 2,
                repair_pushes: 1,
                repaired_deliveries: 1,
                late_duplicates: 0,
                deferred_pushes: 4,
                outbox_shed: 0,
                floor_escalations: 0,
                rate_limited_pushes: 1,
            }),
        }
    }

    fn report() -> RunReport {
        RunReport {
            scenario: "test".into(),
            devices: 2,
            adaptive: true,
            duration_ms: 1000,
            events_processed: 42,
            messages_lost: 0,
            control_lost: 4,
            messages_lost_to_crashed: 0,
            data_dropped: 0,
            partition_dropped: 0,
            fault_dropped: 0,
            corrupted_packets: 0,
            shed_packets: 0,
            max_queue_depth: 0,
            wedge: None,
            nodes: vec![node(0, false, 10, 2), node(1, true, 4, 1)],
        }
    }

    #[test]
    fn aggregates_are_computed_over_the_right_nodes() {
        let report = report();
        assert_eq!(report.measured_mobile_sent(), 6);
        assert_eq!(report.fixed_sent_total(), 13);
        assert_eq!(report.total_app_deliveries(), 10);
        assert_eq!(report.total_errors(), 0);
        assert_eq!(report.node(NodeId(1)).unwrap().sent_total(), 6);
        assert_eq!(report.mobile_nodes().count(), 1);
        assert_eq!(report.fixed_nodes().count(), 1);
        assert_eq!(report.reconfiguration_notices().len(), 2);
        let rounds = report.completed_rounds();
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].epoch, 1, "rounds come out in epoch order");
        assert_eq!(report.total_retransmits(), 1);
    }

    #[test]
    fn gossip_totals_and_coverage_aggregate() {
        let report = report();
        let totals = report.gossip_totals();
        assert_eq!(totals.forwarded, 20);
        assert_eq!(totals.repaired_deliveries, 2);
        assert_eq!(totals.deferred_pushes, 8);
        assert_eq!(totals.rate_limited_pushes, 2);
        // 2 devices, 10 total deliveries: a ratio, unclamped — over-delivery
        // (duplicates reaching the app) must be visible, not masked.
        assert_eq!(report.delivery_coverage(2, 5), 1.0);
        assert_eq!(report.delivery_coverage(1, 5), 2.0, "over-delivery shows");
        assert!(report.delivery_coverage(3, 5) < 1.0);
        assert_eq!(report.delivery_coverage(0, 5), 1.0, "degenerate workload");
    }

    #[test]
    fn wire_bytes_break_down_by_component() {
        let report = report();
        let totals = report.wire_bytes_totals();
        assert_eq!(totals.data, 200);
        assert_eq!(totals.control, 40);
        assert_eq!(totals.context, 8);
        assert_eq!(totals.repair, 16);
        assert_eq!(totals.overlay, 32);
        assert_eq!(totals.total(), 296);
    }

    #[test]
    fn context_convergence_needs_every_node() {
        let mut report = report();
        assert_eq!(
            report.context_convergence_ms(),
            Some(100),
            "the slowest node's coverage time is the group's"
        );
        report.nodes[1].context_converged_ms = None;
        assert_eq!(report.context_convergence_ms(), None);
    }

    #[test]
    fn table_rendering_mentions_every_node() {
        let table = report().to_table();
        assert!(table.contains("n0"));
        assert!(table.contains("n1"));
        assert!(table.contains("mobile"));
        assert!(table.contains("best-effort"));
    }
}
