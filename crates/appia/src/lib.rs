//! # morpheus-appia
//!
//! A modular protocol composition and execution kernel, modelled after the
//! Appia system used by the Morpheus framework (Mocito et al., 2005).
//!
//! The crate provides the abstractions the paper relies on:
//!
//! * **Layers** ([`layer::Layer`]) — micro-protocols that declare which event
//!   types they accept, provide and require.
//! * **Sessions** ([`session::Session`]) — per-channel (or shared) state of a
//!   layer, receiving events through a handler.
//! * **QoS** ([`qos::Qos`]) — an ordered composition of layers describing a
//!   quality of service.
//! * **Channels** ([`channel::Channel`]) — instantiations of a QoS with a
//!   concrete stack of sessions. Event routes are computed per event type and
//!   cached, which is Appia's "automatic optimisation of the flow of events".
//! * **Kernel** ([`kernel::Kernel`]) — the single-threaded event scheduler
//!   that owns channels, processes events, (de)serialises packets and applies
//!   run-time reconfiguration ([`kernel::Kernel::replace_channel`]).
//! * **Declarative channel descriptions** ([`config`]) — the AppiaXML
//!   analogue used by the Morpheus Core subsystem to ship stack
//!   configurations to remote nodes.
//!
//! The kernel is deliberately runtime-agnostic: all interaction with the
//! outside world (clock, timers, network, application delivery) goes through
//! the [`platform::Platform`] trait, which the simulation testbed implements.

#![forbid(unsafe_code)]

pub mod channel;
pub mod config;
pub mod error;
pub mod event;
pub mod events;
pub mod intern;
pub mod kernel;
pub mod layer;
pub mod layers;
pub mod message;
pub mod platform;
pub mod qos;
pub mod registry;
pub mod session;
pub mod testing;
pub mod timer;
pub mod wire;

pub use channel::{Channel, ChannelId, MAX_STACK_DEPTH};
pub use error::AppiaError;
pub use event::{Category, Dest, Direction, Event, EventPayload, EventSpec, SendHeader, Sendable};
pub use events::{ChannelClose, ChannelInit, DataEvent, DebugEvent, TimerExpired};
pub use intern::Name;
pub use kernel::Kernel;
pub use layer::{Layer, LayerParams};
pub use message::Message;
pub use platform::{
    AppDelivery, DeliveryKind, DeviceClass, InPacket, NodeId, NodeProfile, OutPacket, PacketClass,
    PacketDest, Platform, ReconfigRequest, TestPlatform,
};
pub use qos::Qos;
pub use registry::{EventFactoryRegistry, LayerRegistry};
pub use session::{Session, SessionRef};
pub use timer::TimerKey;
pub use wire::{Wire, WireError, WireReader, WireWriter};
