//! Quality-of-service definitions: ordered compositions of layers.

use std::collections::BTreeSet;

use crate::error::{AppiaError, Result};
use crate::layer::LayerRef;

/// Event type names the kernel itself provides to every channel.
const KERNEL_PROVIDED: &[&str] = &["ChannelInit", "ChannelClose", "TimerExpired", "DataEvent"];

/// An ordered composition of layers describing a quality of service.
///
/// The composition is ordered bottom-up: `layers()[0]` is the layer closest
/// to the network, the last element is the layer closest to the application.
#[derive(Clone)]
pub struct Qos {
    name: String,
    layers: Vec<LayerRef>,
}

impl Qos {
    /// Creates a QoS from an ordered (bottom-up) list of layers.
    pub fn new(name: impl Into<String>, layers: Vec<LayerRef>) -> Self {
        Self {
            name: name.into(),
            layers,
        }
    }

    /// Name of the QoS.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers, bottom-up.
    pub fn layers(&self) -> &[LayerRef] {
        &self.layers
    }

    /// Number of layers in the composition.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the composition has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Names of the layers, bottom-up.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers
            .iter()
            .map(|layer| layer.name().to_string())
            .collect()
    }

    /// Validates the composition.
    ///
    /// The stack must be non-empty, layer names must be unique within the
    /// stack, and every event type a layer requires must be provided either
    /// by another layer in the stack or by the kernel itself.
    pub fn validate(&self) -> Result<()> {
        if self.layers.is_empty() {
            return Err(AppiaError::InvalidComposition(format!(
                "QoS `{}` has no layers",
                self.name
            )));
        }

        let mut seen = BTreeSet::new();
        for layer in &self.layers {
            if !seen.insert(layer.name().to_string()) {
                return Err(AppiaError::InvalidComposition(format!(
                    "QoS `{}` contains layer `{}` more than once",
                    self.name,
                    layer.name()
                )));
            }
        }

        let mut provided: BTreeSet<&str> = KERNEL_PROVIDED.iter().copied().collect();
        for layer in &self.layers {
            for event in layer.provided_events() {
                provided.insert(event);
            }
        }
        for layer in &self.layers {
            for required in layer.required_events() {
                if !provided.contains(required) {
                    return Err(AppiaError::InvalidComposition(format!(
                        "QoS `{}`: layer `{}` requires event `{}` which no layer provides",
                        self.name,
                        layer.name(),
                        required
                    )));
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Qos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Qos")
            .field("name", &self.name)
            .field("layers", &self.layer_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use super::*;
    use crate::event::EventSpec;
    use crate::layer::{Layer, LayerParams};
    use crate::session::Session;

    struct FakeLayer {
        name: &'static str,
        provides: Vec<&'static str>,
        requires: Vec<&'static str>,
    }

    struct FakeSession(&'static str);

    impl Session for FakeSession {
        fn layer_name(&self) -> &str {
            self.0
        }

        fn handle(
            &mut self,
            _event: crate::event::Event,
            _ctx: &mut crate::kernel::EventContext<'_>,
        ) {
        }
    }

    impl Layer for FakeLayer {
        fn name(&self) -> &str {
            self.name
        }

        fn accepted_events(&self) -> Vec<EventSpec> {
            vec![EventSpec::All]
        }

        fn provided_events(&self) -> Vec<&'static str> {
            self.provides.clone()
        }

        fn required_events(&self) -> Vec<&'static str> {
            self.requires.clone()
        }

        fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
            Box::new(FakeSession(self.name))
        }
    }

    fn layer(
        name: &'static str,
        provides: Vec<&'static str>,
        requires: Vec<&'static str>,
    ) -> LayerRef {
        Rc::new(FakeLayer {
            name,
            provides,
            requires,
        })
    }

    #[test]
    fn valid_composition_passes() {
        let qos = Qos::new(
            "reliable",
            vec![
                layer("net", vec!["Packet"], vec![]),
                layer("retx", vec!["Nack"], vec!["Packet"]),
                layer("app", vec![], vec!["DataEvent"]),
            ],
        );
        assert!(qos.validate().is_ok());
        assert_eq!(qos.layer_names(), vec!["net", "retx", "app"]);
        assert_eq!(qos.len(), 3);
        assert!(!qos.is_empty());
    }

    #[test]
    fn empty_composition_is_rejected() {
        let qos = Qos::new("empty", vec![]);
        assert!(matches!(
            qos.validate(),
            Err(AppiaError::InvalidComposition(_))
        ));
    }

    #[test]
    fn duplicate_layers_are_rejected() {
        let qos = Qos::new(
            "dup",
            vec![layer("x", vec![], vec![]), layer("x", vec![], vec![])],
        );
        assert!(matches!(
            qos.validate(),
            Err(AppiaError::InvalidComposition(_))
        ));
    }

    #[test]
    fn missing_required_event_is_rejected() {
        let qos = Qos::new("broken", vec![layer("top", vec![], vec!["ViewChange"])]);
        let err = qos.validate().unwrap_err();
        assert!(err.to_string().contains("ViewChange"));
    }
}
