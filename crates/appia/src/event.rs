//! Typed events flowing through a channel's session stack.
//!
//! Events are the only way sessions communicate with each other. Each event
//! carries a direction ([`Direction::Up`] towards the application or
//! [`Direction::Down`] towards the network) and a typed payload implementing
//! [`EventPayload`]. Layers declare the payload types they are interested in
//! ([`EventSpec`]) and the channel routes each event only through the
//! interested sessions, caching the computed route per payload type.
//!
//! Payloads that must cross the network additionally implement [`Sendable`]:
//! they carry a [`SendHeader`] (source, destination, accounting class) and a
//! [`crate::message::Message`] holding the application payload and the
//! headers pushed by each layer.

use std::any::{Any, TypeId};
use std::fmt;

use crate::message::Message;
use crate::platform::{NodeId, PacketClass};
use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// Direction of travel of an event inside a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards the application (from the network upward).
    Up,
    /// Towards the network (from the application downward).
    Down,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Self {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

/// Broad categories of events, usable in accept specifications so a layer can
/// subscribe to a whole family of payload types at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Events that can be transmitted over the network.
    Sendable,
    /// Channel lifecycle events (init / close).
    ChannelLifecycle,
    /// Timer expirations.
    Timer,
    /// Internal coordination events that never leave the node.
    Internal,
}

/// What payload types a layer wants to see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSpec {
    /// A specific concrete payload type.
    Type(TypeId),
    /// Every payload declaring the given category.
    Category(Category),
    /// Every event flowing through the channel.
    All,
}

impl EventSpec {
    /// Convenience constructor for a concrete payload type.
    pub fn of<T: EventPayload>() -> Self {
        EventSpec::Type(TypeId::of::<T>())
    }

    /// Whether a payload matches this specification.
    pub fn matches(&self, payload: &dyn EventPayload) -> bool {
        match self {
            EventSpec::Type(type_id) => payload.as_any().type_id() == *type_id,
            EventSpec::Category(category) => payload.categories().contains(category),
            EventSpec::All => true,
        }
    }
}

/// Addressing of a sendable event before it reaches the network driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dest {
    /// A single destination node.
    Node(NodeId),
    /// An explicit list of destination nodes (one point-to-point packet each).
    Nodes(Vec<NodeId>),
    /// The whole group; a multicast layer is expected to resolve this into
    /// point-to-point sends, a relay or native multicast before the event
    /// reaches the network driver.
    Group,
}

impl Dest {
    /// Number of point-to-point transmissions this destination implies, if
    /// already resolved.
    pub fn fanout(&self) -> Option<usize> {
        match self {
            Dest::Node(_) => Some(1),
            Dest::Nodes(nodes) => Some(nodes.len()),
            Dest::Group => None,
        }
    }
}

/// Header shared by every sendable event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendHeader {
    /// The originating node.
    pub source: NodeId,
    /// Where the event should be delivered.
    pub dest: Dest,
    /// Accounting class of the resulting packets.
    pub class: PacketClass,
}

impl SendHeader {
    /// Creates a header for a group-addressed event.
    pub fn to_group(source: NodeId, class: PacketClass) -> Self {
        Self {
            source,
            dest: Dest::Group,
            class,
        }
    }

    /// Creates a header addressed to a single node.
    pub fn to_node(source: NodeId, dest: NodeId, class: PacketClass) -> Self {
        Self {
            source,
            dest: Dest::Node(dest),
            class,
        }
    }
}

/// Wire representation of a [`SendHeader`]. Only the information the remote
/// side needs is serialised: the source and the accounting class. The
/// destination is implicit in the packet addressing.
impl Wire for SendHeader {
    fn encode(&self, w: &mut WireWriter) {
        self.source.encode(w);
        self.class.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let source = NodeId::decode(r)?;
        let class = PacketClass::decode(r)?;
        Ok(Self {
            source,
            dest: Dest::Group,
            class,
        })
    }
}

/// Behaviour shared by payloads that can be serialised onto the network.
pub trait Sendable: EventPayload {
    /// The addressing and accounting header.
    fn header(&self) -> &SendHeader;

    /// Mutable access to the addressing and accounting header.
    fn header_mut(&mut self) -> &mut SendHeader;

    /// The carried message (payload plus layer headers).
    fn message(&self) -> &Message;

    /// Mutable access to the carried message.
    fn message_mut(&mut self) -> &mut Message;

    /// The name used to reconstruct the payload type on the receiving node.
    fn wire_name(&self) -> &'static str {
        self.type_name()
    }
}

/// A typed event payload.
pub trait EventPayload: Any + fmt::Debug {
    /// Human-readable, unique name of the payload type.
    fn type_name(&self) -> &'static str;

    /// Categories this payload belongs to.
    fn categories(&self) -> &'static [Category] {
        &[]
    }

    /// Upcast to [`Any`] for downcasting to the concrete type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast to [`Any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Consuming upcast to [`Any`], used to recover the concrete type.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;

    /// Returns the sendable view of the payload, if it is sendable.
    fn as_sendable(&self) -> Option<&dyn Sendable> {
        None
    }

    /// Returns the mutable sendable view of the payload, if it is sendable.
    fn as_sendable_mut(&mut self) -> Option<&mut dyn Sendable> {
        None
    }
}

/// An event travelling through a channel.
#[derive(Debug)]
pub struct Event {
    /// Direction of travel.
    pub direction: Direction,
    /// The typed payload.
    pub payload: Box<dyn EventPayload>,
}

impl Event {
    /// Creates an event travelling in the given direction.
    pub fn new(direction: Direction, payload: impl EventPayload) -> Self {
        Self {
            direction,
            payload: Box::new(payload),
        }
    }

    /// Creates an upward-travelling event.
    pub fn up(payload: impl EventPayload) -> Self {
        Self::new(Direction::Up, payload)
    }

    /// Creates a downward-travelling event.
    pub fn down(payload: impl EventPayload) -> Self {
        Self::new(Direction::Down, payload)
    }

    /// Creates an event from an already boxed payload.
    pub fn from_boxed(direction: Direction, payload: Box<dyn EventPayload>) -> Self {
        Self { direction, payload }
    }

    /// Whether the payload is of concrete type `T`.
    pub fn is<T: EventPayload>(&self) -> bool {
        self.payload.as_any().is::<T>()
    }

    /// Borrows the payload as `T` if it has that concrete type.
    pub fn get<T: EventPayload>(&self) -> Option<&T> {
        self.payload.as_any().downcast_ref::<T>()
    }

    /// Mutably borrows the payload as `T` if it has that concrete type.
    pub fn get_mut<T: EventPayload>(&mut self) -> Option<&mut T> {
        self.payload.as_any_mut().downcast_mut::<T>()
    }

    /// Consumes the event and returns the payload as `T`, or gives the event
    /// back unchanged if the payload has a different type.
    pub fn into_payload<T: EventPayload>(self) -> Result<(Direction, T), Event> {
        if self.payload.as_any().is::<T>() {
            let direction = self.direction;
            let concrete: Box<T> = self
                .payload
                .into_any()
                .downcast()
                .expect("concrete type checked before downcast");
            Ok((direction, *concrete))
        } else {
            Err(self)
        }
    }

    /// Name of the payload type.
    pub fn type_name(&self) -> &'static str {
        self.payload.type_name()
    }

    /// Whether the payload is sendable.
    pub fn is_sendable(&self) -> bool {
        self.payload.as_sendable().is_some()
    }
}

/// Declares a non-sendable (node-local) event payload type.
///
/// ```
/// use morpheus_appia::internal_event;
///
/// internal_event! {
///     /// Tells lower layers a new view was installed.
///     pub struct ViewInstalled {
///         pub view_id: u64,
///     }
///     categories: [Internal]
/// }
/// ```
#[macro_export]
macro_rules! internal_event {
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $($(#[$fmeta:meta])* pub $field:ident : $ty:ty),* $(,)?
        }
        categories: [$($cat:ident),* $(,)?]
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $name {
            $($(#[$fmeta])* pub $field : $ty),*
        }

        impl $crate::event::EventPayload for $name {
            fn type_name(&self) -> &'static str {
                stringify!($name)
            }

            fn categories(&self) -> &'static [$crate::event::Category] {
                &[$($crate::event::Category::$cat),*]
            }

            fn as_any(&self) -> &dyn std::any::Any {
                self
            }

            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
    };
}

/// Declares a sendable event payload type carrying a [`SendHeader`] and a
/// [`Message`], and provides the wire factory used to reconstruct it on the
/// receiving node.
///
/// ```
/// use morpheus_appia::sendable_event;
///
/// sendable_event! {
///     /// A heartbeat used by the failure detector.
///     pub struct Heartbeat, class: Control
/// }
/// ```
#[macro_export]
macro_rules! sendable_event {
    (
        $(#[$meta:meta])*
        pub struct $name:ident, class: $class:ident
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $name {
            /// Addressing and accounting header.
            pub header: $crate::event::SendHeader,
            /// Carried message (payload plus layer headers).
            pub message: $crate::message::Message,
        }

        impl $name {
            /// Name used on the wire to reconstruct this payload type.
            pub const WIRE_NAME: &'static str = stringify!($name);

            /// Creates a new event payload with the given addressing.
            pub fn new(
                source: $crate::platform::NodeId,
                dest: $crate::event::Dest,
                message: $crate::message::Message,
            ) -> Self {
                Self {
                    header: $crate::event::SendHeader {
                        source,
                        dest,
                        class: $crate::platform::PacketClass::$class,
                    },
                    message,
                }
            }

            /// Creates a group-addressed event payload.
            pub fn to_group(
                source: $crate::platform::NodeId,
                message: $crate::message::Message,
            ) -> Self {
                Self::new(source, $crate::event::Dest::Group, message)
            }

            /// Registers the wire factory for this payload type.
            pub fn register(factories: &mut $crate::registry::EventFactoryRegistry) {
                factories.register(Self::WIRE_NAME, |header, message| {
                    Box::new(Self { header, message })
                });
            }
        }

        impl $crate::event::EventPayload for $name {
            fn type_name(&self) -> &'static str {
                Self::WIRE_NAME
            }

            fn categories(&self) -> &'static [$crate::event::Category] {
                &[$crate::event::Category::Sendable]
            }

            fn as_any(&self) -> &dyn std::any::Any {
                self
            }

            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }

            fn as_sendable(&self) -> Option<&dyn $crate::event::Sendable> {
                Some(self)
            }

            fn as_sendable_mut(&mut self) -> Option<&mut dyn $crate::event::Sendable> {
                Some(self)
            }
        }

        impl $crate::event::Sendable for $name {
            fn header(&self) -> &$crate::event::SendHeader {
                &self.header
            }

            fn header_mut(&mut self) -> &mut $crate::event::SendHeader {
                &mut self.header
            }

            fn message(&self) -> &$crate::message::Message {
                &self.message
            }

            fn message_mut(&mut self) -> &mut $crate::message::Message {
                &mut self.message
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{ChannelInit, DataEvent};

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Up.reverse(), Direction::Down);
        assert_eq!(Direction::Down.reverse(), Direction::Up);
    }

    #[test]
    fn event_downcasting() {
        let event = Event::down(DataEvent::to_group(
            NodeId(1),
            Message::with_payload(&b"x"[..]),
        ));
        assert!(event.is::<DataEvent>());
        assert!(!event.is::<ChannelInit>());
        assert!(event.get::<DataEvent>().is_some());
        assert!(event.is_sendable());
        assert_eq!(event.type_name(), "DataEvent");
    }

    #[test]
    fn event_into_payload_success_and_failure() {
        let event = Event::down(DataEvent::to_group(NodeId(1), Message::new()));
        let (direction, data) = event.into_payload::<DataEvent>().unwrap();
        assert_eq!(direction, Direction::Down);
        assert_eq!(data.header.source, NodeId(1));

        let event = Event::up(ChannelInit {});
        assert!(event.into_payload::<DataEvent>().is_err());
    }

    #[test]
    fn event_spec_matching() {
        let data = DataEvent::to_group(NodeId(1), Message::new());
        let init = ChannelInit {};

        assert!(EventSpec::of::<DataEvent>().matches(&data));
        assert!(!EventSpec::of::<DataEvent>().matches(&init));
        assert!(EventSpec::Category(Category::Sendable).matches(&data));
        assert!(!EventSpec::Category(Category::Sendable).matches(&init));
        assert!(EventSpec::All.matches(&data));
        assert!(EventSpec::All.matches(&init));
    }

    #[test]
    fn dest_fanout() {
        assert_eq!(Dest::Node(NodeId(1)).fanout(), Some(1));
        assert_eq!(Dest::Nodes(vec![NodeId(1), NodeId(2)]).fanout(), Some(2));
        assert_eq!(Dest::Group.fanout(), None);
    }

    #[test]
    fn send_header_wire_roundtrip_keeps_source_and_class() {
        let header = SendHeader::to_node(NodeId(3), NodeId(9), PacketClass::Control);
        let bytes = header.to_bytes();
        let decoded = SendHeader::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.source, NodeId(3));
        assert_eq!(decoded.class, PacketClass::Control);
        assert_eq!(decoded.dest, Dest::Group);
    }
}
