//! Sessions: the per-channel state of a layer.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::Event;
use crate::kernel::EventContext;

/// The per-channel (or shared, when two channels use the same session) state
/// of a layer, together with its event handler.
///
/// The handler *consumes* the event: to let it continue along its route the
/// session calls [`EventContext::forward`]; to inject new events it calls
/// [`EventContext::dispatch`]. Dropping the event without forwarding it stops
/// its propagation, which is how filtering layers absorb traffic.
pub trait Session {
    /// Name of the layer this session belongs to.
    fn layer_name(&self) -> &str;

    /// Handles one event.
    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>);

    /// Optional downcast hook: sessions that expose run-time statistics to
    /// the node runtime (e.g. the gossip layer's repair counters) return
    /// `Some(self)` here so callers holding a [`SessionRef`] can
    /// `downcast_ref` to the concrete type. The default hides the session.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Shared ownership handle for sessions.
///
/// The kernel is single-threaded, so interior mutability through `RefCell`
/// is sufficient; sessions shared between channels are simply the same
/// `SessionRef` appearing in both stacks.
pub type SessionRef = Rc<RefCell<Box<dyn Session>>>;

/// Wraps a boxed session in a shareable reference.
pub fn share(session: Box<dyn Session>) -> SessionRef {
    Rc::new(RefCell::new(session))
}
