//! Interned identifiers for the kernel hot path.
//!
//! Channel and layer names used to be `String`s cloned on every event hop,
//! which made name handling the dominant allocation source in the dispatch
//! loop. [`Name`] wraps the name in an `Rc<str>`: it is created once when a
//! channel is built and from then on every hand-off — into an
//! [`crate::kernel::EventContext`], an [`crate::platform::OutPacket`], an
//! [`crate::platform::AppDelivery`] or a timer record — is a reference-count
//! bump instead of a heap allocation.
//!
//! `Name` hashes and compares like the `str` it wraps (including a
//! `Borrow<str>` impl), so maps keyed by `Name` can be probed with plain
//! `&str` without allocating.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// An interned, cheaply cloneable identifier (channel or layer name).
#[derive(Clone)]
pub struct Name(Rc<str>);

impl Name {
    /// Interns the given text.
    pub fn new(text: impl AsRef<str>) -> Self {
        Name(Rc::from(text.as_ref()))
    }

    /// The name as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Name {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Interned names for the same channel/layer usually share the
        // allocation, making the pointer check settle most comparisons.
        Rc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Name {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with `str::hash` for `Borrow<str>`-keyed map lookups.
        self.0.hash(state);
    }
}

impl Default for Name {
    fn default() -> Self {
        Name(Rc::from(""))
    }
}

impl From<&str> for Name {
    fn from(text: &str) -> Self {
        Name::new(text)
    }
}

impl From<String> for Name {
    fn from(text: String) -> Self {
        Name(Rc::from(text))
    }
}

impl From<&String> for Name {
    fn from(text: &String) -> Self {
        Name::new(text)
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn clones_share_the_allocation() {
        let name = Name::new("data");
        let clone = name.clone();
        assert_eq!(name, clone);
        assert_eq!(name, "data");
        assert_eq!("data", name);
        assert_eq!(name, "data".to_string());
    }

    #[test]
    fn maps_keyed_by_name_are_probed_with_str() {
        let mut map: HashMap<Name, u32> = HashMap::new();
        map.insert(Name::new("ctrl"), 7);
        assert_eq!(map.get("ctrl"), Some(&7));
        assert_eq!(map.get("data"), None);
    }

    #[test]
    fn ordering_matches_str_ordering() {
        let mut names = vec![Name::new("b"), Name::new("a"), Name::new("c")];
        names.sort();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn display_and_debug_follow_str() {
        let name = Name::new("vsync");
        assert_eq!(name.to_string(), "vsync");
        assert_eq!(format!("{name:?}"), "\"vsync\"");
    }
}
