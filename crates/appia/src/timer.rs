//! Timer identification shared between the kernel and the platform.

use serde::{Deserialize, Serialize};

use crate::channel::ChannelId;

/// Identifies a one-shot timer armed by a session.
///
/// The platform only needs to hand the key back to
/// [`crate::kernel::Kernel::timer_expired`] when the timer fires; the kernel
/// keeps the association between the key and the session that requested it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimerKey {
    /// The channel the requesting session belongs to.
    pub channel: ChannelId,
    /// Kernel-assigned unique timer identifier.
    pub timer_id: u64,
}

impl TimerKey {
    /// Creates a timer key.
    pub fn new(channel: ChannelId, timer_id: u64) -> Self {
        Self { channel, timer_id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_compare_by_value() {
        let a = TimerKey::new(ChannelId(1), 7);
        let b = TimerKey::new(ChannelId(1), 7);
        let c = TimerKey::new(ChannelId(2), 7);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
