//! Registries mapping names to layers and to wire-level event factories.
//!
//! Channel descriptions refer to layers by name; packets refer to event
//! payload types by name. Both registries are populated at start-up (the
//! group communication suite registers its layers and events) and used by the
//! kernel when instantiating channels and when reconstructing events received
//! from the network.

use std::collections::HashMap;

use bytes::Bytes;

use crate::error::{AppiaError, Result};
use crate::event::{EventPayload, SendHeader, Sendable};
use crate::layer::{Layer, LayerRef};
use crate::message::Message;
use crate::wire::{Wire, WireReader, WireWriter};

/// Maps layer names to layer descriptions.
#[derive(Default)]
pub struct LayerRegistry {
    layers: HashMap<String, LayerRef>,
}

impl LayerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a layer under its own name, replacing any previous entry.
    pub fn register(&mut self, layer: impl Layer + 'static) {
        self.register_ref(std::rc::Rc::new(layer));
    }

    /// Registers an already shared layer reference.
    pub fn register_ref(&mut self, layer: LayerRef) {
        self.layers.insert(layer.name().to_string(), layer);
    }

    /// Looks a layer up by name.
    pub fn get(&self, name: &str) -> Result<LayerRef> {
        self.layers
            .get(name)
            .cloned()
            .ok_or_else(|| AppiaError::UnknownLayer(name.to_string()))
    }

    /// Whether a layer with the given name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.layers.contains_key(name)
    }

    /// Names of all registered layers, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.layers.keys().cloned().collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for LayerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayerRegistry")
            .field("layers", &self.names())
            .finish()
    }
}

/// Constructor taking the decoded send header and message and producing the
/// typed payload.
pub type EventFactory = fn(SendHeader, Message) -> Box<dyn EventPayload>;

/// Maps wire names of sendable event types to their factories.
#[derive(Default)]
pub struct EventFactoryRegistry {
    factories: HashMap<&'static str, EventFactory>,
}

impl EventFactoryRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory for the given wire name.
    pub fn register(&mut self, name: &'static str, factory: EventFactory) {
        self.factories.insert(name, factory);
    }

    /// Whether a factory exists for the given wire name.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Reconstructs a payload of the named type.
    pub fn create(
        &self,
        name: &str,
        header: SendHeader,
        message: Message,
    ) -> Result<Box<dyn EventPayload>> {
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| AppiaError::UnknownEventType(name.to_string()))?;
        Ok(factory(header, message))
    }

    /// Names of all registered event types, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.factories.keys().copied().collect();
        names.sort_unstable();
        names
    }
}

impl std::fmt::Debug for EventFactoryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventFactoryRegistry")
            .field("events", &self.names())
            .finish()
    }
}

/// Serialises a sendable event into the byte form carried by a packet:
/// `[wire name][send header][message]`.
pub fn encode_event(event: &dyn Sendable) -> Bytes {
    let mut w = WireWriter::with_capacity(64 + event.message().size());
    encode_event_body(&mut w, event);
    w.finish()
}

/// Serialises a sendable event into a reusable scratch writer, returning the
/// packet bytes as a split-off frame.
///
/// Unlike [`encode_event`] this does not allocate a fresh buffer per packet:
/// the scratch allocation is recycled once the packets split from it have
/// been consumed, which makes steady-state serialisation allocation-free.
/// The kernel owns one scratch writer and exposes this path to the network
/// driver through [`crate::kernel::EventContext::encode_sendable`].
pub fn encode_event_into(scratch: &mut WireWriter, event: &dyn Sendable) -> Bytes {
    scratch.reserve(64 + event.message().size());
    encode_event_body(scratch, event);
    scratch.split_frame()
}

fn encode_event_body(w: &mut WireWriter, event: &dyn Sendable) {
    w.put_str(event.wire_name());
    event.header().encode(w);
    event.message().encode(w);
}

/// Decodes the byte form produced by [`encode_event`] back into a typed
/// payload, using the factory registered for its wire name.
pub fn decode_event(
    factories: &EventFactoryRegistry,
    payload: &[u8],
) -> Result<Box<dyn EventPayload>> {
    let mut r = WireReader::new(payload);
    let name = r.get_str()?;
    let header = SendHeader::decode(&mut r)?;
    let message = Message::decode(&mut r)?;
    factories.create(&name, header, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Dest;
    use crate::events::DataEvent;
    use crate::platform::{NodeId, PacketClass};

    #[test]
    fn event_factory_roundtrip() {
        let mut factories = EventFactoryRegistry::new();
        DataEvent::register(&mut factories);
        assert!(factories.contains("DataEvent"));
        assert!(!factories.contains("Nope"));

        let mut message = Message::with_payload(&b"payload"[..]);
        message.push(&77u64);
        let event = DataEvent::new(NodeId(3), Dest::Node(NodeId(5)), message);

        let bytes = encode_event(&event);
        let decoded = decode_event(&factories, &bytes).unwrap();
        let data = decoded.as_any().downcast_ref::<DataEvent>().unwrap();
        assert_eq!(data.header.source, NodeId(3));
        assert_eq!(data.header.class, PacketClass::Data);
        assert_eq!(data.message.payload().as_ref(), b"payload");
        assert_eq!(data.message.peek::<u64>().unwrap(), 77);
    }

    #[test]
    fn unknown_event_type_is_reported() {
        let factories = EventFactoryRegistry::new();
        let event = DataEvent::to_group(NodeId(1), Message::new());
        let bytes = encode_event(&event);
        let err = decode_event(&factories, &bytes).unwrap_err();
        assert!(matches!(err, AppiaError::UnknownEventType(name) if name == "DataEvent"));
    }

    #[test]
    fn corrupted_packet_is_rejected() {
        let mut factories = EventFactoryRegistry::new();
        DataEvent::register(&mut factories);
        let err = decode_event(&factories, &[0xFF, 0x01]).unwrap_err();
        assert!(matches!(err, AppiaError::Wire(_)));
    }
}
