//! Standard events shipped with the kernel.
//!
//! Protocol suites define their own event types with the
//! [`crate::internal_event!`] and [`crate::sendable_event!`] macros; the
//! kernel itself only needs these few.

use crate::{internal_event, sendable_event};

sendable_event! {
    /// Application data travelling through a channel.
    ///
    /// Going down it is created by the application interface layer with a
    /// group destination; going up it is delivered to the application by the
    /// same layer.
    pub struct DataEvent, class: Data
}

internal_event! {
    /// Emitted bottom-up through a channel when it is created, so every
    /// session can initialise its state and arm periodic timers.
    pub struct ChannelInit {}
    categories: [ChannelLifecycle]
}

internal_event! {
    /// Emitted bottom-up through a channel right before it is torn down.
    pub struct ChannelClose {}
    categories: [ChannelLifecycle]
}

internal_event! {
    /// A one-shot timer armed by a session has fired.
    ///
    /// The `owner` field carries the layer name of the session that armed the
    /// timer; sessions ignore expirations they do not own. The name is
    /// interned, so creating the event from the kernel's timer record is a
    /// refcount bump (it still compares against `&str` layer constants).
    pub struct TimerExpired {
        /// Layer name of the session that armed the timer.
        pub owner: crate::intern::Name,
        /// Caller-chosen discriminator to tell multiple timers apart.
        pub tag: u32,
        /// Kernel-assigned identifier of the timer that fired.
        pub timer_id: u64,
    }
    categories: [Timer]
}

internal_event! {
    /// A free-form diagnostic event used by tests and debugging layers.
    pub struct DebugEvent {
        /// Arbitrary human-readable note.
        pub note: String,
    }
    categories: [Internal]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, EventPayload, Sendable};
    use crate::message::Message;
    use crate::platform::{NodeId, PacketClass};

    #[test]
    fn data_event_is_sendable_with_data_class() {
        let event = DataEvent::to_group(NodeId(4), Message::with_payload(&b"hi"[..]));
        assert_eq!(event.header.class, PacketClass::Data);
        assert_eq!(event.categories(), &[Category::Sendable]);
        assert_eq!(event.wire_name(), "DataEvent");
        assert_eq!(event.message().payload().as_ref(), b"hi");
    }

    #[test]
    fn lifecycle_events_have_expected_categories() {
        assert_eq!(ChannelInit {}.categories(), &[Category::ChannelLifecycle]);
        assert_eq!(ChannelClose {}.categories(), &[Category::ChannelLifecycle]);
        assert_eq!(
            TimerExpired {
                owner: "x".into(),
                tag: 0,
                timer_id: 1
            }
            .categories(),
            &[Category::Timer]
        );
    }

    #[test]
    fn debug_event_keeps_note() {
        let event = DebugEvent {
            note: "probe".into(),
        };
        assert_eq!(event.note, "probe");
        assert_eq!(event.type_name(), "DebugEvent");
    }
}
