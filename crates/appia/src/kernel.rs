//! The protocol execution kernel.
//!
//! The kernel owns every channel of one node, schedules events through the
//! session stacks, arms timers on behalf of sessions, serialises outgoing
//! events into packets and reconstructs incoming packets into typed events.
//! It also implements the primitive the Morpheus Core subsystem relies on for
//! run-time adaptation: [`Kernel::replace_channel`], which swaps a channel's
//! stack for a new configuration while preserving sessions that are shared or
//! carried over by name.
//!
//! ## Hot-path discipline
//!
//! The dispatch loop is allocation-free in steady state: channel and layer
//! names are interned [`Name`]s (cloning bumps a refcount), routing is a
//! bitmask scan (`Channel::next_hop`), and outgoing packets
//! are serialised into a kernel-owned scratch buffer whose allocation is
//! recycled once the packets produced from it have been consumed.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;

use crate::channel::{Channel, ChannelId, StackSlot, MAX_STACK_DEPTH};
use crate::config::ChannelConfig;
use crate::error::{AppiaError, Result};
use crate::event::{Direction, Event, Sendable};
use crate::events::{ChannelClose, ChannelInit, TimerExpired};
use crate::intern::Name;
use crate::layers;
use crate::platform::{
    AppDelivery, DeliveryKind, InPacket, NodeId, NodeProfile, OutPacket, PacketClass, PacketDest,
    Platform, ReconfigRequest,
};
use crate::qos::Qos;
use crate::registry::{decode_event, encode_event_into, EventFactoryRegistry, LayerRegistry};
use crate::session::{share, SessionRef};
use crate::timer::TimerKey;
use crate::wire::WireWriter;

/// An event waiting to be routed.
struct Pending {
    channel: ChannelId,
    /// Stack position of the session that already handled the event, or
    /// `None` when the event enters the channel from one of its ends.
    from: Option<usize>,
    event: Event,
}

/// Book-keeping for one armed timer.
#[derive(Debug, Clone)]
struct TimerRecord {
    channel: ChannelId,
    owner: Name,
    tag: u32,
}

#[derive(Debug, Default)]
struct TimerTable {
    next_id: u64,
    records: HashMap<u64, TimerRecord>,
}

/// The execution context handed to a session while it handles an event.
///
/// Everything a session may do — forwarding the event, creating new events,
/// arming timers, sending packets, delivering to the application — goes
/// through this context, which keeps sessions free of references to the
/// kernel itself.
pub struct EventContext<'a> {
    channel_id: ChannelId,
    channel_name: Name,
    layer_name: Name,
    session_index: usize,
    queue: &'a mut VecDeque<Pending>,
    timers: &'a mut TimerTable,
    scratch: &'a mut WireWriter,
    platform: &'a mut dyn Platform,
}

impl EventContext<'_> {
    /// The channel the current event belongs to.
    pub fn channel_id(&self) -> ChannelId {
        self.channel_id
    }

    /// Name of the channel the current event belongs to.
    pub fn channel_name(&self) -> &str {
        &self.channel_name
    }

    /// Name of the layer whose session is handling the event.
    pub fn layer_name(&self) -> &str {
        &self.layer_name
    }

    /// Position of the handling session in the stack (0 = bottom).
    pub fn stack_position(&self) -> usize {
        self.session_index
    }

    /// Current local time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.platform.now_ms()
    }

    /// Identifier of the local node.
    pub fn node_id(&self) -> NodeId {
        self.platform.node_id()
    }

    /// Snapshot of the local system context.
    pub fn profile(&self) -> NodeProfile {
        self.platform.profile()
    }

    /// A deterministic pseudo-random value from the platform.
    pub fn random_u64(&mut self) -> u64 {
        self.platform.random_u64()
    }

    /// Lets the event continue along its route from the current position.
    pub fn forward(&mut self, event: Event) {
        self.queue.push_back(Pending {
            channel: self.channel_id,
            from: Some(self.session_index),
            event,
        });
    }

    /// Injects a new event at the current stack position; it travels in its
    /// own direction starting from the next interested session.
    pub fn dispatch(&mut self, event: Event) {
        self.forward(event);
    }

    /// Injects a new event at the edge of the stack: upward events start at
    /// the bottom, downward events start at the top.
    pub fn dispatch_from_edge(&mut self, event: Event) {
        self.queue.push_back(Pending {
            channel: self.channel_id,
            from: None,
            event,
        });
    }

    /// Injects an event into *another* channel of the same kernel, entering
    /// at the edge. Used by sessions shared between channels and by control
    /// channels steering data channels.
    pub fn dispatch_to_channel(&mut self, channel: ChannelId, event: Event) {
        self.queue.push_back(Pending {
            channel,
            from: None,
            event,
        });
    }

    /// Arms a one-shot timer owned by the handling session's layer.
    ///
    /// When it fires, a [`TimerExpired`] event with the layer name as `owner`
    /// and the given `tag` travels up the channel. Returns the timer id.
    pub fn set_timer(&mut self, delay_ms: u64, tag: u32) -> u64 {
        self.timers.next_id += 1;
        let timer_id = self.timers.next_id;
        self.timers.records.insert(
            timer_id,
            TimerRecord {
                channel: self.channel_id,
                owner: self.layer_name.clone(),
                tag,
            },
        );
        self.platform
            .set_timer(delay_ms, TimerKey::new(self.channel_id, timer_id));
        timer_id
    }

    /// Cancels a previously armed timer.
    pub fn cancel_timer(&mut self, timer_id: u64) {
        if self.timers.records.remove(&timer_id).is_some() {
            self.platform
                .cancel_timer(TimerKey::new(self.channel_id, timer_id));
        }
    }

    /// Serialises a sendable event into the kernel's reusable scratch
    /// buffer and returns the packet bytes.
    ///
    /// The returned [`Bytes`] views a region of the scratch allocation; once
    /// every packet produced from it has been dropped the allocation is
    /// recycled, so steady-state serialisation does not allocate.
    pub fn encode_sendable(&mut self, event: &dyn Sendable) -> Bytes {
        encode_event_into(self.scratch, event)
    }

    /// Sends a raw packet. Intended for the network-driver layer at the
    /// bottom of the stack; higher layers should forward sendable events
    /// downward instead.
    pub fn send_packet(&mut self, dest: PacketDest, class: PacketClass, payload: Bytes) {
        let packet = OutPacket {
            from: self.platform.node_id(),
            dest,
            class,
            channel: self.channel_name.clone(),
            payload,
        };
        self.platform.send(packet);
    }

    /// Delivers data or a notification to the local application.
    pub fn deliver(&mut self, kind: DeliveryKind) {
        let delivery = AppDelivery {
            channel: self.channel_name.clone(),
            kind,
        };
        self.platform.deliver(delivery);
    }

    /// Asks the node runtime to replace a channel's stack. The request is
    /// recorded by the platform and applied by the runtime after event
    /// processing finishes (a session cannot mutate the kernel it is being
    /// called from).
    pub fn request_reconfiguration(&mut self, request: ReconfigRequest) {
        self.platform.request_reconfiguration(request);
    }
}

/// The single-threaded protocol execution kernel of one node.
pub struct Kernel {
    layers: LayerRegistry,
    events: EventFactoryRegistry,
    channels: HashMap<ChannelId, Channel>,
    names: HashMap<Name, ChannelId>,
    shared_sessions: HashMap<String, SessionRef>,
    queue: VecDeque<Pending>,
    timers: TimerTable,
    /// Reusable serialisation buffer for outgoing packets.
    scratch: WireWriter,
    next_channel: u32,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Creates a kernel with the built-in layers and event types registered.
    pub fn new() -> Self {
        let mut kernel = Self {
            layers: LayerRegistry::new(),
            events: EventFactoryRegistry::new(),
            channels: HashMap::new(),
            names: HashMap::new(),
            shared_sessions: HashMap::new(),
            queue: VecDeque::new(),
            timers: TimerTable::default(),
            scratch: WireWriter::new(),
            next_channel: 0,
        };
        layers::register_builtin(&mut kernel.layers);
        crate::events::DataEvent::register(&mut kernel.events);
        kernel
    }

    /// The layer registry (used by protocol suites to add their layers).
    pub fn layers_mut(&mut self) -> &mut LayerRegistry {
        &mut self.layers
    }

    /// The layer registry, read-only.
    pub fn layers(&self) -> &LayerRegistry {
        &self.layers
    }

    /// The event factory registry (used by protocol suites to add their
    /// sendable event types).
    pub fn events_mut(&mut self) -> &mut EventFactoryRegistry {
        &mut self.events
    }

    /// The event factory registry, read-only.
    pub fn events(&self) -> &EventFactoryRegistry {
        &self.events
    }

    /// Identifier of the channel with the given name, if any.
    pub fn channel_id(&self, name: &str) -> Option<ChannelId> {
        self.names.get(name).copied()
    }

    /// The channel with the given identifier, if any.
    pub fn channel(&self, id: ChannelId) -> Option<&Channel> {
        self.channels.get(&id)
    }

    /// The channel with the given name, if any.
    pub fn channel_by_name(&self, name: &str) -> Option<&Channel> {
        self.channel_id(name).and_then(|id| self.channels.get(&id))
    }

    /// Names of all existing channels, sorted.
    pub fn channel_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .names
            .keys()
            .map(|name| name.as_str().to_string())
            .collect();
        names.sort();
        names
    }

    /// Number of events currently queued for processing.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn build_slots(&mut self, config: &ChannelConfig) -> Result<Vec<StackSlot>> {
        if config.layers.len() > MAX_STACK_DEPTH {
            return Err(AppiaError::InvalidComposition(format!(
                "channel `{}` declares {} layers, more than the supported maximum of {MAX_STACK_DEPTH}",
                config.name,
                config.layers.len()
            )));
        }
        // Validate the composition first so errors carry the QoS context.
        let mut layer_refs = Vec::with_capacity(config.layers.len());
        for spec in &config.layers {
            layer_refs.push(self.layers.get(&spec.layer)?);
        }
        Qos::new(config.name.clone(), layer_refs.clone()).validate()?;

        let mut slots = Vec::with_capacity(config.layers.len());
        for (spec, layer) in config.layers.iter().zip(layer_refs) {
            let session = match &spec.share {
                Some(key) => {
                    let full_key = format!("{}::{}", spec.layer, key);
                    self.shared_sessions
                        .entry(full_key)
                        .or_insert_with(|| share(layer.create_session(&spec.params)))
                        .clone()
                }
                None => share(layer.create_session(&spec.params)),
            };
            slots.push(StackSlot {
                layer_name: Name::from(spec.layer.as_str()),
                accepts: layer.accepted_events(),
                session,
            });
        }
        Ok(slots)
    }

    fn install_channel(&mut self, config: &ChannelConfig, slots: Vec<StackSlot>) -> ChannelId {
        self.next_channel += 1;
        let id = ChannelId(self.next_channel);
        let name = Name::from(config.name.as_str());
        let channel = Channel::new(id, name.clone(), slots);
        self.channels.insert(id, channel);
        self.names.insert(name, id);
        id
    }

    /// Creates a channel from a declarative configuration and runs its
    /// initialisation ([`ChannelInit`] travels bottom-up through the stack).
    pub fn create_channel(
        &mut self,
        config: &ChannelConfig,
        platform: &mut dyn Platform,
    ) -> Result<ChannelId> {
        if self.names.contains_key(config.name.as_str()) {
            return Err(AppiaError::DuplicateChannel(config.name.clone()));
        }
        let slots = self.build_slots(config)?;
        let id = self.install_channel(config, slots);
        self.queue.push_back(Pending {
            channel: id,
            from: None,
            event: Event::up(ChannelInit {}),
        });
        self.process(platform);
        Ok(id)
    }

    /// Destroys a channel, sending [`ChannelClose`] through its stack first.
    pub fn destroy_channel(&mut self, name: &str, platform: &mut dyn Platform) -> Result<()> {
        let id = self
            .channel_id(name)
            .ok_or_else(|| AppiaError::UnknownChannel(name.to_string()))?;
        self.queue.push_back(Pending {
            channel: id,
            from: None,
            event: Event::up(ChannelClose {}),
        });
        self.process(platform);
        self.channels.remove(&id);
        self.names.remove(name);
        self.timers.records.retain(|_, record| record.channel != id);
        Ok(())
    }

    /// Replaces the stack of an existing channel with a new configuration.
    ///
    /// This is the kernel-level primitive behind Morpheus's run-time
    /// adaptation: the old stack receives [`ChannelClose`], the new stack is
    /// built (re-using shared sessions where the configuration says so) and
    /// receives [`ChannelInit`]. The caller is responsible for having driven
    /// the channel to quiescence beforehand (the Core subsystem does this via
    /// a view change, as described in the paper).
    pub fn replace_channel(
        &mut self,
        name: &str,
        config: &ChannelConfig,
        platform: &mut dyn Platform,
    ) -> Result<ChannelId> {
        if !self.names.contains_key(name) {
            return Err(AppiaError::UnknownChannel(name.to_string()));
        }
        // Build the new slots first so a bad configuration leaves the old
        // channel untouched.
        let slots = self.build_slots(config)?;
        self.destroy_channel(name, platform)?;

        let id = self.install_channel(config, slots);
        self.queue.push_back(Pending {
            channel: id,
            from: None,
            event: Event::up(ChannelInit {}),
        });
        self.process(platform);
        Ok(id)
    }

    /// Injects an event into a channel at the edge (bottom for upward events,
    /// top for downward events) without processing the queue.
    pub fn dispatch(&mut self, channel: ChannelId, event: Event) {
        self.queue.push_back(Pending {
            channel,
            from: None,
            event,
        });
    }

    /// Injects a batch of events into a channel at the edge without
    /// processing the queue.
    ///
    /// Together with a single [`Kernel::process`] drain this amortises queue
    /// churn over the whole batch; the simulation engine and the benches use
    /// it when several packets or application sends arrive at one instant.
    pub fn dispatch_batch(&mut self, channel: ChannelId, events: impl IntoIterator<Item = Event>) {
        for event in events {
            self.queue.push_back(Pending {
                channel,
                from: None,
                event,
            });
        }
    }

    /// Injects an event and immediately processes the queue to completion.
    pub fn dispatch_and_process(
        &mut self,
        channel: ChannelId,
        event: Event,
        platform: &mut dyn Platform,
    ) {
        self.dispatch(channel, event);
        self.process(platform);
    }

    /// Injects a batch of events and drains the queue once.
    pub fn dispatch_batch_and_process(
        &mut self,
        channel: ChannelId,
        events: impl IntoIterator<Item = Event>,
        platform: &mut dyn Platform,
    ) {
        self.dispatch_batch(channel, events);
        self.process(platform);
    }

    fn enqueue_packet(&mut self, packet: InPacket) -> Result<()> {
        let id = self
            .channel_id(&packet.channel)
            .ok_or_else(|| AppiaError::UnknownChannel(packet.channel.as_str().to_string()))?;
        let mut payload = decode_event(&self.events, &packet.payload)?;
        if let Some(sendable) = payload.as_sendable_mut() {
            sendable.header_mut().dest = crate::event::Dest::Node(packet.to);
        }
        self.queue.push_back(Pending {
            channel: id,
            from: None,
            event: Event::from_boxed(Direction::Up, payload),
        });
        Ok(())
    }

    /// Delivers a packet received from the network: the serialised event is
    /// reconstructed through the event-factory registry and travels up the
    /// stack of the channel named in the packet.
    pub fn deliver_packet(&mut self, packet: InPacket, platform: &mut dyn Platform) -> Result<()> {
        self.enqueue_packet(packet)?;
        self.process(platform);
        Ok(())
    }

    /// Delivers a batch of packets with a single queue drain.
    ///
    /// Undecodable or misaddressed packets are skipped; the number of such
    /// rejected packets is returned.
    pub fn deliver_packet_batch(
        &mut self,
        packets: impl IntoIterator<Item = InPacket>,
        platform: &mut dyn Platform,
    ) -> usize {
        let mut rejected = 0;
        for packet in packets {
            if self.enqueue_packet(packet).is_err() {
                rejected += 1;
            }
        }
        self.process(platform);
        rejected
    }

    /// Reports that a timer armed through an [`EventContext`] has fired. The
    /// owning channel receives a [`TimerExpired`] event travelling up.
    pub fn timer_expired(&mut self, key: TimerKey, platform: &mut dyn Platform) {
        let Some(record) = self.timers.records.remove(&key.timer_id) else {
            return;
        };
        if !self.channels.contains_key(&record.channel) {
            return;
        }
        self.queue.push_back(Pending {
            channel: record.channel,
            from: None,
            event: Event::up(TimerExpired {
                owner: record.owner,
                tag: record.tag,
                timer_id: key.timer_id,
            }),
        });
        self.process(platform);
    }

    /// Processes queued events until the queue drains.
    pub fn process(&mut self, platform: &mut dyn Platform) {
        while let Some(pending) = self.queue.pop_front() {
            let Some(channel) = self.channels.get_mut(&pending.channel) else {
                continue;
            };
            let Some(index) = channel.next_hop(
                pending.event.payload.as_ref(),
                pending.event.direction,
                pending.from,
            ) else {
                continue;
            };
            let session = channel
                .session_at(index)
                .expect("next_hop returned a valid index");
            // Interned names: cloning is a refcount bump, not an allocation.
            let channel_name = channel.interned_name().clone();
            let layer_name = channel
                .layer_name_at(index)
                .expect("next_hop returned a valid index")
                .clone();

            let mut ctx = EventContext {
                channel_id: pending.channel,
                channel_name,
                layer_name,
                session_index: index,
                queue: &mut self.queue,
                timers: &mut self.timers,
                scratch: &mut self.scratch,
                platform,
            };
            session.borrow_mut().handle(pending.event, &mut ctx);
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("channels", &self.channel_names())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChannelConfig, LayerSpec};
    use crate::events::DataEvent;
    use crate::message::Message;
    use crate::platform::TestPlatform;

    fn basic_config(name: &str) -> ChannelConfig {
        ChannelConfig {
            name: name.to_string(),
            layers: vec![
                LayerSpec::new("network"),
                LayerSpec::new("logger"),
                LayerSpec::new("app"),
            ],
        }
    }

    #[test]
    fn create_channel_and_send_data_point_to_point() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        let id = kernel
            .create_channel(&basic_config("data"), &mut platform)
            .unwrap();

        let event = Event::down(DataEvent::new(
            NodeId(1),
            crate::event::Dest::Nodes(vec![NodeId(2), NodeId(3)]),
            Message::with_payload(&b"hello"[..]),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);

        let sent = platform.take_sent();
        assert_eq!(sent.len(), 2, "one packet per destination");
        assert!(sent.iter().all(|p| p.channel == "data"));
        assert!(sent.iter().all(|p| matches!(p.class, PacketClass::Data)));
    }

    #[test]
    fn duplicate_channel_names_are_rejected() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        kernel
            .create_channel(&basic_config("data"), &mut platform)
            .unwrap();
        let err = kernel
            .create_channel(&basic_config("data"), &mut platform)
            .unwrap_err();
        assert!(matches!(err, AppiaError::DuplicateChannel(_)));
    }

    #[test]
    fn unknown_layer_is_rejected() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        let config = ChannelConfig {
            name: "broken".into(),
            layers: vec![LayerSpec::new("does-not-exist")],
        };
        let err = kernel.create_channel(&config, &mut platform).unwrap_err();
        assert!(matches!(err, AppiaError::UnknownLayer(_)));
    }

    #[test]
    fn stacks_deeper_than_the_route_width_are_rejected() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        let mut config = ChannelConfig::new("too-deep");
        for _ in 0..(MAX_STACK_DEPTH + 1) {
            config = config.with_layer(LayerSpec::new("logger"));
        }
        let err = kernel.create_channel(&config, &mut platform).unwrap_err();
        assert!(matches!(err, AppiaError::InvalidComposition(_)));
    }

    #[test]
    fn packet_roundtrip_between_two_kernels() {
        let mut sender = Kernel::new();
        let mut receiver = Kernel::new();
        let mut platform_a = TestPlatform::new(NodeId(1));
        let mut platform_b = TestPlatform::new(NodeId(2));

        let channel_a = sender
            .create_channel(&basic_config("data"), &mut platform_a)
            .unwrap();
        receiver
            .create_channel(&basic_config("data"), &mut platform_b)
            .unwrap();

        let event = Event::down(DataEvent::new(
            NodeId(1),
            crate::event::Dest::Node(NodeId(2)),
            Message::with_payload(&b"ping"[..]),
        ));
        sender.dispatch_and_process(channel_a, event, &mut platform_a);

        let sent = platform_a.take_sent();
        assert_eq!(sent.len(), 1);
        let packet = InPacket {
            from: NodeId(1),
            to: NodeId(2),
            class: sent[0].class,
            channel: sent[0].channel.clone(),
            payload: sent[0].payload.clone(),
        };
        receiver.deliver_packet(packet, &mut platform_b).unwrap();

        let deliveries = platform_b.take_deliveries();
        assert_eq!(deliveries.len(), 1);
        match &deliveries[0].kind {
            DeliveryKind::Data { from, payload } => {
                assert_eq!(*from, NodeId(1));
                assert_eq!(payload.as_ref(), b"ping");
            }
            other => panic!("unexpected delivery {other:?}"),
        }
    }

    #[test]
    fn batch_dispatch_produces_the_same_packets_as_sequential() {
        let events = |count: u32| {
            (0..count).map(|index| {
                Event::down(DataEvent::new(
                    NodeId(1),
                    crate::event::Dest::Node(NodeId(2)),
                    Message::with_payload(index.to_be_bytes().to_vec()),
                ))
            })
        };

        let mut sequential = Kernel::new();
        let mut platform_a = TestPlatform::new(NodeId(1));
        let id = sequential
            .create_channel(&basic_config("data"), &mut platform_a)
            .unwrap();
        for event in events(5) {
            sequential.dispatch_and_process(id, event, &mut platform_a);
        }

        let mut batched = Kernel::new();
        let mut platform_b = TestPlatform::new(NodeId(1));
        let id = batched
            .create_channel(&basic_config("data"), &mut platform_b)
            .unwrap();
        batched.dispatch_batch_and_process(id, events(5), &mut platform_b);

        let sent_a = platform_a.take_sent();
        let sent_b = platform_b.take_sent();
        assert_eq!(sent_a.len(), sent_b.len());
        for (a, b) in sent_a.iter().zip(&sent_b) {
            assert_eq!(a.payload, b.payload);
            assert_eq!(a.dest, b.dest);
        }
        assert_eq!(batched.pending_events(), 0);
    }

    #[test]
    fn packet_batches_count_rejects_and_deliver_the_rest() {
        let mut sender = Kernel::new();
        let mut receiver = Kernel::new();
        let mut platform_a = TestPlatform::new(NodeId(1));
        let mut platform_b = TestPlatform::new(NodeId(2));
        let channel_a = sender
            .create_channel(&basic_config("data"), &mut platform_a)
            .unwrap();
        receiver
            .create_channel(&basic_config("data"), &mut platform_b)
            .unwrap();

        for index in 0u32..3 {
            let event = Event::down(DataEvent::new(
                NodeId(1),
                crate::event::Dest::Node(NodeId(2)),
                Message::with_payload(index.to_be_bytes().to_vec()),
            ));
            sender.dispatch_and_process(channel_a, event, &mut platform_a);
        }
        let mut packets: Vec<InPacket> = platform_a
            .take_sent()
            .into_iter()
            .map(|out| InPacket {
                from: out.from,
                to: NodeId(2),
                class: out.class,
                channel: out.channel,
                payload: out.payload,
            })
            .collect();
        // Corrupt one packet and misaddress another.
        packets[1].payload = bytes::Bytes::from_static(&[0xFF, 0x01]);
        packets.push(InPacket {
            channel: "nope".into(),
            ..packets[0].clone()
        });

        let rejected = receiver.deliver_packet_batch(packets, &mut platform_b);
        assert_eq!(rejected, 2);
        assert_eq!(platform_b.data_delivery_count(), 2);
    }

    #[test]
    fn destroy_channel_removes_it_and_its_timers() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        kernel
            .create_channel(&basic_config("data"), &mut platform)
            .unwrap();
        assert!(kernel.channel_by_name("data").is_some());
        kernel.destroy_channel("data", &mut platform).unwrap();
        assert!(kernel.channel_by_name("data").is_none());
        assert!(kernel.destroy_channel("data", &mut platform).is_err());
    }

    #[test]
    fn replace_channel_swaps_the_stack() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        kernel
            .create_channel(&basic_config("data"), &mut platform)
            .unwrap();

        let new_config = ChannelConfig {
            name: "data".into(),
            layers: vec![LayerSpec::new("network"), LayerSpec::new("app")],
        };
        kernel
            .replace_channel("data", &new_config, &mut platform)
            .unwrap();
        let channel = kernel.channel_by_name("data").unwrap();
        assert_eq!(channel.layer_names(), vec!["network", "app"]);
    }

    #[test]
    fn replace_channel_requires_existing_channel() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        let err = kernel
            .replace_channel("missing", &basic_config("missing"), &mut platform)
            .unwrap_err();
        assert!(matches!(err, AppiaError::UnknownChannel(_)));
    }

    #[test]
    fn shared_sessions_are_reused_across_channels() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));

        let mut config_a = basic_config("a");
        config_a.layers[1] = LayerSpec::new("logger").shared("metrics");
        let mut config_b = basic_config("b");
        config_b.layers[1] = LayerSpec::new("logger").shared("metrics");

        let id_a = kernel.create_channel(&config_a, &mut platform).unwrap();
        let id_b = kernel.create_channel(&config_b, &mut platform).unwrap();

        let session_a = kernel.channel(id_a).unwrap().session_of("logger").unwrap();
        let session_b = kernel.channel(id_b).unwrap().session_of("logger").unwrap();
        assert!(std::rc::Rc::ptr_eq(&session_a, &session_b));
    }

    #[test]
    fn timer_expiry_reaches_the_owning_layer() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        // The logger layer arms no timers, so exercise the machinery directly:
        // dispatching an unknown timer key must be a no-op.
        kernel
            .create_channel(&basic_config("data"), &mut platform)
            .unwrap();
        kernel.timer_expired(TimerKey::new(ChannelId(99), 7), &mut platform);
        assert_eq!(kernel.pending_events(), 0);
    }
}
