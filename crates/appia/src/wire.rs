//! A small, deterministic, length-prefixed binary wire format.
//!
//! Protocol layers push their headers onto a [`crate::message::Message`] as
//! opaque byte chunks. The [`Wire`] trait plus [`WireWriter`]/[`WireReader`]
//! give each layer a simple, explicit way to encode and decode those chunks
//! without pulling in an external serialisation framework.
//!
//! The format is intentionally simple:
//!
//! * fixed-width integers are encoded big-endian;
//! * strings and byte slices are length-prefixed with a `u32`;
//! * lists are length-prefixed with a `u32` element count.

use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes before the value was complete.
    UnexpectedEof,
    /// A string field did not contain valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant or tag byte had an unknown value.
    InvalidTag(u8),
    /// A length prefix exceeded a sanity limit.
    LengthOutOfRange(u64),
    /// A custom decoding failure raised by a `Wire` implementation.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::InvalidTag(tag) => write!(f, "invalid tag byte {tag}"),
            WireError::LengthOutOfRange(len) => write!(f, "length {len} out of range"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum length accepted for any single length-prefixed field (16 MiB).
///
/// The limit exists purely as a sanity check against corrupted input; no
/// protocol in the suite produces fields anywhere near this large.
pub const MAX_FIELD_LEN: u64 = 16 * 1024 * 1024;

/// Types that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoded representation of `self` to the writer.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes a value from the reader, consuming exactly the bytes it wrote.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh byte buffer.
    fn to_bytes(&self) -> Bytes {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes a value from a byte slice, requiring the slice to be fully consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let value = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes"));
        }
        Ok(value)
    }
}

/// An append-only encoder for the wire format.
///
/// A writer can be used one-shot ([`WireWriter::finish`]) or as a reusable
/// scratch buffer: [`WireWriter::split_frame`] freezes everything written so
/// far into a [`Bytes`] without copying and leaves the writer ready for the
/// next frame in the same allocation. Once every split-off frame has been
/// dropped, [`WireWriter::reserve`] recycles the allocation, so a long-lived
/// scratch writer (the kernel owns one for outgoing packets) serialises an
/// unbounded stream of frames with zero steady-state allocations.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self {
            buf: BytesMut::new(),
        }
    }

    /// Creates a writer with the given initial capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(capacity),
        }
    }

    /// Ensures space for `additional` more bytes, recycling the underlying
    /// allocation when every previously split-off frame has been dropped.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Freezes everything written since the last split into an immutable
    /// frame, leaving the writer positioned for the next frame.
    pub fn split_frame(&mut self) -> Bytes {
        self.buf.split().freeze()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.put_u8(value);
    }

    /// Appends a boolean as a single byte (0 or 1).
    pub fn put_bool(&mut self, value: bool) {
        self.buf.put_u8(u8::from(value));
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.put_u16(value);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.put_u32(value);
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.put_u64(value);
    }

    /// Appends a big-endian `i64`.
    pub fn put_i64(&mut self, value: i64) {
        self.buf.put_i64(value);
    }

    /// Appends an IEEE-754 `f64`.
    pub fn put_f64(&mut self, value: f64) {
        self.buf.put_f64(value);
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, value: &[u8]) {
        self.put_u32(value.len() as u32);
        self.buf.put_slice(value);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_bytes(value.as_bytes());
    }

    /// Appends a length-prefixed list of `u32` values.
    pub fn put_u32_list(&mut self, values: &[u32]) {
        self.put_u32(values.len() as u32);
        for v in values {
            self.put_u32(*v);
        }
    }

    /// Appends a length-prefixed list of `u64` values.
    pub fn put_u64_list(&mut self, values: &[u64]) {
        self.put_u32(values.len() as u32);
        for v in values {
            self.put_u64(*v);
        }
    }

    /// Appends a nested `Wire` value.
    pub fn put_wire<T: Wire>(&mut self, value: &T) {
        value.encode(self);
    }

    /// Finalises the writer and returns the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

thread_local! {
    /// Shared scratch writer for small frames (layer headers). Single
    /// kernel thread, so a thread-local is effectively a per-kernel pool.
    static FRAME_SCRATCH: std::cell::RefCell<WireWriter> =
        std::cell::RefCell::new(WireWriter::new());
}

/// Encodes one frame through a shared reusable scratch writer.
///
/// The closure writes the frame; the written bytes are split off and
/// returned. The scratch allocation is recycled once previously returned
/// frames have been dropped, so steady-state header encoding (a push per
/// packet, dropped when the packet is serialised or consumed) does not
/// allocate.
pub fn encode_pooled(encode: impl FnOnce(&mut WireWriter)) -> Bytes {
    FRAME_SCRATCH.with(|cell| {
        let mut writer = cell.borrow_mut();
        writer.reserve(64);
        encode(&mut writer);
        writer.split_frame()
    })
}

/// A cursor-style decoder for the wire format.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over the given bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(len).ok_or(WireError::UnexpectedEof)?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::UnexpectedEof)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads exactly `N` bytes into an array (checked, never panics).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?
            .try_into()
            .map_err(|_| WireError::UnexpectedEof)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or(WireError::UnexpectedEof)
    }

    /// Reads a boolean encoded as a single byte.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::InvalidTag(other)),
        }
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take_array()?))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take_array()?))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take_array()?))
    }

    /// Reads a big-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_be_bytes(self.take_array()?))
    }

    /// Reads an IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_be_bytes(self.take_array()?))
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<Bytes, WireError> {
        let len = u64::from(self.get_u32()?);
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOutOfRange(len));
        }
        Ok(Bytes::copy_from_slice(self.take(len as usize)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a length-prefixed list of `u32` values. The advertised count
    /// is checked against the bytes actually present (4 per element) before
    /// any allocation, so a corrupted or adversarial count cannot reserve
    /// more memory than the message itself could hold.
    pub fn get_u32_list(&mut self) -> Result<Vec<u32>, WireError> {
        let len = u64::from(self.get_u32()?);
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOutOfRange(len));
        }
        if len > self.remaining() as u64 / 4 {
            return Err(WireError::Malformed("u32 list count exceeds payload"));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed list of `u64` values; the count is checked
    /// against the remaining bytes (8 per element) before allocating.
    pub fn get_u64_list(&mut self) -> Result<Vec<u64>, WireError> {
        let len = u64::from(self.get_u32()?);
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOutOfRange(len));
        }
        if len > self.remaining() as u64 / 8 {
            return Err(WireError::Malformed("u64 list count exceeds payload"));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Reads a nested `Wire` value.
    pub fn get_wire<T: Wire>(&mut self) -> Result<T, WireError> {
        T::decode(self)
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_u32()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_str()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bool(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_bool()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u64::from(r.get_u32()?);
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOutOfRange(len));
        }
        // Every wire element costs at least one byte, so a count larger
        // than the remaining payload is malformed — rejected before the
        // allocation, not after the element loop runs out of bytes.
        if len > r.remaining() as u64 {
            return Err(WireError::Malformed("list count exceeds payload"));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(1024);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(3.5);
        let bytes = w.finish();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 1024);
        assert_eq!(r.get_u32().unwrap(), 123_456);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        let mut w = WireWriter::new();
        w.put_str("olá mundo");
        w.put_bytes(&[1, 2, 3, 4]);
        w.put_str("");
        let bytes = w.finish();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_str().unwrap(), "olá mundo");
        assert_eq!(r.get_bytes().unwrap().as_ref(), &[1, 2, 3, 4]);
        assert_eq!(r.get_str().unwrap(), "");
    }

    #[test]
    fn lists_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u32_list(&[1, 2, 3]);
        w.put_u64_list(&[]);
        let bytes = w.finish();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u32_list().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_list().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn eof_is_reported() {
        let mut r = WireReader::new(&[0, 0]);
        assert_eq!(r.get_u32().unwrap_err(), WireError::UnexpectedEof);
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut r = WireReader::new(&[9]);
        assert_eq!(r.get_bool().unwrap_err(), WireError::InvalidTag(9));
    }

    #[test]
    fn wire_trait_roundtrip_for_vec_of_strings() {
        let value = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let bytes = value.to_bytes();
        let decoded = Vec::<String>::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 7u32.to_bytes().to_vec();
        bytes.push(0xFF);
        assert_eq!(
            u32::from_bytes(&bytes).unwrap_err(),
            WireError::Malformed("trailing bytes")
        );
    }

    #[test]
    fn corrupted_length_prefix_is_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.get_bytes().unwrap_err(),
            WireError::LengthOutOfRange(_)
        ));
    }

    #[test]
    fn adversarial_list_counts_are_rejected_before_allocation() {
        // A count claiming a million u32s backed by four payload bytes must
        // fail on the count check, not inside the element loop (and without
        // reserving a million-slot vector first).
        let mut w = WireWriter::new();
        w.put_u32(1_000_000);
        w.put_u32(7);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.get_u32_list().unwrap_err(),
            WireError::Malformed(_)
        ));

        let mut w = WireWriter::new();
        w.put_u32(1_000_000);
        w.put_u64(7);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.get_u64_list().unwrap_err(),
            WireError::Malformed(_)
        ));

        // Same for the generic Vec<T> path: one string element encoded,
        // count rewritten to claim far more than the payload holds.
        let mut bytes = vec!["x".to_string()].to_bytes().to_vec();
        bytes[..4].copy_from_slice(&1_000_000u32.to_be_bytes());
        assert!(matches!(
            Vec::<String>::from_bytes(&bytes).unwrap_err(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn truncated_lists_decode_to_clean_errors() {
        // Every possible truncation of a valid encoding errors out instead
        // of panicking or looping.
        let mut w = WireWriter::new();
        w.put_u32_list(&[10, 20, 30]);
        w.put_u64_list(&[40, 50]);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let lists = (r.get_u32_list(), r.get_u64_list());
            assert!(
                lists.0.is_err() || lists.1.is_err(),
                "truncation at {cut} of {} decoded both lists",
                bytes.len()
            );
        }
    }

    #[test]
    fn single_bit_flips_never_panic_the_list_decoders() {
        // Deterministic exhaustive single-bit fuzz over a nested encoding:
        // any outcome is fine except a panic or an over-allocation, which
        // the count checks prevent.
        let value = vec![
            vec!["alpha".to_string(), "beta".to_string()],
            vec!["gamma".to_string()],
        ];
        let bytes = value.to_bytes().to_vec();
        for index in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[index] ^= 1 << bit;
                let _ = Vec::<Vec<String>>::from_bytes(&mutated);
            }
        }
    }
}
