//! Layers: micro-protocol factories.
//!
//! A [`Layer`] describes a micro-protocol: which event types it accepts,
//! which it produces and which it needs other layers to produce. Layers are
//! stateless descriptions; the per-channel state lives in the
//! [`crate::session::Session`] objects they create.

use std::collections::BTreeMap;
use std::rc::Rc;

use crate::event::EventSpec;
use crate::session::Session;

/// Free-form, string-valued parameters handed to a layer when a session is
/// created. They originate from the declarative channel description.
pub type LayerParams = BTreeMap<String, String>;

/// Parses a parameter as a value of type `T`, falling back to a default.
pub fn param_or<T: std::str::FromStr>(params: &LayerParams, key: &str, default: T) -> T {
    params
        .get(key)
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(default)
}

/// Parses a comma-separated list of `u32` node identifiers from a parameter.
pub fn param_node_list(params: &LayerParams, key: &str) -> Vec<crate::platform::NodeId> {
    params
        .get(key)
        .map(|raw| {
            raw.split(',')
                .filter_map(|part| part.trim().parse::<u32>().ok())
                .map(crate::platform::NodeId)
                .collect()
        })
        .unwrap_or_default()
}

/// A micro-protocol description and session factory.
pub trait Layer {
    /// Unique name of the layer, used in channel descriptions.
    fn name(&self) -> &str;

    /// Event specifications this layer's sessions want to receive.
    fn accepted_events(&self) -> Vec<EventSpec>;

    /// Names of event types this layer may create (documentation and
    /// composition validation).
    fn provided_events(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// Names of event types this layer requires some other layer (or the
    /// kernel) to provide.
    fn required_events(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// Creates a fresh session holding this layer's per-channel state.
    fn create_session(&self, params: &LayerParams) -> Box<dyn Session>;
}

/// Shared, reference-counted handle to a layer description.
pub type LayerRef = Rc<dyn Layer>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::NodeId;

    #[test]
    fn param_or_parses_and_defaults() {
        let mut params = LayerParams::new();
        params.insert("fanout".into(), "3".into());
        params.insert("broken".into(), "abc".into());
        assert_eq!(param_or(&params, "fanout", 1usize), 3);
        assert_eq!(param_or(&params, "missing", 7u32), 7);
        assert_eq!(param_or(&params, "broken", 9u32), 9);
    }

    #[test]
    fn param_node_list_parses_members() {
        let mut params = LayerParams::new();
        params.insert("members".into(), "1, 2,3".into());
        assert_eq!(
            param_node_list(&params, "members"),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        assert!(param_node_list(&params, "missing").is_empty());
    }
}
