//! The network driver layer: the bottom of every stack.

use crate::event::{Category, Dest, Direction, Event, EventSpec};
use crate::kernel::EventContext;
use crate::layer::{Layer, LayerParams};
use crate::platform::PacketDest;
use crate::session::Session;

/// Layer that maps sendable events onto packets.
///
/// Going down, the destination decides how many packets are produced:
///
/// * [`Dest::Node`] — one point-to-point packet (a send addressed to the
///   local node is looped back up instead of hitting the network);
/// * [`Dest::Nodes`] — one point-to-point packet per destination;
/// * [`Dest::Group`] — one native-multicast packet when the platform reports
///   native multicast support; otherwise the event is dropped, because a
///   multicast layer above should have resolved the group destination.
///
/// Going up the layer is transparent.
pub struct NetworkDriverLayer;

/// Registered name of the network driver layer.
pub const NETWORK_LAYER: &str = "network";

impl Layer for NetworkDriverLayer {
    fn name(&self) -> &str {
        NETWORK_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::Category(Category::Sendable)]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["DataEvent"]
    }

    fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
        Box::new(NetworkDriverSession::default())
    }
}

/// Session state of the network driver (pure counters).
#[derive(Debug, Default)]
pub struct NetworkDriverSession {
    packets_sent: u64,
    loopbacks: u64,
}

impl Session for NetworkDriverSession {
    fn layer_name(&self) -> &str {
        NETWORK_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.direction == Direction::Up {
            ctx.forward(event);
            return;
        }
        let local = ctx.node_id();
        let Some(sendable) = event.payload.as_sendable_mut() else {
            ctx.forward(event);
            return;
        };
        let class = sendable.header().class;

        // A send addressed solely to the local node is looped back up
        // instead of hitting the network. This is the only case that needs
        // the event by value, so it is handled before serialisation.
        if matches!(sendable.header().dest, Dest::Node(node) if node == local) {
            self.loopbacks += 1;
            event.direction = Direction::Up;
            ctx.dispatch_from_edge(event);
            return;
        }

        // Serialise once through the kernel's reusable scratch buffer; the
        // destination is borrowed rather than cloned (for `Dest::Nodes` the
        // clone used to copy the whole membership list per packet).
        let sendable = event.payload.as_sendable().expect("checked above");
        match &sendable.header().dest {
            Dest::Node(node) => {
                let bytes = ctx.encode_sendable(sendable);
                self.packets_sent += 1;
                ctx.send_packet(PacketDest::Node(*node), class, bytes);
            }
            Dest::Nodes(nodes) => {
                let bytes = ctx.encode_sendable(sendable);
                for &node in nodes {
                    if node == local {
                        self.loopbacks += 1;
                        continue;
                    }
                    self.packets_sent += 1;
                    ctx.send_packet(PacketDest::Node(node), class, bytes.clone());
                }
            }
            Dest::Group => {
                if ctx.profile().has_native_multicast {
                    let bytes = ctx.encode_sendable(sendable);
                    self.packets_sent += 1;
                    ctx.send_packet(PacketDest::Broadcast, class, bytes);
                }
                // Without native multicast a group destination reaching the
                // driver is a composition error; the event is dropped.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChannelConfig, LayerSpec};
    use crate::events::DataEvent;
    use crate::kernel::Kernel;
    use crate::message::Message;
    use crate::platform::{NodeId, NodeProfile, PacketClass, TestPlatform};

    fn kernel_with(name: &str) -> (Kernel, TestPlatform, crate::channel::ChannelId) {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        let config = ChannelConfig::new(name)
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("app"));
        let id = kernel.create_channel(&config, &mut platform).unwrap();
        (kernel, platform, id)
    }

    #[test]
    fn node_destination_produces_one_packet() {
        let (mut kernel, mut platform, id) = kernel_with("data");
        let event = Event::down(DataEvent::new(
            NodeId(1),
            Dest::Node(NodeId(2)),
            Message::with_payload(&b"x"[..]),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);
        let sent = platform.take_sent();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].dest, PacketDest::Node(NodeId(2)));
    }

    #[test]
    fn self_destination_is_looped_back() {
        let (mut kernel, mut platform, id) = kernel_with("data");
        let event = Event::down(DataEvent::new(
            NodeId(1),
            Dest::Node(NodeId(1)),
            Message::with_payload(&b"me"[..]),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);
        assert!(platform.take_sent().is_empty());
        assert_eq!(platform.data_delivery_count(), 1);
    }

    #[test]
    fn node_list_skips_self_and_fans_out() {
        let (mut kernel, mut platform, id) = kernel_with("data");
        let event = Event::down(DataEvent::new(
            NodeId(1),
            Dest::Nodes(vec![NodeId(1), NodeId(2), NodeId(3)]),
            Message::with_payload(&b"x"[..]),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);
        let sent = platform.take_sent();
        assert_eq!(sent.len(), 2);
    }

    #[test]
    fn group_destination_without_native_multicast_is_dropped() {
        let (mut kernel, mut platform, id) = kernel_with("data");
        let event = Event::down(DataEvent::to_group(NodeId(1), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        assert!(platform.take_sent().is_empty());
    }

    #[test]
    fn group_destination_with_native_multicast_broadcasts_once() {
        let mut profile = NodeProfile::fixed_pc(NodeId(1));
        profile.has_native_multicast = true;
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::with_profile(profile);
        let config = ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("app"));
        let id = kernel.create_channel(&config, &mut platform).unwrap();

        let event = Event::down(DataEvent::to_group(NodeId(1), Message::new()));
        kernel.dispatch_and_process(id, event, &mut platform);
        let sent = platform.take_sent();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].dest, PacketDest::Broadcast);
        assert_eq!(sent[0].class, PacketClass::Data);
    }
}
