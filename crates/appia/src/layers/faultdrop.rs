//! A fault-injection layer that drops a fraction of sendable events.

use crate::event::{Category, Direction, Event, EventSpec};
use crate::kernel::EventContext;
use crate::layer::{param_or, Layer, LayerParams};
use crate::session::Session;

/// Registered name of the fault-injection layer.
pub const FAULTDROP_LAYER: &str = "faultdrop";

/// Layer that drops a configurable fraction of sendable events, used by
/// tests and experiments that need message loss independent of the network
/// model.
///
/// Parameters:
///
/// * `drop_rate` — probability in `[0, 1]` of dropping a matching event
///   (default `0.0`).
/// * `direction` — `"down"`, `"up"` or `"both"` (default `"down"`).
pub struct FaultDropLayer;

impl Layer for FaultDropLayer {
    fn name(&self) -> &str {
        FAULTDROP_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::Category(Category::Sendable)]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        let direction = params
            .get("direction")
            .map(String::as_str)
            .unwrap_or("down");
        Box::new(FaultDropSession {
            drop_rate: param_or(params, "drop_rate", 0.0f64).clamp(0.0, 1.0),
            match_down: direction == "down" || direction == "both",
            match_up: direction == "up" || direction == "both",
            dropped: 0,
            passed: 0,
        })
    }
}

/// Session state of the fault-injection layer.
#[derive(Debug)]
pub struct FaultDropSession {
    drop_rate: f64,
    match_down: bool,
    match_up: bool,
    dropped: u64,
    passed: u64,
}

impl Session for FaultDropSession {
    fn layer_name(&self) -> &str {
        FAULTDROP_LAYER
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        let matches = match event.direction {
            Direction::Down => self.match_down,
            Direction::Up => self.match_up,
        };
        if matches && self.drop_rate > 0.0 {
            // Map the platform's random value onto [0, 1).
            let sample = (ctx.random_u64() >> 11) as f64 / (1u64 << 53) as f64;
            if sample < self.drop_rate {
                self.dropped += 1;
                return;
            }
        }
        self.passed += 1;
        ctx.forward(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChannelConfig, LayerSpec};
    use crate::event::Dest;
    use crate::events::DataEvent;
    use crate::kernel::Kernel;
    use crate::message::Message;
    use crate::platform::{NodeId, TestPlatform};

    fn run_with_drop_rate(rate: &str, sends: usize) -> usize {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        let config = ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("faultdrop").with_param("drop_rate", rate))
            .with_layer(LayerSpec::new("app"));
        let id = kernel.create_channel(&config, &mut platform).unwrap();
        for _ in 0..sends {
            let event = Event::down(DataEvent::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                Message::new(),
            ));
            kernel.dispatch_and_process(id, event, &mut platform);
        }
        platform.take_sent().len()
    }

    #[test]
    fn zero_drop_rate_passes_everything() {
        assert_eq!(run_with_drop_rate("0.0", 50), 50);
    }

    #[test]
    fn full_drop_rate_drops_everything() {
        assert_eq!(run_with_drop_rate("1.0", 50), 0);
    }

    #[test]
    fn partial_drop_rate_drops_some() {
        let passed = run_with_drop_rate("0.5", 200);
        assert!(passed > 20 && passed < 180, "passed {passed} of 200");
    }
}
