//! Built-in layers shipped with the kernel.
//!
//! * [`network_driver::NetworkDriverLayer`] (`"network"`) — the bottom of
//!   every stack: serialises sendable events into packets.
//! * [`app_interface::AppInterfaceLayer`] (`"app"`) — the top of every stack:
//!   delivers application data to the local application.
//! * [`logger::LoggerLayer`] (`"logger"`) — a transparent event counter used
//!   for diagnostics and tests.
//! * [`faultdrop::FaultDropLayer`] (`"faultdrop"`) — drops a configurable
//!   fraction of sendable events, for fault-injection tests.

pub mod app_interface;
pub mod faultdrop;
pub mod logger;
pub mod network_driver;

pub use app_interface::AppInterfaceLayer;
pub use faultdrop::FaultDropLayer;
pub use logger::LoggerLayer;
pub use network_driver::NetworkDriverLayer;

use crate::registry::LayerRegistry;

/// Registers every built-in layer into the given registry.
pub fn register_builtin(registry: &mut LayerRegistry) {
    registry.register(NetworkDriverLayer);
    registry.register(AppInterfaceLayer);
    registry.register(LoggerLayer);
    registry.register(FaultDropLayer);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_layers_are_registered() {
        let mut registry = LayerRegistry::new();
        register_builtin(&mut registry);
        for name in ["network", "app", "logger", "faultdrop"] {
            assert!(registry.contains(name), "missing builtin layer `{name}`");
        }
    }
}
