//! A transparent event-counting layer used for diagnostics and tests.

use std::collections::BTreeMap;

use crate::event::{Direction, Event, EventSpec};
use crate::events::ChannelClose;
use crate::kernel::EventContext;
use crate::layer::{param_or, Layer, LayerParams};
use crate::platform::DeliveryKind;
use crate::session::Session;

/// Registered name of the logger layer.
pub const LOGGER_LAYER: &str = "logger";

/// Layer that counts every event flowing through it and forwards it
/// unchanged. When the channel closes it reports a summary notification to
/// the application; with the `verbose` parameter set to `true` it reports a
/// notification for every event.
pub struct LoggerLayer;

impl Layer for LoggerLayer {
    fn name(&self) -> &str {
        LOGGER_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::All]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        Box::new(LoggerSession {
            verbose: param_or(params, "verbose", false),
            counts: BTreeMap::new(),
        })
    }
}

/// Session state of the logger layer.
#[derive(Debug)]
pub struct LoggerSession {
    verbose: bool,
    // bound: one counter per (layer, direction) pair -- at most 2 x stack depth entries.
    counts: BTreeMap<(String, &'static str), u64>,
}

impl LoggerSession {
    fn direction_name(direction: Direction) -> &'static str {
        match direction {
            Direction::Up => "up",
            Direction::Down => "down",
        }
    }
}

impl Session for LoggerSession {
    fn layer_name(&self) -> &str {
        LOGGER_LAYER
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        let key = (
            event.type_name().to_string(),
            Self::direction_name(event.direction),
        );
        *self.counts.entry(key.clone()).or_insert(0) += 1;

        if self.verbose {
            ctx.deliver(DeliveryKind::Notification(format!(
                "logger: {} {}",
                key.0, key.1
            )));
        }
        if event.is::<ChannelClose>() {
            let total: u64 = self.counts.values().sum();
            ctx.deliver(DeliveryKind::Notification(format!(
                "logger: {} events across {} types",
                total,
                self.counts.len()
            )));
        }
        ctx.forward(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChannelConfig, LayerSpec};
    use crate::event::Dest;
    use crate::events::DataEvent;
    use crate::kernel::Kernel;
    use crate::message::Message;
    use crate::platform::{NodeId, TestPlatform};

    #[test]
    fn logger_reports_a_summary_on_close() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        let config = ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("logger"))
            .with_layer(LayerSpec::new("app"));
        let id = kernel.create_channel(&config, &mut platform).unwrap();

        let event = Event::down(DataEvent::new(
            NodeId(1),
            Dest::Node(NodeId(2)),
            Message::with_payload(&b"x"[..]),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);
        kernel.destroy_channel("data", &mut platform).unwrap();

        let notes: Vec<String> = platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::Notification(text) => Some(text),
                _ => None,
            })
            .collect();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("events across"));
    }

    #[test]
    fn verbose_logger_reports_every_event() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(1));
        let config = ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("logger").with_param("verbose", "true"))
            .with_layer(LayerSpec::new("app"));
        let id = kernel.create_channel(&config, &mut platform).unwrap();
        platform.take_deliveries();

        let event = Event::down(DataEvent::new(
            NodeId(1),
            Dest::Node(NodeId(2)),
            Message::new(),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);
        let deliveries = platform.take_deliveries();
        assert!(deliveries.iter().any(
            |d| matches!(&d.kind, DeliveryKind::Notification(n) if n.contains("DataEvent down"))
        ));
    }
}
