//! The application interface layer: the top of every stack.

use crate::event::{Direction, Event, EventSpec};
use crate::events::DataEvent;
use crate::kernel::EventContext;
use crate::layer::{Layer, LayerParams};
use crate::platform::DeliveryKind;
use crate::session::Session;

/// Registered name of the application interface layer.
pub const APP_LAYER: &str = "app";

/// Layer delivering upward application data to the local application and
/// passing application sends downward unchanged.
pub struct AppInterfaceLayer;

impl Layer for AppInterfaceLayer {
    fn name(&self) -> &str {
        APP_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::of::<DataEvent>()]
    }

    fn required_events(&self) -> Vec<&'static str> {
        vec!["DataEvent"]
    }

    fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
        Box::new(AppInterfaceSession::default())
    }
}

/// Session state of the application interface layer.
#[derive(Debug, Default)]
pub struct AppInterfaceSession {
    delivered: u64,
}

impl Session for AppInterfaceSession {
    fn layer_name(&self) -> &str {
        APP_LAYER
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        match event.direction {
            Direction::Up => {
                if let Some(data) = event.get::<DataEvent>() {
                    self.delivered += 1;
                    ctx.deliver(DeliveryKind::Data {
                        from: data.header.source,
                        payload: data.message.payload().clone(),
                    });
                } else {
                    ctx.forward(event);
                }
            }
            Direction::Down => ctx.forward(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChannelConfig, LayerSpec};
    use crate::event::Dest;
    use crate::kernel::Kernel;
    use crate::message::Message;
    use crate::platform::{NodeId, TestPlatform};

    #[test]
    fn upward_data_is_delivered_to_the_application() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(5));
        let config = ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("app"));
        let id = kernel.create_channel(&config, &mut platform).unwrap();

        let event = Event::up(DataEvent::new(
            NodeId(9),
            Dest::Node(NodeId(5)),
            Message::with_payload(&b"hello"[..]),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);

        let deliveries = platform.take_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].channel, "data");
        match &deliveries[0].kind {
            DeliveryKind::Data { from, payload } => {
                assert_eq!(*from, NodeId(9));
                assert_eq!(payload.as_ref(), b"hello");
            }
            other => panic!("unexpected delivery {other:?}"),
        }
    }

    #[test]
    fn downward_data_passes_through() {
        let mut kernel = Kernel::new();
        let mut platform = TestPlatform::new(NodeId(5));
        let config = ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("app"));
        let id = kernel.create_channel(&config, &mut platform).unwrap();

        let event = Event::down(DataEvent::new(
            NodeId(5),
            Dest::Node(NodeId(2)),
            Message::with_payload(&b"out"[..]),
        ));
        kernel.dispatch_and_process(id, event, &mut platform);
        assert_eq!(platform.take_sent().len(), 1);
        assert!(platform.take_deliveries().is_empty());
    }
}
