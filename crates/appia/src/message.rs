//! Protocol messages with a stack of layer headers.
//!
//! Following the discipline used by protocol kernels such as Appia and
//! x-kernel, a [`Message`] carries an application payload plus a stack of
//! opaque headers. A layer pushes its header when an event travels *down* the
//! stack and pops it when the corresponding event travels back *up* on the
//! receiving node. Because headers are pushed and popped in strictly opposite
//! orders, the stack discipline guarantees each layer only ever sees its own
//! header.

use bytes::Bytes;

use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// A network message: an application payload plus a stack of layer headers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Message {
    /// Header stack. The *last* element is the most recently pushed header
    /// (i.e. the header of the lowest layer that has touched the message).
    headers: Vec<Bytes>,
    /// Application payload.
    payload: Bytes,
}

impl Message {
    /// Creates an empty message (no payload, no headers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a message wrapping the given application payload.
    pub fn with_payload(payload: impl Into<Bytes>) -> Self {
        Self {
            headers: Vec::new(),
            payload: payload.into(),
        }
    }

    /// Returns the application payload.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Replaces the application payload.
    pub fn set_payload(&mut self, payload: impl Into<Bytes>) {
        self.payload = payload.into();
    }

    /// Number of headers currently on the stack.
    pub fn header_count(&self) -> usize {
        self.headers.len()
    }

    /// Total size in bytes of payload plus all headers (excluding framing).
    pub fn size(&self) -> usize {
        self.payload.len() + self.headers.iter().map(Bytes::len).sum::<usize>()
    }

    /// Pushes a raw header chunk onto the stack.
    pub fn push_header(&mut self, header: impl Into<Bytes>) {
        self.headers.push(header.into());
    }

    /// Pops the most recently pushed header chunk.
    pub fn pop_header(&mut self) -> Option<Bytes> {
        self.headers.pop()
    }

    /// Returns the most recently pushed header without removing it.
    pub fn peek_header(&self) -> Option<&Bytes> {
        self.headers.last()
    }

    /// Encodes `value` with the wire format and pushes it as a header.
    ///
    /// The header is encoded through a shared reusable scratch buffer
    /// ([`crate::wire::encode_pooled`]), so steady-state pushes — one header
    /// per packet, dropped when the packet is serialised or delivered — do
    /// not allocate.
    pub fn push<T: Wire>(&mut self, value: &T) {
        self.headers
            .push(crate::wire::encode_pooled(|w| value.encode(w)));
    }

    /// Pops the top header and decodes it as `T`.
    ///
    /// Returns an error if the header stack is empty or decoding fails. When
    /// decoding fails the header is *not* restored; callers treat this as a
    /// malformed message and drop it.
    pub fn pop<T: Wire>(&mut self) -> Result<T, WireError> {
        let header = self
            .headers
            .pop()
            .ok_or(WireError::Malformed("missing header"))?;
        let mut r = WireReader::new(&header);
        let value = T::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes in header"));
        }
        Ok(value)
    }

    /// Decodes the top header as `T` without removing it.
    pub fn peek<T: Wire>(&self) -> Result<T, WireError> {
        let header = self
            .headers
            .last()
            .ok_or(WireError::Malformed("missing header"))?;
        let mut r = WireReader::new(header);
        T::decode(&mut r)
    }
}

impl Wire for Message {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.headers.len() as u32);
        for header in &self.headers {
            w.put_bytes(header);
        }
        w.put_bytes(&self.payload);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = r.get_u32()? as usize;
        // Every header costs at least a 4-byte length prefix, so a count
        // larger than the remaining input is provably malformed. Rejecting
        // it here also bounds the pre-allocation below: an adversarial
        // count can make us reserve at most `remaining / 4` entries, i.e.
        // no more memory than the attacker already paid for in input bytes.
        if count > r.remaining() / 4 {
            return Err(WireError::LengthOutOfRange(count as u64));
        }
        let mut headers = Vec::with_capacity(count);
        for _ in 0..count {
            headers.push(r.get_bytes()?);
        }
        let payload = r.get_bytes()?;
        Ok(Self { headers, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let msg = Message::with_payload(&b"hello"[..]);
        assert_eq!(msg.payload().as_ref(), b"hello");
        assert_eq!(msg.header_count(), 0);
        assert_eq!(msg.size(), 5);
    }

    #[test]
    fn header_stack_is_lifo() {
        let mut msg = Message::with_payload(&b"data"[..]);
        msg.push_header(&b"fifo"[..]);
        msg.push_header(&b"beb"[..]);
        assert_eq!(msg.header_count(), 2);
        assert_eq!(msg.pop_header().unwrap().as_ref(), b"beb");
        assert_eq!(msg.pop_header().unwrap().as_ref(), b"fifo");
        assert!(msg.pop_header().is_none());
    }

    #[test]
    fn typed_headers_roundtrip() {
        let mut msg = Message::new();
        msg.push(&42u64);
        msg.push(&"causal".to_string());
        assert_eq!(msg.pop::<String>().unwrap(), "causal");
        assert_eq!(msg.pop::<u64>().unwrap(), 42);
        assert!(msg.pop::<u64>().is_err());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut msg = Message::new();
        msg.push(&7u32);
        assert_eq!(msg.peek::<u32>().unwrap(), 7);
        assert_eq!(msg.peek::<u32>().unwrap(), 7);
        assert_eq!(msg.pop::<u32>().unwrap(), 7);
    }

    #[test]
    fn wire_roundtrip_preserves_header_order() {
        let mut msg = Message::with_payload(&b"payload"[..]);
        msg.push(&1u32);
        msg.push(&2u32);
        msg.push(&"top".to_string());

        let bytes = msg.to_bytes();
        let mut decoded = Message::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.payload().as_ref(), b"payload");
        assert_eq!(decoded.pop::<String>().unwrap(), "top");
        assert_eq!(decoded.pop::<u32>().unwrap(), 2);
        assert_eq!(decoded.pop::<u32>().unwrap(), 1);
    }

    #[test]
    fn size_accounts_for_headers() {
        let mut msg = Message::with_payload(&b"12345"[..]);
        msg.push_header(&b"abc"[..]);
        assert_eq!(msg.size(), 8);
    }

    #[test]
    fn adversarial_header_counts_are_rejected_before_preallocation() {
        // A forged count claiming ~4 billion headers followed by almost no
        // actual data must fail fast without reserving memory for them.
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        w.put_bytes(b"tiny");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            Message::decode(&mut r),
            Err(WireError::LengthOutOfRange(_))
        ));

        // Same for a count that merely exceeds what the input could hold.
        let mut w = WireWriter::new();
        w.put_u32(3); // claims 3 headers...
        w.put_bytes(b""); // ...but only one fits
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(Message::decode(&mut r).is_err());
    }

    #[test]
    fn maximal_valid_header_counts_still_decode() {
        // Messages whose headers are all empty sit exactly at the bound the
        // pre-allocation guard checks; they must keep decoding.
        let mut msg = Message::with_payload(&b"p"[..]);
        for _ in 0..64 {
            msg.push_header(&b""[..]);
        }
        let decoded = Message::from_bytes(&msg.to_bytes()).unwrap();
        assert_eq!(decoded, msg);
    }
}
