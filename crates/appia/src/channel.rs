//! Channels: instantiated protocol stacks.
//!
//! A channel binds a QoS (an ordered list of layers) to a concrete stack of
//! sessions. The channel is also responsible for *event routing*: for each
//! payload type it computes the ordered set of sessions that accept it and
//! caches the result, so subsequent events of the same type skip directly
//! between interested sessions — the "automatic optimisation of the flow of
//! events" described in the paper.

use std::any::TypeId;
use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::event::{Direction, EventPayload, EventSpec};
use crate::session::SessionRef;
use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// Identifier of a channel inside one kernel instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ChannelId(pub u32);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl Wire for ChannelId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.0);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ChannelId(r.get_u32()?))
    }
}

/// One slot of a channel stack: the layer name, its accept specification and
/// the session instance.
pub(crate) struct StackSlot {
    pub(crate) layer_name: String,
    pub(crate) accepts: Vec<EventSpec>,
    pub(crate) session: SessionRef,
}

/// A protocol stack instance.
pub struct Channel {
    id: ChannelId,
    name: String,
    slots: Vec<StackSlot>,
    route_cache: HashMap<TypeId, Vec<usize>>,
}

impl Channel {
    /// Creates a channel from an ordered (bottom-up) stack of slots.
    pub(crate) fn new(id: ChannelId, name: impl Into<String>, slots: Vec<StackSlot>) -> Self {
        Self { id, name: name.into(), slots, route_cache: HashMap::new() }
    }

    /// The channel identifier.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The channel name (unique inside a kernel).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sessions in the stack.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Names of the layers in the stack, bottom-up.
    pub fn layer_names(&self) -> Vec<String> {
        self.slots.iter().map(|slot| slot.layer_name.clone()).collect()
    }

    /// Whether the stack contains a layer with the given name.
    pub fn has_layer(&self, layer_name: &str) -> bool {
        self.slots.iter().any(|slot| slot.layer_name == layer_name)
    }

    /// The session at the given stack position (0 = bottom).
    pub fn session_at(&self, index: usize) -> Option<SessionRef> {
        self.slots.get(index).map(|slot| slot.session.clone())
    }

    /// The session of the layer with the given name, if present.
    pub fn session_of(&self, layer_name: &str) -> Option<SessionRef> {
        self.slots
            .iter()
            .find(|slot| slot.layer_name == layer_name)
            .map(|slot| slot.session.clone())
    }

    /// Returns (computing and caching if needed) the ascending list of stack
    /// positions whose sessions accept the given payload.
    fn route_for(&mut self, payload: &dyn EventPayload) -> &[usize] {
        let type_id = payload.as_any().type_id();
        self.route_cache.entry(type_id).or_insert_with(|| {
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.accepts.iter().any(|spec| spec.matches(payload)))
                .map(|(index, _)| index)
                .collect()
        })
    }

    /// Number of distinct payload types routed so far (cache size).
    pub fn cached_route_count(&self) -> usize {
        self.route_cache.len()
    }

    /// Computes the next stack position that should handle the event.
    ///
    /// `from` is the position of the session that just handled it (`None`
    /// when the event is entering the channel from one of its ends).
    pub(crate) fn next_hop(
        &mut self,
        payload: &dyn EventPayload,
        direction: Direction,
        from: Option<usize>,
    ) -> Option<usize> {
        let last_index = self.slots.len().checked_sub(1)?;
        let route = self.route_for(payload);
        match direction {
            Direction::Up => {
                let start = match from {
                    Some(index) => index + 1,
                    None => 0,
                };
                route.iter().copied().find(|&index| index >= start)
            }
            Direction::Down => {
                let start = match from {
                    Some(0) => return None,
                    Some(index) => index - 1,
                    None => last_index,
                };
                route.iter().copied().rev().find(|&index| index <= start)
            }
        }
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("layers", &self.layer_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::*;
    use crate::event::{Category, Event};
    use crate::events::{ChannelInit, DataEvent};
    use crate::kernel::EventContext;
    use crate::message::Message;
    use crate::platform::NodeId;
    use crate::session::Session;

    struct NullSession(&'static str);

    impl Session for NullSession {
        fn layer_name(&self) -> &str {
            self.0
        }

        fn handle(&mut self, _event: Event, _ctx: &mut EventContext<'_>) {}
    }

    fn slot(name: &'static str, accepts: Vec<EventSpec>) -> StackSlot {
        StackSlot {
            layer_name: name.to_string(),
            accepts,
            session: Rc::new(RefCell::new(Box::new(NullSession(name)) as Box<dyn Session>)),
        }
    }

    fn sample_channel() -> Channel {
        // bottom: net (all sendable), middle: fifo (DataEvent), top: app (DataEvent + init)
        Channel::new(
            ChannelId(1),
            "data",
            vec![
                slot("net", vec![EventSpec::Category(Category::Sendable)]),
                slot("fifo", vec![EventSpec::of::<DataEvent>()]),
                slot("app", vec![EventSpec::of::<DataEvent>(), EventSpec::of::<ChannelInit>()]),
            ],
        )
    }

    #[test]
    fn metadata_accessors() {
        let channel = sample_channel();
        assert_eq!(channel.id(), ChannelId(1));
        assert_eq!(channel.name(), "data");
        assert_eq!(channel.len(), 3);
        assert!(channel.has_layer("fifo"));
        assert!(!channel.has_layer("total"));
        assert!(channel.session_of("app").is_some());
        assert!(channel.session_at(9).is_none());
    }

    #[test]
    fn up_route_visits_accepting_sessions_in_order() {
        let mut channel = sample_channel();
        let data = DataEvent::to_group(NodeId(1), Message::new());

        let first = channel.next_hop(&data, Direction::Up, None).unwrap();
        assert_eq!(first, 0);
        let second = channel.next_hop(&data, Direction::Up, Some(first)).unwrap();
        assert_eq!(second, 1);
        let third = channel.next_hop(&data, Direction::Up, Some(second)).unwrap();
        assert_eq!(third, 2);
        assert_eq!(channel.next_hop(&data, Direction::Up, Some(third)), None);
    }

    #[test]
    fn down_route_skips_uninterested_sessions() {
        let mut channel = sample_channel();
        let init = ChannelInit {};

        // Only the app layer accepts ChannelInit, so going down from the top
        // it is the first and last stop.
        let first = channel.next_hop(&init, Direction::Down, None).unwrap();
        assert_eq!(first, 2);
        assert_eq!(channel.next_hop(&init, Direction::Down, Some(first)), None);
    }

    #[test]
    fn down_route_from_bottom_terminates() {
        let mut channel = sample_channel();
        let data = DataEvent::to_group(NodeId(1), Message::new());
        assert_eq!(channel.next_hop(&data, Direction::Down, Some(0)), None);
    }

    #[test]
    fn routes_are_cached_per_payload_type() {
        let mut channel = sample_channel();
        let data = DataEvent::to_group(NodeId(1), Message::new());
        let init = ChannelInit {};
        assert_eq!(channel.cached_route_count(), 0);
        channel.next_hop(&data, Direction::Up, None);
        channel.next_hop(&data, Direction::Down, None);
        assert_eq!(channel.cached_route_count(), 1);
        channel.next_hop(&init, Direction::Up, None);
        assert_eq!(channel.cached_route_count(), 2);
    }

    #[test]
    fn empty_channel_has_no_hops() {
        let mut channel = Channel::new(ChannelId(9), "empty", vec![]);
        let data = DataEvent::to_group(NodeId(1), Message::new());
        assert_eq!(channel.next_hop(&data, Direction::Up, None), None);
        assert!(channel.is_empty());
    }
}
