//! Channels: instantiated protocol stacks.
//!
//! A channel binds a QoS (an ordered list of layers) to a concrete stack of
//! sessions. The channel is also responsible for *event routing*: at build
//! time it folds every slot's accept specification into dense per-category
//! and per-type bitmasks (one bit per stack position), so finding the next
//! interested session is a shift-and-scan over a `u64` — no hashing and no
//! allocation on the hot path. This realises the "automatic optimisation of
//! the flow of events" described in the paper.

use std::any::TypeId;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::event::{Category, Direction, EventPayload, EventSpec};
use crate::intern::Name;
use crate::session::SessionRef;
use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// Identifier of a channel inside one kernel instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ChannelId(pub u32);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl Wire for ChannelId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.0);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ChannelId(r.get_u32()?))
    }
}

/// Maximum number of sessions in one stack. Routes are stored as one bit per
/// stack position in a `u64`; the composition validator rejects deeper
/// stacks (the paper's stacks use 4–7 layers).
pub const MAX_STACK_DEPTH: usize = 64;

/// One slot of a channel stack: the layer name, its accept specification and
/// the session instance.
pub(crate) struct StackSlot {
    pub(crate) layer_name: Name,
    pub(crate) accepts: Vec<EventSpec>,
    pub(crate) session: SessionRef,
}

const CATEGORY_COUNT: usize = 4;

fn category_index(category: Category) -> usize {
    match category {
        Category::Sendable => 0,
        Category::ChannelLifecycle => 1,
        Category::Timer => 2,
        Category::Internal => 3,
    }
}

/// Dense routing masks, one bit per stack position (bit 0 = bottom).
///
/// The static masks are folded once from the slots' accept specifications
/// when the channel is built; the per-payload-type result is memoised in a
/// small linear-probed vector (protocol stacks see a handful of distinct
/// payload types, so a scan beats hashing).
#[derive(Debug, Default)]
struct RouteTable {
    /// Slots accepting every event ([`EventSpec::All`]).
    all_mask: u64,
    /// Slots accepting each [`Category`].
    category_masks: [u64; CATEGORY_COUNT],
    /// Slots accepting a specific payload type, sorted by `TypeId`.
    type_masks: Vec<(TypeId, u64)>,
    /// Memoised final mask per payload type observed on this channel.
    cache: Vec<(TypeId, u64)>,
}

impl RouteTable {
    fn build(slots: &[StackSlot]) -> Self {
        debug_assert!(slots.len() <= MAX_STACK_DEPTH, "validated at channel build");
        let mut table = RouteTable::default();
        for (index, slot) in slots.iter().enumerate() {
            let bit = 1u64 << index;
            for spec in &slot.accepts {
                match spec {
                    EventSpec::All => table.all_mask |= bit,
                    EventSpec::Category(category) => {
                        table.category_masks[category_index(*category)] |= bit;
                    }
                    EventSpec::Type(type_id) => {
                        match table
                            .type_masks
                            .binary_search_by_key(type_id, |(id, _)| *id)
                        {
                            Ok(found) => table.type_masks[found].1 |= bit,
                            Err(insert_at) => table.type_masks.insert(insert_at, (*type_id, bit)),
                        }
                    }
                }
            }
        }
        table
    }

    /// The mask of stack positions interested in the given payload.
    fn mask_for(&mut self, payload: &dyn EventPayload) -> u64 {
        let type_id = payload.as_any().type_id();
        if let Some(&(_, mask)) = self.cache.iter().find(|(cached, _)| *cached == type_id) {
            return mask;
        }
        let mut mask = self.all_mask;
        for category in payload.categories() {
            mask |= self.category_masks[category_index(*category)];
        }
        if let Ok(found) = self
            .type_masks
            .binary_search_by_key(&type_id, |(id, _)| *id)
        {
            mask |= self.type_masks[found].1;
        }
        self.cache.push((type_id, mask));
        mask
    }
}

/// A protocol stack instance.
pub struct Channel {
    id: ChannelId,
    name: Name,
    slots: Vec<StackSlot>,
    routes: RouteTable,
}

impl Channel {
    /// Creates a channel from an ordered (bottom-up) stack of slots.
    ///
    /// # Panics
    /// Panics when the stack is deeper than [`MAX_STACK_DEPTH`]; the kernel
    /// validates depth before constructing channels.
    pub(crate) fn new(id: ChannelId, name: impl Into<Name>, slots: Vec<StackSlot>) -> Self {
        assert!(
            slots.len() <= MAX_STACK_DEPTH,
            "stack depth {} exceeds MAX_STACK_DEPTH ({MAX_STACK_DEPTH})",
            slots.len()
        );
        let routes = RouteTable::build(&slots);
        Self {
            id,
            name: name.into(),
            slots,
            routes,
        }
    }

    /// The channel identifier.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The channel name (unique inside a kernel).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned channel name (cloning is a refcount bump).
    pub fn interned_name(&self) -> &Name {
        &self.name
    }

    /// Number of sessions in the stack.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Names of the layers in the stack, bottom-up.
    ///
    /// Cold accessor for diagnostics and tests; the dispatch loop uses
    /// [`Channel::layer_name_at`] instead, which does not allocate.
    pub fn layer_names(&self) -> Vec<Name> {
        self.slots
            .iter()
            .map(|slot| slot.layer_name.clone())
            .collect()
    }

    /// The interned name of the layer at the given stack position.
    pub fn layer_name_at(&self, index: usize) -> Option<&Name> {
        self.slots.get(index).map(|slot| &slot.layer_name)
    }

    /// Whether the stack contains a layer with the given name.
    pub fn has_layer(&self, layer_name: &str) -> bool {
        self.slots
            .iter()
            .any(|slot| slot.layer_name.as_str() == layer_name)
    }

    /// The session at the given stack position (0 = bottom).
    pub fn session_at(&self, index: usize) -> Option<SessionRef> {
        self.slots.get(index).map(|slot| slot.session.clone())
    }

    /// The session of the layer with the given name, if present.
    pub fn session_of(&self, layer_name: &str) -> Option<SessionRef> {
        self.slots
            .iter()
            .find(|slot| slot.layer_name.as_str() == layer_name)
            .map(|slot| slot.session.clone())
    }

    /// The accept mask for the given payload (bit `i` = slot `i` accepts it).
    /// Exposed for tests asserting routing invariants.
    pub fn route_mask(&mut self, payload: &dyn EventPayload) -> u64 {
        self.routes.mask_for(payload)
    }

    /// Number of distinct payload types routed so far (memo size).
    pub fn cached_route_count(&self) -> usize {
        self.routes.cache.len()
    }

    /// Computes the next stack position that should handle the event.
    ///
    /// `from` is the position of the session that just handled it (`None`
    /// when the event is entering the channel from one of its ends).
    pub(crate) fn next_hop(
        &mut self,
        payload: &dyn EventPayload,
        direction: Direction,
        from: Option<usize>,
    ) -> Option<usize> {
        let len = self.slots.len();
        if len == 0 {
            return None;
        }
        let mask = self.routes.mask_for(payload);
        match direction {
            Direction::Up => {
                let start = match from {
                    Some(index) => index + 1,
                    None => 0,
                };
                if start >= len {
                    return None;
                }
                // Clear bits below `start`, then take the lowest set bit.
                let candidates = mask & (u64::MAX << start);
                if candidates == 0 {
                    None
                } else {
                    Some(candidates.trailing_zeros() as usize)
                }
            }
            Direction::Down => {
                let start = match from {
                    Some(0) => return None,
                    Some(index) => index - 1,
                    None => len - 1,
                };
                // Keep bits at or below `start`, then take the highest.
                let keep = if start >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (start + 1)) - 1
                };
                let candidates = mask & keep;
                if candidates == 0 {
                    None
                } else {
                    Some(63 - candidates.leading_zeros() as usize)
                }
            }
        }
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("layers", &self.layer_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::*;
    use crate::event::{Category, Event};
    use crate::events::{ChannelInit, DataEvent, TimerExpired};
    use crate::kernel::EventContext;
    use crate::message::Message;
    use crate::platform::NodeId;
    use crate::session::Session;

    struct NullSession(&'static str);

    impl Session for NullSession {
        fn layer_name(&self) -> &str {
            self.0
        }

        fn handle(&mut self, _event: Event, _ctx: &mut EventContext<'_>) {}
    }

    fn slot(name: &'static str, accepts: Vec<EventSpec>) -> StackSlot {
        StackSlot {
            layer_name: Name::new(name),
            accepts,
            session: Rc::new(RefCell::new(Box::new(NullSession(name)) as Box<dyn Session>)),
        }
    }

    fn sample_channel() -> Channel {
        // bottom: net (all sendable), middle: fifo (DataEvent), top: app (DataEvent + init)
        Channel::new(
            ChannelId(1),
            "data",
            vec![
                slot("net", vec![EventSpec::Category(Category::Sendable)]),
                slot("fifo", vec![EventSpec::of::<DataEvent>()]),
                slot(
                    "app",
                    vec![EventSpec::of::<DataEvent>(), EventSpec::of::<ChannelInit>()],
                ),
            ],
        )
    }

    #[test]
    fn metadata_accessors() {
        let channel = sample_channel();
        assert_eq!(channel.id(), ChannelId(1));
        assert_eq!(channel.name(), "data");
        assert_eq!(channel.len(), 3);
        assert!(channel.has_layer("fifo"));
        assert!(!channel.has_layer("total"));
        assert!(channel.session_of("app").is_some());
        assert!(channel.session_at(9).is_none());
        assert_eq!(channel.layer_name_at(1).unwrap(), "fifo");
        assert!(channel.layer_name_at(9).is_none());
    }

    #[test]
    fn up_route_visits_accepting_sessions_in_order() {
        let mut channel = sample_channel();
        let data = DataEvent::to_group(NodeId(1), Message::new());

        let first = channel.next_hop(&data, Direction::Up, None).unwrap();
        assert_eq!(first, 0);
        let second = channel.next_hop(&data, Direction::Up, Some(first)).unwrap();
        assert_eq!(second, 1);
        let third = channel
            .next_hop(&data, Direction::Up, Some(second))
            .unwrap();
        assert_eq!(third, 2);
        assert_eq!(channel.next_hop(&data, Direction::Up, Some(third)), None);
    }

    #[test]
    fn down_route_skips_uninterested_sessions() {
        let mut channel = sample_channel();
        let init = ChannelInit {};

        // Only the app layer accepts ChannelInit, so going down from the top
        // it is the first and last stop.
        let first = channel.next_hop(&init, Direction::Down, None).unwrap();
        assert_eq!(first, 2);
        assert_eq!(channel.next_hop(&init, Direction::Down, Some(first)), None);
    }

    #[test]
    fn down_route_from_bottom_terminates() {
        let mut channel = sample_channel();
        let data = DataEvent::to_group(NodeId(1), Message::new());
        assert_eq!(channel.next_hop(&data, Direction::Down, Some(0)), None);
    }

    #[test]
    fn routes_are_cached_per_payload_type() {
        let mut channel = sample_channel();
        let data = DataEvent::to_group(NodeId(1), Message::new());
        let init = ChannelInit {};
        assert_eq!(channel.cached_route_count(), 0);
        channel.next_hop(&data, Direction::Up, None);
        channel.next_hop(&data, Direction::Down, None);
        assert_eq!(channel.cached_route_count(), 1);
        channel.next_hop(&init, Direction::Up, None);
        assert_eq!(channel.cached_route_count(), 2);
    }

    #[test]
    fn route_masks_combine_type_category_and_all_specs() {
        let mut channel = Channel::new(
            ChannelId(3),
            "mask",
            vec![
                slot("net", vec![EventSpec::Category(Category::Sendable)]),
                slot("log", vec![EventSpec::All]),
                slot("fifo", vec![EventSpec::of::<DataEvent>()]),
                slot("timer", vec![EventSpec::Category(Category::Timer)]),
            ],
        );
        let data = DataEvent::to_group(NodeId(1), Message::new());
        // Sendable category (net) + All (log) + concrete type (fifo).
        assert_eq!(channel.route_mask(&data), 0b0111);
        let timer = TimerExpired {
            owner: "fifo".into(),
            tag: 0,
            timer_id: 1,
        };
        // All (log) + Timer category (timer).
        assert_eq!(channel.route_mask(&timer), 0b1010);
        let init = ChannelInit {};
        // Only the All slot.
        assert_eq!(channel.route_mask(&init), 0b0010);
    }

    #[test]
    fn empty_channel_has_no_hops() {
        let mut channel = Channel::new(ChannelId(9), "empty", vec![]);
        let data = DataEvent::to_group(NodeId(1), Message::new());
        assert_eq!(channel.next_hop(&data, Direction::Up, None), None);
        assert!(channel.is_empty());
    }

    #[test]
    fn deepest_supported_stack_routes_to_both_ends() {
        let slots: Vec<StackSlot> = (0..MAX_STACK_DEPTH)
            .map(|_| slot("relay", vec![EventSpec::All]))
            .collect();
        let mut channel = Channel::new(ChannelId(7), "deep", slots);
        let data = DataEvent::to_group(NodeId(1), Message::new());
        assert_eq!(channel.next_hop(&data, Direction::Up, None), Some(0));
        assert_eq!(channel.next_hop(&data, Direction::Up, Some(62)), Some(63));
        assert_eq!(channel.next_hop(&data, Direction::Up, Some(63)), None);
        assert_eq!(channel.next_hop(&data, Direction::Down, None), Some(63));
        assert_eq!(channel.next_hop(&data, Direction::Down, Some(1)), Some(0));
    }
}
