//! Test utilities for exercising a single layer in isolation.
//!
//! [`Harness`] builds a three-slot channel — a capturing layer at the bottom,
//! the layer under test in the middle and a capturing layer at the top — so a
//! test can inject events from either end and observe exactly what the layer
//! forwards in each direction, without standing up a full protocol stack.

use std::cell::RefCell;
use std::rc::Rc;

use crate::channel::ChannelId;
use crate::config::{ChannelConfig, LayerSpec};
use crate::event::{Direction, Event, EventSpec};
use crate::kernel::{EventContext, Kernel};
use crate::layer::{Layer, LayerParams};
use crate::platform::Platform;
use crate::session::Session;
use crate::timer::TimerKey;

/// Which end of the stack a capture layer sits at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum End {
    Top,
    Bottom,
}

struct CaptureLayer {
    end: End,
    sink: Rc<RefCell<Vec<Event>>>,
}

struct CaptureSession {
    end: End,
    // bound: test-harness capture; the driving test empties it via drain_up/drain_down.
    sink: Rc<RefCell<Vec<Event>>>,
}

impl Layer for CaptureLayer {
    fn name(&self) -> &str {
        match self.end {
            End::Top => "capture-top",
            End::Bottom => "capture-bottom",
        }
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::All]
    }

    fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
        Box::new(CaptureSession {
            end: self.end,
            sink: self.sink.clone(),
        })
    }
}

impl Session for CaptureSession {
    fn layer_name(&self) -> &str {
        match self.end {
            End::Top => "capture-top",
            End::Bottom => "capture-bottom",
        }
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        let arriving = matches!(
            (self.end, event.direction),
            (End::Top, Direction::Up) | (End::Bottom, Direction::Down)
        );
        if arriving {
            self.sink.borrow_mut().push(event);
        } else {
            ctx.forward(event);
        }
    }
}

/// A single-layer test harness.
pub struct Harness {
    kernel: Kernel,
    channel: ChannelId,
    top: Rc<RefCell<Vec<Event>>>,
    bottom: Rc<RefCell<Vec<Event>>>,
}

impl Harness {
    /// Builds a harness around one layer instance configured with `params`.
    pub fn new(
        layer: impl Layer + 'static,
        params: &LayerParams,
        platform: &mut dyn Platform,
    ) -> Self {
        let top = Rc::new(RefCell::new(Vec::new()));
        let bottom = Rc::new(RefCell::new(Vec::new()));
        let mut kernel = Kernel::new();
        let layer_name = layer.name().to_string();
        kernel.layers_mut().register(layer);
        kernel.layers_mut().register(CaptureLayer {
            end: End::Top,
            sink: top.clone(),
        });
        kernel.layers_mut().register(CaptureLayer {
            end: End::Bottom,
            sink: bottom.clone(),
        });

        let mut spec = LayerSpec::new(layer_name);
        spec.params = params.clone();
        let config = ChannelConfig::new("harness")
            .with_layer(LayerSpec::new("capture-bottom"))
            .with_layer(spec)
            .with_layer(LayerSpec::new("capture-top"));
        let channel = kernel
            .create_channel(&config, platform)
            .expect("harness channel creation cannot fail");
        // Discard anything produced during ChannelInit so tests start clean.
        top.borrow_mut().clear();
        bottom.borrow_mut().clear();
        Self {
            kernel,
            channel,
            top,
            bottom,
        }
    }

    /// The kernel backing the harness (e.g. to fire timers).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The harness channel id.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// Injects an event at the bottom/top edge (according to its direction),
    /// processes to completion and returns everything that reached the *top*.
    pub fn run_up(&mut self, event: Event, platform: &mut dyn Platform) -> Vec<Event> {
        self.kernel
            .dispatch_and_process(self.channel, event, platform);
        self.drain_up()
    }

    /// Injects an event, processes to completion and returns everything that
    /// reached the *bottom*.
    pub fn run_down(&mut self, event: Event, platform: &mut dyn Platform) -> Vec<Event> {
        self.kernel
            .dispatch_and_process(self.channel, event, platform);
        self.drain_down()
    }

    /// Events captured at the top since the last drain.
    pub fn drain_up(&mut self) -> Vec<Event> {
        std::mem::take(&mut *self.top.borrow_mut())
    }

    /// Events captured at the bottom since the last drain.
    pub fn drain_down(&mut self) -> Vec<Event> {
        std::mem::take(&mut *self.bottom.borrow_mut())
    }

    /// Reports a fired timer to the kernel and returns what reached the top.
    pub fn fire_timer(&mut self, key: TimerKey, platform: &mut dyn Platform) {
        self.kernel.timer_expired(key, platform);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::DataEvent;
    use crate::layers::LoggerLayer;
    use crate::message::Message;
    use crate::platform::{NodeId, TestPlatform};

    #[test]
    fn harness_routes_events_through_the_layer_under_test() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut harness = Harness::new(LoggerLayer, &LayerParams::new(), &mut platform);

        let up = harness.run_up(
            Event::up(DataEvent::to_group(
                NodeId(2),
                Message::with_payload(&b"u"[..]),
            )),
            &mut platform,
        );
        assert_eq!(up.len(), 1);
        assert!(harness.drain_down().is_empty());

        let down = harness.run_down(
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"d"[..]),
            )),
            &mut platform,
        );
        assert_eq!(down.len(), 1);
        assert!(harness.drain_up().is_empty());
    }
}
