//! Declarative channel descriptions — the AppiaXML analogue.
//!
//! The Morpheus Core subsystem ships stack configurations to every node as a
//! small XML-like textual description; each node's local module hands the
//! parsed [`ChannelConfig`] to the kernel, which instantiates (or replaces)
//! the channel dynamically. This module provides the data model
//! ([`LayerSpec`], [`ChannelConfig`], [`StackConfig`]), the textual format
//! and its parser.
//!
//! Layers are listed **bottom-first**: the first `<layer>` element is the
//! layer closest to the network.
//!
//! ```
//! use morpheus_appia::config::ChannelConfig;
//!
//! let text = r#"
//! <channel name="data">
//!   <layer name="network"/>
//!   <layer name="mecho">
//!     <param key="mode" value="wireless"/>
//!   </layer>
//!   <layer name="app"/>
//! </channel>
//! "#;
//! let config = ChannelConfig::from_xml(text).unwrap();
//! assert_eq!(config.name, "data");
//! assert_eq!(config.layers.len(), 3);
//! assert_eq!(config.layers[1].params.get("mode").unwrap(), "wireless");
//! ```

mod model;
mod parser;

pub use model::{ChannelConfig, LayerSpec, StackConfig};
pub use parser::{parse_document, Element};
