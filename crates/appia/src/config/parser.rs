//! A tiny XML-subset parser for channel descriptions.
//!
//! The subset is deliberately small: elements, attributes, self-closing tags
//! and comments. There are no namespaces, processing instructions, CDATA
//! sections or entities beyond the five predefined ones. Text content between
//! elements is ignored (the configuration format carries all information in
//! attributes).

use std::collections::BTreeMap;

use crate::error::AppiaError;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order (keyed, last occurrence wins).
    pub attributes: BTreeMap<String, String>,
    /// Child elements in document order.
    pub children: Vec<Element>,
}

impl Element {
    /// Creates an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attributes: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// Looks up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes.get(key).map(String::as_str)
    }

    /// Looks up a required attribute, reporting a configuration error if missing.
    pub fn require_attr(&self, key: &str) -> Result<&str, AppiaError> {
        self.attr(key).ok_or_else(|| {
            AppiaError::Config(format!(
                "element <{}> is missing attribute `{}`",
                self.name, key
            ))
        })
    }

    /// All children with the given tag name, in document order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |child| child.name == name)
    }

    /// Serialises the element (and its subtree) back to text.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out, 0);
        out
    }

    fn write_xml(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (key, value) in &self.attributes {
            out.push(' ');
            out.push_str(key);
            out.push_str("=\"");
            out.push_str(&escape(value));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
        } else {
            out.push_str(">\n");
            for child in &self.children {
                child.write_xml(out, indent + 1);
            }
            out.push_str(&pad);
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
        }
    }
}

/// Escapes the characters that are special inside attribute values.
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(value: &str) -> Result<String, AppiaError> {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(ch) = chars.next() {
        if ch != '&' {
            out.push(ch);
            continue;
        }
        let mut entity = String::new();
        for next in chars.by_ref() {
            if next == ';' {
                break;
            }
            entity.push(next);
            if entity.len() > 8 {
                return Err(AppiaError::Config(format!(
                    "unterminated entity `&{entity}`"
                )));
            }
        }
        match entity.as_str() {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other => return Err(AppiaError::Config(format!("unknown entity `&{other};`"))),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> AppiaError {
        AppiaError::Config(format!("{} (at byte {})", message.into(), self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.input[self.pos..].starts_with(prefix.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        Some(byte)
    }

    fn skip_whitespace_and_text(&mut self) {
        while let Some(byte) = self.peek() {
            if byte == b'<' {
                break;
            }
            self.pos += 1;
        }
    }

    fn skip_comments_and_prolog(&mut self) -> Result<(), AppiaError> {
        loop {
            self.skip_whitespace_and_text();
            if self.starts_with("<!--") {
                match find_subslice(&self.input[self.pos..], b"-->") {
                    Some(offset) => self.pos += offset + 3,
                    None => return Err(self.error("unterminated comment")),
                }
            } else if self.starts_with("<?") {
                match find_subslice(&self.input[self.pos..], b"?>") {
                    Some(offset) => self.pos += offset + 2,
                    None => return Err(self.error("unterminated processing instruction")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, AppiaError> {
        let start = self.pos;
        while let Some(byte) = self.peek() {
            if byte.is_ascii_alphanumeric()
                || byte == b'-'
                || byte == b'_'
                || byte == b'.'
                || byte == b':'
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_attributes(&mut self) -> Result<BTreeMap<String, String>, AppiaError> {
        let mut attributes = BTreeMap::new();
        loop {
            self.skip_spaces();
            match self.peek() {
                Some(b'/') | Some(b'>') | None => return Ok(attributes),
                _ => {}
            }
            let key = self.parse_name()?;
            self.skip_spaces();
            if self.bump() != Some(b'=') {
                return Err(self.error(format!("expected `=` after attribute `{key}`")));
            }
            self.skip_spaces();
            let quote = self.bump();
            if quote != Some(b'"') && quote != Some(b'\'') {
                return Err(self.error(format!("expected quoted value for attribute `{key}`")));
            }
            let quote = quote.unwrap();
            let start = self.pos;
            while let Some(byte) = self.peek() {
                if byte == quote {
                    break;
                }
                self.pos += 1;
            }
            if self.peek() != Some(quote) {
                return Err(self.error(format!("unterminated value for attribute `{key}`")));
            }
            let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            self.pos += 1;
            attributes.insert(key, unescape(&raw)?);
        }
    }

    fn parse_element(&mut self) -> Result<Element, AppiaError> {
        if self.bump() != Some(b'<') {
            return Err(self.error("expected `<`"));
        }
        let name = self.parse_name()?;
        let attributes = self.parse_attributes()?;
        let mut element = Element {
            name,
            attributes,
            children: Vec::new(),
        };

        self.skip_spaces();
        if self.starts_with("/>") {
            self.pos += 2;
            return Ok(element);
        }
        if self.bump() != Some(b'>') {
            return Err(self.error(format!("malformed start tag for <{}>", element.name)));
        }

        loop {
            self.skip_comments_and_prolog()?;
            if self.peek().is_none() {
                return Err(self.error(format!("missing closing tag for <{}>", element.name)));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let closing = self.parse_name()?;
                if closing != element.name {
                    return Err(self.error(format!(
                        "mismatched closing tag: expected </{}>, found </{closing}>",
                        element.name
                    )));
                }
                self.skip_spaces();
                if self.bump() != Some(b'>') {
                    return Err(self.error("malformed closing tag"));
                }
                return Ok(element);
            }
            element.children.push(self.parse_element()?);
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Parses a document containing a single root element.
pub fn parse_document(input: &str) -> Result<Element, AppiaError> {
    let mut parser = Parser::new(input);
    parser.skip_comments_and_prolog()?;
    if parser.peek().is_none() {
        return Err(AppiaError::Config("empty document".into()));
    }
    let root = parser.parse_element()?;
    parser.skip_comments_and_prolog()?;
    if parser.peek().is_some() {
        return Err(parser.error("unexpected content after root element"));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let doc = parse_document(
            r#"
            <!-- a stack description -->
            <stack name="hybrid">
              <channel name="data">
                <layer name="network"/>
                <layer name="mecho">
                  <param key="mode" value="wireless"/>
                </layer>
              </channel>
            </stack>
            "#,
        )
        .unwrap();

        assert_eq!(doc.name, "stack");
        assert_eq!(doc.attr("name"), Some("hybrid"));
        let channel = doc.children_named("channel").next().unwrap();
        assert_eq!(channel.attr("name"), Some("data"));
        assert_eq!(channel.children.len(), 2);
        let mecho = &channel.children[1];
        assert_eq!(mecho.attr("name"), Some("mecho"));
        assert_eq!(mecho.children[0].attr("key"), Some("mode"));
        assert_eq!(mecho.children[0].attr("value"), Some("wireless"));
    }

    #[test]
    fn roundtrips_through_to_xml() {
        let original = Element::new("stack")
            .with_attr("name", "x")
            .with_child(Element::new("channel").with_attr("name", "data"));
        let text = original.to_xml();
        let parsed = parse_document(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn handles_escaped_attribute_values() {
        let element = Element::new("param").with_attr("value", "a<b&\"c\"");
        let text = element.to_xml();
        let parsed = parse_document(&text).unwrap();
        assert_eq!(parsed.attr("value"), Some("a<b&\"c\""));
    }

    #[test]
    fn rejects_mismatched_closing_tags() {
        let err = parse_document("<a><b></a></a>").unwrap_err();
        assert!(err.to_string().contains("mismatched closing tag"));
    }

    #[test]
    fn rejects_missing_closing_tag() {
        let err = parse_document("<a><b/>").unwrap_err();
        assert!(err.to_string().contains("missing closing tag"));
    }

    #[test]
    fn rejects_unknown_entities() {
        let err = parse_document(r#"<a x="&bogus;"/>"#).unwrap_err();
        assert!(err.to_string().contains("unknown entity"));
    }

    #[test]
    fn rejects_empty_documents() {
        assert!(parse_document("   \n ").is_err());
        assert!(parse_document("<!-- only a comment -->").is_err());
    }

    #[test]
    fn rejects_trailing_content() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert!(err.to_string().contains("unexpected content"));
    }

    #[test]
    fn require_attr_reports_missing_keys() {
        let element = Element::new("layer");
        assert!(element.require_attr("name").is_err());
    }

    #[test]
    fn accepts_prolog_and_single_quotes() {
        let doc = parse_document("<?xml version='1.0'?><a x='1'/>").unwrap();
        assert_eq!(doc.attr("x"), Some("1"));
    }
}
