//! The channel/stack configuration data model.

use serde::{Deserialize, Serialize};

use crate::config::parser::{parse_document, Element};
use crate::error::{AppiaError, Result};
use crate::layer::LayerParams;

/// One layer slot in a channel description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Registered name of the layer.
    pub layer: String,
    /// Parameters handed to the layer when creating its session.
    #[serde(default)]
    pub params: LayerParams,
    /// When set, the session is shared: channels (and successive
    /// configurations of the same channel) naming the same share key reuse
    /// the same session instance, preserving its state.
    #[serde(default)]
    pub share: Option<String>,
}

impl LayerSpec {
    /// Creates a layer spec with no parameters.
    pub fn new(layer: impl Into<String>) -> Self {
        Self {
            layer: layer.into(),
            params: LayerParams::new(),
            share: None,
        }
    }

    /// Adds a parameter (builder style).
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Marks the session as shared under the given key (builder style).
    pub fn shared(mut self, key: impl Into<String>) -> Self {
        self.share = Some(key.into());
        self
    }

    fn to_element(&self) -> Element {
        let mut element = Element::new("layer").with_attr("name", &self.layer);
        if let Some(share) = &self.share {
            element = element.with_attr("share", share);
        }
        for (key, value) in &self.params {
            element = element.with_child(
                Element::new("param")
                    .with_attr("key", key)
                    .with_attr("value", value),
            );
        }
        element
    }

    fn from_element(element: &Element) -> Result<Self> {
        if element.name != "layer" {
            return Err(AppiaError::Config(format!(
                "expected <layer>, found <{}>",
                element.name
            )));
        }
        let mut spec = LayerSpec::new(element.require_attr("name")?);
        if let Some(share) = element.attr("share") {
            spec.share = Some(share.to_string());
        }
        for param in element.children_named("param") {
            spec.params.insert(
                param.require_attr("key")?.to_string(),
                param.require_attr("value")?.to_string(),
            );
        }
        Ok(spec)
    }
}

/// A declarative description of one channel: its name plus its layer stack,
/// listed bottom-first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Channel name, unique within a kernel.
    pub name: String,
    /// Layer stack, bottom-first.
    pub layers: Vec<LayerSpec>,
}

impl ChannelConfig {
    /// Creates an empty channel configuration.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer at the top of the stack (builder style).
    pub fn with_layer(mut self, layer: LayerSpec) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer by name with no parameters (builder style).
    pub fn with_layer_named(self, name: impl Into<String>) -> Self {
        self.with_layer(LayerSpec::new(name))
    }

    /// Names of the layers, bottom-first.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|spec| spec.layer.as_str()).collect()
    }

    /// Whether the stack contains the given layer.
    pub fn has_layer(&self, name: &str) -> bool {
        self.layers.iter().any(|spec| spec.layer == name)
    }

    /// Returns a copy with one layer replaced by another spec (used by
    /// adaptation policies that swap a single micro-protocol).
    pub fn with_layer_replaced(&self, name: &str, replacement: LayerSpec) -> Self {
        let mut config = self.clone();
        for spec in &mut config.layers {
            if spec.layer == name {
                *spec = replacement;
                return config;
            }
        }
        config.layers.push(replacement);
        config
    }

    fn to_element(&self) -> Element {
        let mut element = Element::new("channel").with_attr("name", &self.name);
        for layer in &self.layers {
            element = element.with_child(layer.to_element());
        }
        element
    }

    /// Builds a configuration from a parsed `<channel>` element.
    pub fn from_element(element: &Element) -> Result<Self> {
        if element.name != "channel" {
            return Err(AppiaError::Config(format!(
                "expected <channel>, found <{}>",
                element.name
            )));
        }
        let mut config = ChannelConfig::new(element.require_attr("name")?);
        for child in element.children_named("layer") {
            config.layers.push(LayerSpec::from_element(child)?);
        }
        if config.layers.is_empty() {
            return Err(AppiaError::Config(format!(
                "channel `{}` declares no layers",
                config.name
            )));
        }
        Ok(config)
    }

    /// Serialises the configuration to the textual description format.
    pub fn to_xml(&self) -> String {
        self.to_element().to_xml()
    }

    /// Parses a configuration from the textual description format.
    pub fn from_xml(text: &str) -> Result<Self> {
        Self::from_element(&parse_document(text)?)
    }
}

/// A named set of channel configurations (the unit the Core subsystem ships
/// to nodes during adaptation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackConfig {
    /// Name of the stack configuration (e.g. `"homogeneous"`, `"hybrid-mobile"`).
    pub name: String,
    /// The channels making up the configuration.
    pub channels: Vec<ChannelConfig>,
}

impl StackConfig {
    /// Creates an empty stack configuration.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            channels: Vec::new(),
        }
    }

    /// Adds a channel (builder style).
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channels.push(channel);
        self
    }

    /// The channel with the given name, if present.
    pub fn channel(&self, name: &str) -> Option<&ChannelConfig> {
        self.channels.iter().find(|channel| channel.name == name)
    }

    /// Serialises the stack to the textual description format.
    pub fn to_xml(&self) -> String {
        let mut element = Element::new("stack").with_attr("name", &self.name);
        for channel in &self.channels {
            element = element.with_child(channel.to_element());
        }
        element.to_xml()
    }

    /// Parses a stack from the textual description format.
    pub fn from_xml(text: &str) -> Result<Self> {
        let root = parse_document(text)?;
        if root.name != "stack" {
            return Err(AppiaError::Config(format!(
                "expected <stack>, found <{}>",
                root.name
            )));
        }
        let mut stack = StackConfig::new(root.require_attr("name")?);
        for child in root.children_named("channel") {
            stack.channels.push(ChannelConfig::from_element(child)?);
        }
        Ok(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hybrid_channel() -> ChannelConfig {
        ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(
                LayerSpec::new("mecho")
                    .with_param("mode", "wireless")
                    .with_param("relay", "0"),
            )
            .with_layer(LayerSpec::new("app"))
    }

    #[test]
    fn channel_xml_roundtrip() {
        let config = hybrid_channel();
        let text = config.to_xml();
        let parsed = ChannelConfig::from_xml(&text).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn stack_xml_roundtrip() {
        let stack = StackConfig::new("hybrid")
            .with_channel(hybrid_channel())
            .with_channel(
                ChannelConfig::new("ctrl")
                    .with_layer_named("network")
                    .with_layer_named("app"),
            );
        let text = stack.to_xml();
        let parsed = StackConfig::from_xml(&text).unwrap();
        assert_eq!(parsed, stack);
        assert!(parsed.channel("ctrl").is_some());
        assert!(parsed.channel("nope").is_none());
    }

    #[test]
    fn channel_requires_layers() {
        assert!(ChannelConfig::from_xml(r#"<channel name="empty"></channel>"#).is_err());
    }

    #[test]
    fn layer_replacement_swaps_in_place() {
        let config = hybrid_channel();
        let replaced = config.with_layer_replaced("mecho", LayerSpec::new("beb"));
        assert_eq!(replaced.layer_names(), vec!["network", "beb", "app"]);
        assert!(!replaced.has_layer("mecho"));

        let appended = config.with_layer_replaced("missing", LayerSpec::new("extra"));
        assert_eq!(appended.layers.len(), config.layers.len() + 1);
    }

    #[test]
    fn shared_sessions_survive_the_roundtrip() {
        let config = ChannelConfig::new("ctrl")
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("vsync").shared("group-state"))
            .with_layer(LayerSpec::new("app"));
        let parsed = ChannelConfig::from_xml(&config.to_xml()).unwrap();
        assert_eq!(parsed.layers[1].share.as_deref(), Some("group-state"));
    }

    #[test]
    fn wrong_root_elements_are_rejected() {
        assert!(ChannelConfig::from_xml("<stack name=\"x\"/>").is_err());
        assert!(StackConfig::from_xml("<channel name=\"x\"/>").is_err());
    }
}
