//! Error types for the protocol kernel.

use std::fmt;

use crate::wire::WireError;

/// Errors raised by the protocol composition and execution kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppiaError {
    /// A layer name used in a channel configuration is not registered.
    UnknownLayer(String),
    /// A channel with the given name does not exist.
    UnknownChannel(String),
    /// A channel with the given name already exists.
    DuplicateChannel(String),
    /// An event type received from the wire has no registered factory.
    UnknownEventType(String),
    /// A QoS composition failed validation (missing required events, empty stack, ...).
    InvalidComposition(String),
    /// A declarative stack description could not be parsed.
    Config(String),
    /// A wire-level encoding or decoding failure.
    Wire(WireError),
}

impl fmt::Display for AppiaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppiaError::UnknownLayer(name) => write!(f, "unknown layer `{name}`"),
            AppiaError::UnknownChannel(name) => write!(f, "unknown channel `{name}`"),
            AppiaError::DuplicateChannel(name) => write!(f, "channel `{name}` already exists"),
            AppiaError::UnknownEventType(name) => write!(f, "unknown event type `{name}`"),
            AppiaError::InvalidComposition(reason) => write!(f, "invalid composition: {reason}"),
            AppiaError::Config(reason) => write!(f, "configuration error: {reason}"),
            AppiaError::Wire(err) => write!(f, "wire error: {err}"),
        }
    }
}

impl std::error::Error for AppiaError {}

impl From<WireError> for AppiaError {
    fn from(err: WireError) -> Self {
        AppiaError::Wire(err)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AppiaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            AppiaError::UnknownLayer("beb".into()).to_string(),
            "unknown layer `beb`"
        );
        assert_eq!(
            AppiaError::UnknownChannel("data".into()).to_string(),
            "unknown channel `data`"
        );
        assert_eq!(
            AppiaError::DuplicateChannel("data".into()).to_string(),
            "channel `data` already exists"
        );
        assert_eq!(
            AppiaError::UnknownEventType("Foo".into()).to_string(),
            "unknown event type `Foo`"
        );
    }

    #[test]
    fn wire_errors_convert() {
        let err: AppiaError = WireError::UnexpectedEof.into();
        assert!(matches!(err, AppiaError::Wire(_)));
        assert!(err.to_string().contains("wire error"));
    }
}
