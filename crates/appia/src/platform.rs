//! The boundary between the protocol kernel and the outside world.
//!
//! The kernel never talks to a clock, a socket or an application directly.
//! Instead every side effect is expressed against the [`Platform`] trait:
//! reading the local time and node profile, sending packets, arming timers
//! and delivering data to the application. The simulated testbed
//! (`morpheus-testbed`) provides a deterministic implementation backed by the
//! discrete-event network simulator; a production deployment would provide
//! one backed by UDP sockets and an OS timer wheel.

use std::collections::VecDeque;
use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::channel::ChannelId;
use crate::intern::Name;
use crate::timer::TimerKey;
use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// Identifier of a node (participant) in the distributed system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw numeric identifier.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl Wire for NodeId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.0);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.get_u32()?))
    }
}

/// The class of device a node runs on.
///
/// The paper's evaluation uses fixed PCs (Windows/Linux) and HP iPAQ PDAs on
/// an 802.11b wireless network; the device class is the primary context
/// attribute driving the Mecho adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A fixed PC or server connected to the wired infrastructure.
    FixedPc,
    /// A laptop: mobile but comparatively well resourced.
    Laptop,
    /// A PDA-class mobile device on a wireless link (e.g. HP iPAQ 5550).
    MobilePda,
    /// A mobile phone class device, the most constrained class.
    MobilePhone,
}

impl DeviceClass {
    /// Whether the device is battery powered and wireless.
    pub fn is_mobile(self) -> bool {
        matches!(
            self,
            DeviceClass::Laptop | DeviceClass::MobilePda | DeviceClass::MobilePhone
        )
    }

    /// Whether the device sits on the fixed (wired) infrastructure.
    pub fn is_fixed(self) -> bool {
        !self.is_mobile()
    }

    /// A coarse relative resource score used by relay-selection heuristics.
    pub fn resource_score(self) -> u32 {
        match self {
            DeviceClass::FixedPc => 100,
            DeviceClass::Laptop => 60,
            DeviceClass::MobilePda => 25,
            DeviceClass::MobilePhone => 10,
        }
    }

    /// Stable wire tag for the class.
    pub fn tag(self) -> u8 {
        match self {
            DeviceClass::FixedPc => 0,
            DeviceClass::Laptop => 1,
            DeviceClass::MobilePda => 2,
            DeviceClass::MobilePhone => 3,
        }
    }

    /// Reverse of [`DeviceClass::tag`].
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(DeviceClass::FixedPc),
            1 => Ok(DeviceClass::Laptop),
            2 => Ok(DeviceClass::MobilePda),
            3 => Ok(DeviceClass::MobilePhone),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DeviceClass::FixedPc => "fixed-pc",
            DeviceClass::Laptop => "laptop",
            DeviceClass::MobilePda => "mobile-pda",
            DeviceClass::MobilePhone => "mobile-phone",
        };
        f.write_str(name)
    }
}

impl Wire for DeviceClass {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.tag());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        DeviceClass::from_tag(r.get_u8()?)
    }
}

/// The locally observable system context of a node.
///
/// This is the "system context" the paper restricts itself to: information
/// that can be inferred from network interfaces and operating system calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// The node's identifier.
    pub node_id: NodeId,
    /// The class of device the node runs on.
    pub device_class: DeviceClass,
    /// Remaining battery charge in `[0, 1]`; fixed devices report `1.0`.
    pub battery_level: f64,
    /// Quality of the local network link in `[0, 1]`.
    pub link_quality: f64,
    /// Nominal bandwidth of the local link, in kbit/s.
    pub bandwidth_kbps: u32,
    /// Observed message loss rate of the local link in `[0, 1]`.
    pub error_rate: f64,
    /// Whether the local network segment offers native (IP) multicast.
    pub has_native_multicast: bool,
}

impl NodeProfile {
    /// A profile for a fixed PC on a LAN, the paper's "fixed participant".
    pub fn fixed_pc(node_id: NodeId) -> Self {
        Self {
            node_id,
            device_class: DeviceClass::FixedPc,
            battery_level: 1.0,
            link_quality: 1.0,
            bandwidth_kbps: 100_000,
            error_rate: 0.0,
            has_native_multicast: false,
        }
    }

    /// A profile for a PDA on an 802.11b cell, the paper's "mobile participant".
    pub fn mobile_pda(node_id: NodeId) -> Self {
        Self {
            node_id,
            device_class: DeviceClass::MobilePda,
            battery_level: 1.0,
            link_quality: 0.8,
            bandwidth_kbps: 11_000,
            error_rate: 0.0,
            has_native_multicast: false,
        }
    }
}

impl Wire for NodeProfile {
    fn encode(&self, w: &mut WireWriter) {
        self.node_id.encode(w);
        self.device_class.encode(w);
        w.put_f64(self.battery_level);
        w.put_f64(self.link_quality);
        w.put_u32(self.bandwidth_kbps);
        w.put_f64(self.error_rate);
        w.put_bool(self.has_native_multicast);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            node_id: NodeId::decode(r)?,
            device_class: DeviceClass::decode(r)?,
            battery_level: r.get_f64()?,
            link_quality: r.get_f64()?,
            bandwidth_kbps: r.get_u32()?,
            error_rate: r.get_f64()?,
            has_native_multicast: r.get_bool()?,
        })
    }
}

/// Classification of a packet, used for accounting.
///
/// The paper's Figure 3 counts *all* messages transmitted by the mobile
/// device, "including data and control messages"; keeping the class on every
/// packet lets the testbed report both the aggregate and the breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Application data traffic.
    Data,
    /// Group communication control traffic (membership, flush, acks, ...).
    Control,
    /// Context dissemination traffic (Cocaditem publications).
    Context,
    /// Loss-repair traffic (NACK digests, pulls and re-streamed originals).
    Repair,
    /// Overlay maintenance traffic (partial-view membership, shuffles,
    /// per-room tree grafts and prunes).
    Overlay,
}

impl PacketClass {
    /// Stable wire tag.
    pub fn tag(self) -> u8 {
        match self {
            PacketClass::Data => 0,
            PacketClass::Control => 1,
            PacketClass::Context => 2,
            PacketClass::Repair => 3,
            PacketClass::Overlay => 4,
        }
    }

    /// Reverse of [`PacketClass::tag`].
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(PacketClass::Data),
            1 => Ok(PacketClass::Control),
            2 => Ok(PacketClass::Context),
            3 => Ok(PacketClass::Repair),
            4 => Ok(PacketClass::Overlay),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

impl Wire for PacketClass {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.tag());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        PacketClass::from_tag(r.get_u8()?)
    }
}

/// Destination of an outgoing packet at the network-driver level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketDest {
    /// A single node, reached by a point-to-point transmission.
    Node(NodeId),
    /// The local broadcast/multicast domain (native multicast).
    Broadcast,
}

/// A packet handed by the kernel to the platform for transmission.
#[derive(Debug, Clone)]
pub struct OutPacket {
    /// Sending node.
    pub from: NodeId,
    /// Destination.
    pub dest: PacketDest,
    /// Accounting class.
    pub class: PacketClass,
    /// Name of the channel the packet belongs to (interned: cloning a
    /// packet or its channel name is a refcount bump, not an allocation).
    pub channel: Name,
    /// Serialised event (type name + message) as produced by the kernel.
    pub payload: Bytes,
}

/// A packet delivered by the platform to the kernel of the receiving node.
#[derive(Debug, Clone)]
pub struct InPacket {
    /// Original sender.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Accounting class.
    pub class: PacketClass,
    /// Name of the channel the packet belongs to (interned).
    pub channel: Name,
    /// Serialised event payload.
    pub payload: Bytes,
}

/// What a delivery to the application contains.
#[derive(Debug, Clone, PartialEq)]
pub enum DeliveryKind {
    /// Application data from another participant.
    Data {
        /// The original sender.
        from: NodeId,
        /// Application payload bytes.
        payload: Bytes,
    },
    /// The group membership changed; the new view is reported.
    ViewChange {
        /// Monotonically increasing view identifier.
        view_id: u64,
        /// Members of the new view, in ascending node-id order.
        members: Vec<NodeId>,
    },
    /// The communication stack underneath the channel was reconfigured.
    Reconfigured {
        /// Name of the stack configuration that is now installed.
        stack: String,
    },
    /// A distributed reconfiguration round completed: every live member
    /// acknowledged the deployment. Reported by the coordinator only.
    ReconfigurationComplete {
        /// Name of the stack configuration the group agreed on.
        stack: String,
        /// Epoch of the completed round.
        epoch: u64,
        /// Time between round initiation and the last acknowledgement, in
        /// milliseconds.
        latency_ms: u64,
        /// Command retransmissions the round needed (0 on loss-free links).
        retransmits: u64,
        /// Number of members that acknowledged (live quorum size).
        nodes: usize,
    },
    /// A restarted member completed its view-synchronous state transfer and
    /// is a full group member again. Reported by the recovery layer on the
    /// rejoining node.
    Rejoined {
        /// The donor the snapshot was streamed from (the local node for a
        /// degenerate solo view with nothing to transfer).
        donor: NodeId,
        /// Total snapshot bytes transferred.
        bytes: u64,
        /// Number of chunks the snapshot was streamed in.
        chunks: u32,
        /// Transfer epochs used (1 = the first donor succeeded; more means
        /// donor failover happened mid-transfer).
        transfer_epochs: u64,
        /// Time from restart (channel creation) to installed state, in
        /// milliseconds.
        elapsed_ms: u64,
    },
    /// A member that outlived its repair-log retention window (long
    /// partition) closed the gap with a targeted state-section pull instead
    /// of a full rejoin: no restart, no view change, no stack teardown.
    /// Reported by the recovery layer on the healed node.
    CaughtUp {
        /// The member the snapshot sections were pulled from (the repair
        /// floor's sender).
        donor: NodeId,
        /// Total snapshot bytes transferred.
        bytes: u64,
        /// Number of chunks the snapshot was streamed in.
        chunks: u32,
    },
    /// The local context store first covered the whole group membership:
    /// a snapshot is now known for every participant. Reported once per
    /// membership by the context dissemination layer, so testbeds can
    /// measure how long digest anti-entropy takes to converge.
    ContextConverged {
        /// Number of participants covered.
        nodes: usize,
    },
    /// A free-form notification (used by tests and diagnostics).
    Notification(String),
}

/// A delivery from the protocol stack to the local application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppDelivery {
    /// The channel the delivery originates from (interned).
    pub channel: Name,
    /// The delivered content.
    pub kind: DeliveryKind,
}

/// A request, raised from inside a session, asking the node runtime to
/// replace a channel's stack.
///
/// Sessions cannot call back into the kernel that is executing them, so the
/// Core subsystem's local module records the desired configuration here; the
/// node runtime applies it (via [`crate::kernel::Kernel::replace_channel`])
/// once event processing has finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigRequest {
    /// Name of the channel whose stack should be replaced.
    pub channel: String,
    /// Name of the stack configuration being installed (for reporting).
    pub stack_name: String,
    /// The declarative channel description, in the textual format produced by
    /// [`crate::config::ChannelConfig::to_xml`].
    pub description: String,
    /// Reconfiguration epoch the deployment belongs to. The local module
    /// stamps its acknowledgement with this epoch so the coordinator can
    /// reject acknowledgements left over from earlier rounds.
    pub epoch: u64,
    /// The coordinator that initiated the round (where the acknowledgement
    /// must be sent once the deployment succeeded).
    pub coordinator: NodeId,
}

/// The kernel's window onto the outside world.
///
/// Implementations must be cheap to call: handlers invoke these methods many
/// times while processing a single event.
pub trait Platform {
    /// Current local time in milliseconds since an arbitrary epoch.
    fn now_ms(&self) -> u64;

    /// Identifier of the local node.
    fn node_id(&self) -> NodeId;

    /// A snapshot of the locally observable system context.
    fn profile(&self) -> NodeProfile;

    /// Queues a packet for transmission.
    fn send(&mut self, packet: OutPacket);

    /// Arms a one-shot timer that fires `delay_ms` from now.
    fn set_timer(&mut self, delay_ms: u64, key: TimerKey);

    /// Cancels a previously armed timer. Cancelling an unknown timer is a no-op.
    fn cancel_timer(&mut self, key: TimerKey);

    /// Delivers data or a notification to the local application.
    fn deliver(&mut self, delivery: AppDelivery);

    /// Returns a pseudo-random value. Implementations should be deterministic
    /// under a fixed seed so experiments are reproducible.
    fn random_u64(&mut self) -> u64;

    /// Records a request to replace a channel's stack. The node runtime
    /// applies it after event processing finishes.
    fn request_reconfiguration(&mut self, request: ReconfigRequest);
}

/// A simple in-memory [`Platform`] used by unit tests throughout the
/// workspace.
///
/// It records every side effect so tests can assert on the exact packets,
/// timers and deliveries produced by a stack.
#[derive(Debug)]
pub struct TestPlatform {
    /// Current simulated time (tests advance it manually).
    pub now_ms: u64,
    /// Profile reported to the kernel.
    pub profile: NodeProfile,
    /// Packets sent, in order.
    pub sent: Vec<OutPacket>,
    /// Timers armed, in order: `(fire_at_ms, key)`.
    pub timers: Vec<(u64, TimerKey)>,
    /// Timers cancelled, in order.
    pub cancelled: Vec<TimerKey>,
    /// Deliveries to the application, in order.
    pub deliveries: VecDeque<AppDelivery>,
    /// Reconfiguration requests raised by sessions, in order.
    pub reconfig_requests: Vec<ReconfigRequest>,
    rng_state: u64,
}

impl TestPlatform {
    /// Creates a test platform for a fixed PC with the given node id.
    pub fn new(node_id: NodeId) -> Self {
        Self::with_profile(NodeProfile::fixed_pc(node_id))
    }

    /// Creates a test platform with an explicit profile.
    pub fn with_profile(profile: NodeProfile) -> Self {
        Self {
            now_ms: 0,
            profile,
            sent: Vec::new(),
            timers: Vec::new(),
            cancelled: Vec::new(),
            deliveries: VecDeque::new(),
            reconfig_requests: Vec::new(),
            rng_state: 0x9E3779B97F4A7C15,
        }
    }

    /// Advances the local clock.
    pub fn advance(&mut self, delta_ms: u64) {
        self.now_ms += delta_ms;
    }

    /// Drains and returns all packets sent so far.
    pub fn take_sent(&mut self) -> Vec<OutPacket> {
        std::mem::take(&mut self.sent)
    }

    /// Drains and returns all application deliveries so far.
    pub fn take_deliveries(&mut self) -> Vec<AppDelivery> {
        self.deliveries.drain(..).collect()
    }

    /// Number of data deliveries currently queued.
    pub fn data_delivery_count(&self) -> usize {
        self.deliveries
            .iter()
            .filter(|d| matches!(d.kind, DeliveryKind::Data { .. }))
            .count()
    }
}

impl Platform for TestPlatform {
    fn now_ms(&self) -> u64 {
        self.now_ms
    }

    fn node_id(&self) -> NodeId {
        self.profile.node_id
    }

    fn profile(&self) -> NodeProfile {
        self.profile.clone()
    }

    fn send(&mut self, packet: OutPacket) {
        self.sent.push(packet);
    }

    fn set_timer(&mut self, delay_ms: u64, key: TimerKey) {
        self.timers.push((self.now_ms + delay_ms, key));
    }

    fn cancel_timer(&mut self, key: TimerKey) {
        self.cancelled.push(key);
    }

    fn deliver(&mut self, delivery: AppDelivery) {
        self.deliveries.push_back(delivery);
    }

    fn random_u64(&mut self) -> u64 {
        // SplitMix64: deterministic and good enough for tie-breaking in tests.
        self.rng_state = self.rng_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn request_reconfiguration(&mut self, request: ReconfigRequest) {
        self.reconfig_requests.push(request);
    }
}

/// Helper: a [`TimerKey`] for the given channel and timer id.
pub fn timer_key(channel: ChannelId, timer_id: u64) -> TimerKey {
    TimerKey { channel, timer_id }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_class_predicates() {
        assert!(DeviceClass::MobilePda.is_mobile());
        assert!(DeviceClass::MobilePhone.is_mobile());
        assert!(DeviceClass::Laptop.is_mobile());
        assert!(DeviceClass::FixedPc.is_fixed());
        assert!(DeviceClass::FixedPc.resource_score() > DeviceClass::MobilePda.resource_score());
    }

    #[test]
    fn device_class_wire_roundtrip() {
        for class in [
            DeviceClass::FixedPc,
            DeviceClass::Laptop,
            DeviceClass::MobilePda,
            DeviceClass::MobilePhone,
        ] {
            let bytes = class.to_bytes();
            assert_eq!(DeviceClass::from_bytes(&bytes).unwrap(), class);
        }
        assert!(DeviceClass::from_tag(200).is_err());
    }

    #[test]
    fn node_profile_wire_roundtrip() {
        let profile = NodeProfile::mobile_pda(NodeId(7));
        let bytes = profile.to_bytes();
        assert_eq!(NodeProfile::from_bytes(&bytes).unwrap(), profile);
    }

    #[test]
    fn packet_class_wire_roundtrip() {
        for class in [
            PacketClass::Data,
            PacketClass::Control,
            PacketClass::Context,
            PacketClass::Repair,
            PacketClass::Overlay,
        ] {
            let bytes = class.to_bytes();
            assert_eq!(PacketClass::from_bytes(&bytes).unwrap(), class);
        }
    }

    #[test]
    fn test_platform_records_side_effects() {
        let mut platform = TestPlatform::new(NodeId(1));
        platform.advance(10);
        platform.set_timer(5, timer_key(ChannelId(1), 42));
        platform.send(OutPacket {
            from: NodeId(1),
            dest: PacketDest::Node(NodeId(2)),
            class: PacketClass::Data,
            channel: "data".into(),
            payload: Bytes::from_static(b"x"),
        });
        platform.deliver(AppDelivery {
            channel: "data".into(),
            kind: DeliveryKind::Notification("hi".into()),
        });

        assert_eq!(platform.timers, vec![(15, timer_key(ChannelId(1), 42))]);
        assert_eq!(platform.take_sent().len(), 1);
        assert_eq!(platform.take_deliveries().len(), 1);
    }

    #[test]
    fn test_platform_rng_is_deterministic() {
        let mut a = TestPlatform::new(NodeId(1));
        let mut b = TestPlatform::new(NodeId(1));
        let seq_a: Vec<u64> = (0..8).map(|_| a.random_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.random_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).raw(), 3);
    }
}
