//! Pure codec smoke target for the wire format, kept free of clocks,
//! threads and file I/O so it runs under `cargo miri test` unmodified —
//! the CI `miri` job drives exactly this test. Under Miri the sweep sizes
//! shrink (interpretation is ~1000× slower than native), but every code
//! path is still exercised at least once.

use morpheus_appia::wire::{Wire, WireError, WireReader, WireWriter};

#[cfg(miri)]
const SWEEP_BUFFERS: usize = 8;
#[cfg(not(miri))]
const SWEEP_BUFFERS: usize = 256;

/// Deterministic pseudo-random byte stream (no OS entropy: replays
/// identically everywhere, including under Miri).
struct Lcg(u64);

impl Lcg {
    fn next_byte(&mut self) -> u8 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (self.0 >> 56) as u8
    }
}

#[test]
fn scalars_roundtrip() {
    let mut w = WireWriter::new();
    w.put_u8(0xAB);
    w.put_bool(false);
    w.put_u16(u16::MAX);
    w.put_u32(1);
    w.put_u64(u64::MAX);
    w.put_i64(i64::MIN);
    w.put_f64(-0.25);
    let bytes = w.finish();

    let mut r = WireReader::new(&bytes);
    assert_eq!(r.get_u8().unwrap(), 0xAB);
    assert!(!r.get_bool().unwrap());
    assert_eq!(r.get_u16().unwrap(), u16::MAX);
    assert_eq!(r.get_u32().unwrap(), 1);
    assert_eq!(r.get_u64().unwrap(), u64::MAX);
    assert_eq!(r.get_i64().unwrap(), i64::MIN);
    assert_eq!(r.get_f64().unwrap(), -0.25);
    assert_eq!(r.remaining(), 0);
}

#[test]
fn compound_values_roundtrip() {
    let value = vec!["".to_string(), "héllo".to_string(), "x".repeat(300)];
    let decoded = Vec::<String>::from_bytes(&value.to_bytes()).unwrap();
    assert_eq!(decoded, value);

    let mut w = WireWriter::new();
    w.put_bytes(&[0, 255, 1, 254]);
    w.put_u32_list(&[7; 9]);
    w.put_u64_list(&[u64::MAX, 0]);
    let bytes = w.finish();
    let mut r = WireReader::new(&bytes);
    assert_eq!(r.get_bytes().unwrap().as_ref(), &[0, 255, 1, 254]);
    assert_eq!(r.get_u32_list().unwrap(), vec![7; 9]);
    assert_eq!(r.get_u64_list().unwrap(), vec![u64::MAX, 0]);
}

/// Every truncation of a valid encoding must decode to a clean error —
/// never a panic, never an out-of-bounds read (the property Miri checks at
/// the memory-model level).
#[test]
fn truncated_input_errors_cleanly() {
    let value = vec!["abc".to_string(), "defgh".to_string()];
    let bytes = value.to_bytes();
    for len in 0..bytes.len() {
        let err = Vec::<String>::from_bytes(&bytes[..len]);
        assert!(err.is_err(), "truncation to {len} bytes must not decode");
    }
}

/// Pseudo-random garbage buffers must never panic any reader primitive.
#[test]
fn garbage_input_never_panics() {
    let mut rng = Lcg(0x5EED_0001);
    for round in 0..SWEEP_BUFFERS {
        let len = round % 40;
        let buf: Vec<u8> = (0..len).map(|_| rng.next_byte()).collect();

        let mut r = WireReader::new(&buf);
        let _ = r.get_u32();
        let _ = r.get_str();
        let _ = r.get_bytes();
        let _ = r.get_u64_list();

        let _ = Vec::<String>::from_bytes(&buf);
        let _ = u64::from_bytes(&buf);
        let _ = String::from_bytes(&buf);
    }
}

/// Absurd length prefixes are rejected by the sanity limit instead of
/// triggering a huge allocation.
#[test]
fn hostile_length_prefix_is_rejected() {
    let mut w = WireWriter::new();
    w.put_u32(u32::MAX);
    let bytes = w.finish();
    let mut r = WireReader::new(&bytes);
    assert!(matches!(
        r.get_bytes().unwrap_err(),
        WireError::LengthOutOfRange(_) | WireError::UnexpectedEof
    ));
}
