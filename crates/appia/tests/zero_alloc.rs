//! Proof that the kernel's dispatch loop is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; after warming a
//! channel (route memo populated, queue capacity grown, scratch buffer
//! sized), dispatching pre-built events through the full stack — routing,
//! session hand-off, serialisation and packet emission — must perform **zero
//! heap allocations**.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use morpheus_appia::config::{ChannelConfig, LayerSpec};
use morpheus_appia::event::{Dest, Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::{
    AppDelivery, NodeId, NodeProfile, OutPacket, Platform, ReconfigRequest,
};
use morpheus_appia::session::Session;
use morpheus_appia::timer::TimerKey;
use morpheus_appia::Kernel;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The allocation counter is process-global, but the test harness runs the
/// tests in this binary on parallel threads by default: an allocation made
/// by a *concurrently running* test used to land inside another test's
/// measured window and fail it spuriously (the "flaky under load" symptom).
/// Every test takes this lock around its whole body, so exactly one measured
/// window exists at a time.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

fn measured() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another test's assertion failed; the
    // counter itself is still sound.
    MEASURE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A platform that consumes every side effect immediately, so packet bytes
/// split from the kernel's scratch buffer are dropped and the buffer can be
/// recycled — exactly how a zero-copy network backend would behave.
struct SinkPlatform {
    profile: NodeProfile,
    sent: u64,
    delivered: u64,
}

impl SinkPlatform {
    fn new(node: NodeId) -> Self {
        Self {
            profile: NodeProfile::fixed_pc(node),
            sent: 0,
            delivered: 0,
        }
    }
}

impl Platform for SinkPlatform {
    fn now_ms(&self) -> u64 {
        0
    }

    fn node_id(&self) -> NodeId {
        self.profile.node_id
    }

    fn profile(&self) -> NodeProfile {
        self.profile.clone()
    }

    fn send(&mut self, packet: OutPacket) {
        self.sent += 1;
        drop(packet);
    }

    fn set_timer(&mut self, _delay_ms: u64, _key: TimerKey) {}

    fn cancel_timer(&mut self, _key: TimerKey) {}

    fn deliver(&mut self, delivery: AppDelivery) {
        self.delivered += 1;
        drop(delivery);
    }

    fn random_u64(&mut self) -> u64 {
        7
    }

    fn request_reconfiguration(&mut self, _request: ReconfigRequest) {}
}

struct PassThroughLayer {
    name: &'static str,
}

struct PassThroughSession {
    name: &'static str,
}

impl Layer for PassThroughLayer {
    fn name(&self) -> &str {
        self.name
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::All]
    }

    fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
        Box::new(PassThroughSession { name: self.name })
    }
}

impl Session for PassThroughSession {
    fn layer_name(&self) -> &str {
        self.name
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        ctx.forward(event);
    }
}

const RELAY_NAMES: [&str; 6] = ["relay0", "relay1", "relay2", "relay3", "relay4", "relay5"];

fn build_kernel() -> (Kernel, SinkPlatform, morpheus_appia::ChannelId) {
    let mut kernel = Kernel::new();
    for name in RELAY_NAMES {
        kernel.layers_mut().register(PassThroughLayer { name });
    }
    let mut config = ChannelConfig::new("hotpath").with_layer(LayerSpec::new("network"));
    for name in RELAY_NAMES {
        config = config.with_layer(LayerSpec::new(name));
    }
    config = config.with_layer(LayerSpec::new("app"));

    let mut platform = SinkPlatform::new(NodeId(1));
    let id = kernel.create_channel(&config, &mut platform).unwrap();
    (kernel, platform, id)
}

fn make_events(count: usize) -> Vec<Event> {
    (0..count)
        .map(|_| {
            Event::down(DataEvent::new(
                NodeId(1),
                Dest::Node(NodeId(2)),
                Message::with_payload(&b"steady-state"[..]),
            ))
        })
        .collect()
}

#[test]
fn steady_state_event_hops_perform_zero_allocations() {
    let _window = measured();
    let (mut kernel, mut platform, id) = build_kernel();

    // Warm-up: populate the route memo, grow the event queue and size the
    // packet scratch buffer.
    for event in make_events(64) {
        kernel.dispatch_and_process(id, event, &mut platform);
    }
    assert_eq!(platform.sent, 64, "warm-up packets reached the sink");

    // Events are built outside the measured window: constructing a payload
    // necessarily boxes it, but routing and serialising it must not touch
    // the allocator.
    let events = make_events(256);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for event in events {
        kernel.dispatch_and_process(id, event, &mut platform);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        platform.sent,
        64 + 256,
        "every steady-state send was serialised and emitted"
    );
    assert_eq!(
        after - before,
        0,
        "kernel dispatch + serialisation allocated {} times over 256 warm sends",
        after - before
    );
}

#[test]
fn batched_dispatch_is_also_allocation_free_after_warmup() {
    let _window = measured();
    let (mut kernel, mut platform, id) = build_kernel();

    // Warm-up includes a batch of the same size so the queue has capacity
    // for the whole batch.
    kernel.dispatch_batch_and_process(id, make_events(128), &mut platform);

    let events = make_events(128);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    kernel.dispatch_batch_and_process(id, events, &mut platform);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(platform.sent, 256);
    assert_eq!(
        after - before,
        0,
        "batched dispatch allocated {} times",
        after - before
    );
}

#[test]
fn upward_delivery_path_is_allocation_free() {
    let _window = measured();
    let (mut kernel, mut platform, id) = build_kernel();

    let make_up_events = |count: usize| -> Vec<Event> {
        (0..count)
            .map(|_| {
                Event::up(DataEvent::new(
                    NodeId(2),
                    Dest::Node(NodeId(1)),
                    Message::with_payload(&b"inbound"[..]),
                ))
            })
            .collect()
    };

    for event in make_up_events(32) {
        kernel.dispatch_and_process(id, event, &mut platform);
    }
    assert_eq!(platform.delivered, 32);

    let events = make_up_events(128);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for event in events {
        kernel.dispatch_and_process(id, event, &mut platform);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(platform.delivered, 32 + 128);
    assert_eq!(
        after - before,
        0,
        "upward delivery allocated {} times",
        after - before
    );
}
