//! Invariants of the dense bitmask route tables and interned identifiers
//! across channel reconfiguration.
//!
//! The route table of a channel is folded once at build time; these tests
//! pin the behaviours that must survive the kernel's hot-path optimisations:
//! routes reflect the *current* stack after [`Kernel::replace_channel`]
//! (stale memoised masks from the old stack must not leak), sessions shared
//! by key keep their state across replacements now that names are interned,
//! and timer ownership round-trips through interned layer names.

use std::cell::RefCell;
use std::rc::Rc;

use morpheus_appia::config::{ChannelConfig, LayerSpec};
use morpheus_appia::event::{Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, DataEvent, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::{DeliveryKind, NodeId, TestPlatform};
use morpheus_appia::session::Session;
use morpheus_appia::Kernel;

/// A layer that absorbs every downward `DataEvent` (a "firewall").
struct AbsorbLayer;

struct AbsorbSession;

impl Layer for AbsorbLayer {
    fn name(&self) -> &str {
        "absorb"
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::of::<DataEvent>()]
    }

    fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
        Box::new(AbsorbSession)
    }
}

impl Session for AbsorbSession {
    fn layer_name(&self) -> &str {
        "absorb"
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        if event.direction == Direction::Up {
            ctx.forward(event);
        }
        // Downward data is dropped.
    }
}

/// A stateful counting layer whose sessions can be shared between stacks.
struct CounterLayer {
    counts: Rc<RefCell<Vec<u64>>>,
}

struct CounterSession {
    slot: usize,
    counts: Rc<RefCell<Vec<u64>>>,
}

impl Layer for CounterLayer {
    fn name(&self) -> &str {
        "counter"
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::of::<DataEvent>()]
    }

    fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
        let mut counts = self.counts.borrow_mut();
        let slot = counts.len();
        counts.push(0);
        Box::new(CounterSession {
            slot,
            counts: self.counts.clone(),
        })
    }
}

impl Session for CounterSession {
    fn layer_name(&self) -> &str {
        "counter"
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<DataEvent>() {
            self.counts.borrow_mut()[self.slot] += 1;
        }
        ctx.forward(event);
    }
}

/// A layer that arms a timer on init and reports the expiry owner upward as
/// an application notification.
struct TimerProbeLayer;

struct TimerProbeSession;

impl Layer for TimerProbeLayer {
    fn name(&self) -> &str {
        "timer-probe"
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
        ]
    }

    fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
        Box::new(TimerProbeSession)
    }
}

impl Session for TimerProbeSession {
    fn layer_name(&self) -> &str {
        "timer-probe"
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            ctx.set_timer(10, 42);
            ctx.forward(event);
            return;
        }
        if let Some(expired) = event.get::<TimerExpired>() {
            // Interned owner names still compare against plain `&str`.
            if expired.owner == "timer-probe" {
                ctx.deliver(DeliveryKind::Notification(format!(
                    "owned timer tag {} on {}",
                    expired.tag,
                    ctx.channel_name()
                )));
                return;
            }
            ctx.forward(event);
        }
    }
}

fn data_to(node: u32) -> Event {
    Event::down(DataEvent::new(
        NodeId(1),
        morpheus_appia::event::Dest::Node(NodeId(node)),
        Message::with_payload(&b"x"[..]),
    ))
}

#[test]
fn routes_reflect_the_new_stack_after_replace_channel() {
    let mut kernel = Kernel::new();
    kernel.layers_mut().register(AbsorbLayer);
    let mut platform = TestPlatform::new(NodeId(1));

    let blocked = ChannelConfig::new("data")
        .with_layer(LayerSpec::new("network"))
        .with_layer(LayerSpec::new("absorb"))
        .with_layer(LayerSpec::new("app"));
    let id = kernel.create_channel(&blocked, &mut platform).unwrap();

    // The absorbing layer sits on the data route: nothing reaches the wire.
    // This also warms the route memo for DataEvent on the old stack.
    kernel.dispatch_and_process(id, data_to(2), &mut platform);
    assert!(
        platform.take_sent().is_empty(),
        "absorb layer blocks the send"
    );

    let open = ChannelConfig::new("data")
        .with_layer(LayerSpec::new("network"))
        .with_layer(LayerSpec::new("app"));
    let id = kernel
        .replace_channel("data", &open, &mut platform)
        .unwrap();

    // The replacement built a fresh route table: the memoised mask of the
    // old stack must not shadow the new composition.
    kernel.dispatch_and_process(id, data_to(2), &mut platform);
    let sent = platform.take_sent();
    assert_eq!(
        sent.len(),
        1,
        "route now runs straight to the network driver"
    );
    assert_eq!(sent[0].channel, "data");

    let channel = kernel.channel_by_name("data").unwrap();
    assert_eq!(channel.layer_names(), vec!["network", "app"]);
    assert!(!channel.has_layer("absorb"));
}

#[test]
fn shared_sessions_preserve_state_across_replacement_with_interned_names() {
    let counts = Rc::new(RefCell::new(Vec::new()));
    let mut kernel = Kernel::new();
    kernel.layers_mut().register(CounterLayer {
        counts: counts.clone(),
    });
    let mut platform = TestPlatform::new(NodeId(1));

    let stack = |extra_logger: bool| {
        let mut config = ChannelConfig::new("data")
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("counter").shared("tally"));
        if extra_logger {
            config = config.with_layer(LayerSpec::new("logger"));
        }
        config.with_layer(LayerSpec::new("app"))
    };

    let id = kernel.create_channel(&stack(false), &mut platform).unwrap();
    kernel.dispatch_and_process(id, data_to(2), &mut platform);
    kernel.dispatch_and_process(id, data_to(2), &mut platform);

    // Replace with a different composition naming the same share key: the
    // session (and its count) must carry over.
    let id = kernel
        .replace_channel("data", &stack(true), &mut platform)
        .unwrap();
    for _ in 0..3 {
        kernel.dispatch_and_process(id, data_to(2), &mut platform);
    }

    assert_eq!(
        counts.borrow().len(),
        1,
        "exactly one session was ever created"
    );
    assert_eq!(
        counts.borrow()[0],
        5,
        "counts accumulated across the replacement"
    );

    // And the rebuilt route table still includes the shared slot.
    let channel = kernel.channel_by_name("data").unwrap();
    assert_eq!(
        channel.layer_names(),
        vec!["network", "counter", "logger", "app"]
    );
}

#[test]
fn timer_ownership_round_trips_through_interned_names() {
    let mut kernel = Kernel::new();
    kernel.layers_mut().register(TimerProbeLayer);
    let mut platform = TestPlatform::new(NodeId(1));

    let config = ChannelConfig::new("timers")
        .with_layer(LayerSpec::new("network"))
        .with_layer(LayerSpec::new("timer-probe"))
        .with_layer(LayerSpec::new("app"));
    kernel.create_channel(&config, &mut platform).unwrap();

    let (_, key) = platform
        .timers
        .pop()
        .expect("probe armed a timer during init");
    kernel.timer_expired(key, &mut platform);

    let notes: Vec<String> = platform
        .take_deliveries()
        .into_iter()
        .filter_map(|delivery| match delivery.kind {
            DeliveryKind::Notification(text) => Some(text),
            _ => None,
        })
        .collect();
    assert_eq!(notes, vec!["owned timer tag 42 on timers".to_string()]);
}

#[test]
fn every_channel_keeps_an_independent_route_memo() {
    let mut kernel = Kernel::new();
    let mut platform = TestPlatform::new(NodeId(1));

    let config = |name: &str| {
        ChannelConfig::new(name)
            .with_layer(LayerSpec::new("network"))
            .with_layer(LayerSpec::new("logger"))
            .with_layer(LayerSpec::new("app"))
    };
    let a = kernel.create_channel(&config("a"), &mut platform).unwrap();
    let b = kernel.create_channel(&config("b"), &mut platform).unwrap();

    kernel.dispatch_and_process(a, data_to(2), &mut platform);
    let sent = platform.take_sent();
    assert_eq!(sent.len(), 1);
    assert_eq!(sent[0].channel, "a");

    kernel.dispatch_and_process(b, data_to(3), &mut platform);
    let sent = platform.take_sent();
    assert_eq!(sent.len(), 1);
    assert_eq!(sent[0].channel, "b");
}
