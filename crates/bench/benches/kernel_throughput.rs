//! **Experiment E7** — kernel event-routing throughput: Appia-style stacks of
//! increasing depth, measuring events routed per second and the effect of the
//! per-type route cache (the "automatic optimisation of the flow of events").

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus_appia::config::{ChannelConfig, LayerSpec};
use morpheus_appia::event::{Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{Layer, LayerParams};
use morpheus_appia::platform::{NodeId, TestPlatform};
use morpheus_appia::session::Session;
use morpheus_appia::{Kernel, Message};
use morpheus_groupcomm::register_suite;

/// A trivial pass-through micro-protocol used to pad the stack to the
/// requested depth (each instance gets its own name so the composition stays
/// valid).
struct PassThroughLayer {
    name: String,
}

struct PassThroughSession {
    name: String,
}

impl Layer for PassThroughLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::All]
    }

    fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
        Box::new(PassThroughSession {
            name: self.name.clone(),
        })
    }
}

impl Session for PassThroughSession {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        ctx.forward(event);
    }
}

/// Builds a channel with `depth` pass-through layers between the best-effort
/// multicast layer and the application interface.
fn deep_stack(depth: usize) -> (Kernel, TestPlatform, morpheus_appia::ChannelId) {
    let mut kernel = Kernel::new();
    register_suite(&mut kernel);
    for index in 0..depth {
        kernel.layers_mut().register(PassThroughLayer {
            name: format!("relay{index}"),
        });
    }
    let mut platform = TestPlatform::new(NodeId(1));
    let mut config = ChannelConfig::new("bench")
        .with_layer(LayerSpec::new("network"))
        .with_layer(LayerSpec::new("beb").with_param("members", "1,2,3,4"));
    for index in 0..depth {
        config = config.with_layer(LayerSpec::new(format!("relay{index}")));
    }
    config = config.with_layer(LayerSpec::new("app"));
    let id = kernel.create_channel(&config, &mut platform).unwrap();
    (kernel, platform, id)
}

fn send_events(
    kernel: &mut Kernel,
    platform: &mut TestPlatform,
    id: morpheus_appia::ChannelId,
    count: usize,
) -> usize {
    for _ in 0..count {
        let event = Event::down(DataEvent::to_group(
            NodeId(1),
            Message::with_payload(&b"x"[..]),
        ));
        kernel.dispatch_and_process(id, event, platform);
    }
    platform.take_sent().len()
}

/// Same workload through the batch API: all events enqueued up front, one
/// queue drain for the whole batch.
fn send_events_batched(
    kernel: &mut Kernel,
    platform: &mut TestPlatform,
    id: morpheus_appia::ChannelId,
    count: usize,
) -> usize {
    kernel.dispatch_batch_and_process(
        id,
        (0..count).map(|_| {
            Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"x"[..]),
            ))
        }),
        platform,
    );
    platform.take_sent().len()
}

fn print_series() {
    eprintln!();
    eprintln!("=== Kernel event-routing: packets produced for 10k sends per stack depth ===");
    eprintln!("{:>18}  {:>12}", "pass-through layers", "packets");
    for depth in [0usize, 2, 4, 8, 12] {
        let (mut kernel, mut platform, id) = deep_stack(depth);
        let packets = send_events(&mut kernel, &mut platform, id, 10_000);
        eprintln!("{depth:>18}  {packets:>12}");
    }
    eprintln!();
}

fn bench_kernel(c: &mut Criterion) {
    print_series();

    let mut group = c.benchmark_group("kernel-throughput");
    for depth in [0usize, 4, 12] {
        group.bench_with_input(
            BenchmarkId::new("stack-depth", depth),
            &depth,
            |b, &depth| {
                let (mut kernel, mut platform, id) = deep_stack(depth);
                b.iter(|| send_events(&mut kernel, &mut platform, id, 100));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stack-depth-batched", depth),
            &depth,
            |b, &depth| {
                let (mut kernel, mut platform, id) = deep_stack(depth);
                b.iter(|| send_events_batched(&mut kernel, &mut platform, id, 100));
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernel
}
criterion_main!(benches);
