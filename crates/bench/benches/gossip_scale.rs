//! **Experiment E6** — epidemic multicast at scale: per-sender load and
//! delivery coverage of point-to-point best-effort multicast vs. gossip on
//! WAN groups of increasing size (paper Section 1 motivation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus_appia::platform::NodeId;
use morpheus_bench::{run, wan_scenario};
use morpheus_core::StackKind;

fn print_series() {
    let messages = 100;
    eprintln!();
    eprintln!("=== Gossip vs point-to-point at scale ({messages} messages from node 0) ===");
    eprintln!(
        "{:>8}  {:>24}  {:>24}",
        "nodes", "best-effort sender/cov", "gossip sender/cov"
    );
    for devices in [8usize, 16, 32, 64] {
        let expected = messages * (devices as u64 - 1);
        let mut cells = Vec::new();
        for stack in [
            StackKind::BestEffort,
            StackKind::Gossip { fanout: 3, ttl: 4 },
        ] {
            let report = run(&wan_scenario(devices, stack, messages));
            let sent = report.node(NodeId(0)).unwrap().sent_data;
            let coverage = 100.0 * report.total_app_deliveries() as f64 / expected as f64;
            cells.push(format!("{sent:>10} / {coverage:>6.1}%"));
        }
        eprintln!("{devices:>8}  {:>24}  {:>24}", cells[0], cells[1]);
    }
    eprintln!();
}

fn bench_gossip(c: &mut Criterion) {
    print_series();

    let mut group = c.benchmark_group("gossip-scale");
    for devices in [16usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("gossip", devices),
            &devices,
            |b, &devices| {
                b.iter(|| {
                    run(&wan_scenario(
                        devices,
                        StackKind::Gossip { fanout: 3, ttl: 4 },
                        50,
                    ))
                    .total_app_deliveries()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("best-effort", devices),
            &devices,
            |b, &devices| {
                b.iter(|| {
                    run(&wan_scenario(devices, StackKind::BestEffort, 50)).total_app_deliveries()
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gossip
}
criterion_main!(benches);
