//! **Experiment E3** — reconfiguration behaviour: how long the distributed
//! stack replacement takes (as reported by the coordinator) and that no chat
//! message is lost across the adaptation. The epoch-stamped protocol also
//! tolerates lossy control channels and crashes; the quick-mode companion
//! (`reconfig_latency_quick`) tracks those cases in CI.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus_bench::{figure3_scenario, run, MEASURED_MESSAGES, SERIES_MESSAGES};

fn print_series() {
    eprintln!();
    eprintln!("=== Reconfiguration during an adaptive chat run ({SERIES_MESSAGES} messages) ===");
    eprintln!(
        "{:>8}  {:>16}  {:>14}  {:>12}  {:>18}",
        "devices", "reconfigurations", "deliveries", "lost", "coordinator report"
    );
    for devices in [3usize, 6, 9] {
        let report = run(&figure3_scenario(devices, true, SERIES_MESSAGES));
        let notice = report
            .reconfiguration_notices()
            .first()
            .map(|text| text.to_string())
            .unwrap_or_else(|| "-".to_string());
        eprintln!(
            "{devices:>8}  {:>16}  {:>14}  {:>12}  {notice}",
            report.total_reconfigurations(),
            report.total_app_deliveries(),
            report.messages_lost,
        );
    }
    eprintln!();
}

fn bench_reconfig(c: &mut Criterion) {
    print_series();

    let mut group = c.benchmark_group("reconfiguration");
    for devices in [3usize, 6] {
        group.bench_with_input(
            BenchmarkId::new("adaptive-run", devices),
            &devices,
            |b, &devices| {
                b.iter(|| {
                    let report = run(&figure3_scenario(devices, true, MEASURED_MESSAGES));
                    assert!(report.total_reconfigurations() >= 1);
                    report.total_app_deliveries()
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_reconfig
}
criterion_main!(benches);
