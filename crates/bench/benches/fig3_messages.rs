//! **Figure 3** — messages sent by the mobile node vs. number of devices,
//! adapted (Mecho) vs. non-adapted best-effort multicast, plus the fixed
//! relay's load (paper footnote 1, experiment E4).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus_bench::{
    figure3_mobile_sent, figure3_scenario, run, MEASURED_MESSAGES, SERIES_MESSAGES,
};

fn print_series() {
    eprintln!();
    eprintln!(
        "=== Figure 3: messages sent by the mobile node ({SERIES_MESSAGES} chat messages) ==="
    );
    eprintln!(
        "{:>8}  {:>15}  {:>15}  {:>15}",
        "devices", "not optimized", "optimized", "fixed relay (opt)"
    );
    for devices in [2usize, 3, 4, 5, 6, 7, 8, 9] {
        let baseline = figure3_mobile_sent(devices, false, SERIES_MESSAGES);
        let optimized_report = run(&figure3_scenario(devices, true, SERIES_MESSAGES));
        let optimized = optimized_report.measured_mobile_sent();
        let relay = optimized_report.fixed_sent_total();
        eprintln!("{devices:>8}  {baseline:>15}  {optimized:>15}  {relay:>15}");
    }
    eprintln!();
}

fn bench_fig3(c: &mut Criterion) {
    print_series();

    let mut group = c.benchmark_group("figure3");
    for devices in [3usize, 6, 9] {
        group.bench_with_input(
            BenchmarkId::new("not-optimized", devices),
            &devices,
            |b, &devices| b.iter(|| figure3_mobile_sent(devices, false, MEASURED_MESSAGES)),
        );
        group.bench_with_input(
            BenchmarkId::new("optimized", devices),
            &devices,
            |b, &devices| b.iter(|| figure3_mobile_sent(devices, true, MEASURED_MESSAGES)),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig3
}
criterion_main!(benches);
