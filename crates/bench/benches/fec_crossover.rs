//! **Experiment E5** — the retransmission vs. forward-error-correction
//! crossover that motivates run-time adaptation (paper Section 2): delivery
//! ratio and sender overhead per strategy across loss rates.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus_appia::platform::NodeId;
use morpheus_bench::{loss_scenario, run, MEASURED_MESSAGES, SERIES_MESSAGES};
use morpheus_core::StackKind;

fn print_series() {
    let messages = SERIES_MESSAGES / 2;
    let expected = messages * 3;
    eprintln!();
    eprintln!("=== Loss handling: delivery ratio / sender transmissions ({messages} messages) ===");
    eprintln!(
        "{:>8}  {:>22}  {:>22}  {:>22}",
        "loss", "best-effort", "reliable (NACK)", "fec (k=4)"
    );
    for loss in [0.001, 0.01, 0.05, 0.10, 0.20] {
        let mut cells = Vec::new();
        for stack in [
            StackKind::BestEffort,
            StackKind::Reliable,
            StackKind::ErrorMasking { k: 4 },
        ] {
            let report = run(&loss_scenario(stack, loss, messages));
            let ratio = 100.0 * report.total_app_deliveries() as f64 / expected as f64;
            let sent = report.node(NodeId(0)).unwrap().sent_total();
            cells.push(format!("{ratio:>9.1}% / {sent:>8}"));
        }
        eprintln!(
            "{:>7.1}%  {}  {}  {}",
            loss * 100.0,
            cells[0],
            cells[1],
            cells[2]
        );
    }
    eprintln!();
}

fn bench_fec(c: &mut Criterion) {
    print_series();

    let mut group = c.benchmark_group("loss-handling");
    for (label, stack) in [
        ("reliable", StackKind::Reliable),
        ("fec", StackKind::ErrorMasking { k: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "10pct-loss"), &stack, |b, stack| {
            b.iter(|| {
                let report = run(&loss_scenario(stack.clone(), 0.10, MEASURED_MESSAGES));
                report.total_app_deliveries()
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fec
}
criterion_main!(benches);
