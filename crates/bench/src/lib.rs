//! Shared helpers for the Morpheus benchmark harness.
//!
//! Each Criterion bench regenerates one table or figure of the evaluation
//! (see `EXPERIMENTS.md` at the workspace root): it first prints the
//! reproduced data series to stderr, then measures the run time of a scaled
//! configuration so regressions in the protocol stack show up in CI.

use morpheus_appia::platform::NodeId;
use morpheus_core::StackKind;
use morpheus_testbed::{RunReport, Runner, Scenario, TopologyChoice, Workload};

/// Number of chat messages used when printing reproduced data series.
pub const SERIES_MESSAGES: u64 = 1_000;

/// Number of chat messages used inside Criterion measurement loops.
pub const MEASURED_MESSAGES: u64 = 200;

/// The paper's Figure 3 configuration at a reduced message count.
pub fn figure3_scenario(devices: usize, optimized: bool, messages: u64) -> Scenario {
    Scenario::figure3(devices, optimized, messages).with_seed(devices as u64)
}

/// Runs one Figure 3 configuration and returns the mobile node's total sends.
pub fn figure3_mobile_sent(devices: usize, optimized: bool, messages: u64) -> u64 {
    Runner::new()
        .run(&figure3_scenario(devices, optimized, messages))
        .measured_mobile_sent()
}

/// An all-mobile ad-hoc scenario with a fixed stack under a given loss rate
/// (experiment E5).
pub fn loss_scenario(stack: StackKind, loss: f64, messages: u64) -> Scenario {
    let mut scenario = Scenario::new(format!("loss{loss}-{}", stack.name()), 0, 4)
        .with_topology(TopologyChoice::AdHoc)
        .with_wireless_loss(loss)
        .with_initial_stack(stack)
        .with_seed((loss * 10_000.0) as u64 + 3)
        .non_adaptive();
    scenario.workload = Workload::paper_chat(vec![NodeId(0)], messages);
    scenario.workload.warmup_ms = 1000;
    scenario.cooldown_ms = 3000;
    scenario
}

/// A WAN scenario with a fixed stack (experiment E6).
pub fn wan_scenario(devices: usize, stack: StackKind, messages: u64) -> Scenario {
    let mut scenario = Scenario::new(format!("{devices}n-{}", stack.name()), devices, 0)
        .with_topology(TopologyChoice::Wan)
        .with_initial_stack(stack)
        .with_seed(devices as u64)
        .non_adaptive();
    scenario.workload = Workload::paper_chat(vec![NodeId(0)], messages);
    scenario.workload.warmup_ms = 1000;
    scenario.workload.interval_ms = 200;
    scenario.cooldown_ms = 5000;
    scenario.hb_interval_ms = 5000;
    scenario.suspect_timeout_ms = 60_000;
    scenario
}

/// Runs a scenario and returns its report (convenience wrapper).
pub fn run(scenario: &Scenario) -> RunReport {
    Runner::new().run(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_helpers_produce_consistent_shapes() {
        let scenario = figure3_scenario(5, true, 10);
        assert_eq!(scenario.device_count(), 5);
        assert!(scenario.adaptive);

        let loss = loss_scenario(StackKind::Reliable, 0.1, 10);
        assert_eq!(loss.device_count(), 4);
        assert!(!loss.adaptive);

        let wan = wan_scenario(8, StackKind::Gossip { fanout: 3, ttl: 4 }, 10);
        assert_eq!(wan.device_count(), 8);
    }
}
