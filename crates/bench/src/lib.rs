//! Shared helpers for the Morpheus benchmark harness.
//!
//! Each Criterion bench regenerates one table or figure of the evaluation
//! (see `EXPERIMENTS.md` at the workspace root): it first prints the
//! reproduced data series to stderr, then measures the run time of a scaled
//! configuration so regressions in the protocol stack show up in CI.

#![forbid(unsafe_code)]

use morpheus_appia::platform::NodeId;
use morpheus_core::StackKind;
use morpheus_testbed::{RunReport, Runner, Scenario, TopologyChoice, Workload};

/// Number of chat messages used when printing reproduced data series.
pub const SERIES_MESSAGES: u64 = 1_000;

/// Number of chat messages used inside Criterion measurement loops.
pub const MEASURED_MESSAGES: u64 = 200;

/// The paper's Figure 3 configuration at a reduced message count.
pub fn figure3_scenario(devices: usize, optimized: bool, messages: u64) -> Scenario {
    Scenario::figure3(devices, optimized, messages).with_seed(devices as u64)
}

/// Runs one Figure 3 configuration and returns the mobile node's total sends.
pub fn figure3_mobile_sent(devices: usize, optimized: bool, messages: u64) -> u64 {
    Runner::new()
        .run(&figure3_scenario(devices, optimized, messages))
        .measured_mobile_sent()
}

/// An all-mobile ad-hoc scenario with a fixed stack under a given loss rate
/// (experiment E5).
pub fn loss_scenario(stack: StackKind, loss: f64, messages: u64) -> Scenario {
    let mut scenario = Scenario::new(format!("loss{loss}-{}", stack.name()), 0, 4)
        .with_topology(TopologyChoice::AdHoc)
        .with_wireless_loss(loss)
        .with_initial_stack(stack)
        .with_seed((loss * 10_000.0) as u64 + 3)
        .non_adaptive();
    scenario.workload = Workload::paper_chat(vec![NodeId(0)], messages);
    scenario.workload.warmup_ms = 1000;
    scenario.cooldown_ms = 3000;
    scenario
}

/// A WAN scenario with a fixed stack (experiment E6).
pub fn wan_scenario(devices: usize, stack: StackKind, messages: u64) -> Scenario {
    let mut scenario = Scenario::new(format!("{devices}n-{}", stack.name()), devices, 0)
        .with_topology(TopologyChoice::Wan)
        .with_initial_stack(stack)
        .with_seed(devices as u64)
        .non_adaptive();
    scenario.workload = Workload::paper_chat(vec![NodeId(0)], messages);
    scenario.workload.warmup_ms = 1000;
    scenario.workload.interval_ms = 200;
    scenario.cooldown_ms = 5000;
    scenario.hb_interval_ms = 5000;
    scenario.suspect_timeout_ms = 60_000;
    scenario
}

/// Runs a scenario and returns its report (convenience wrapper).
pub fn run(scenario: &Scenario) -> RunReport {
    Runner::new().run(scenario)
}

/// Run metadata stamped into every quick-bench JSON so trajectories stay
/// comparable across PRs: which commit produced the numbers, under which
/// seed, at which group size and loss rate.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Seed of the (primary) scenario the bench runs.
    pub seed: u64,
    /// Group size of the primary scenario (`0` when not applicable, e.g.
    /// the kernel micro-bench).
    pub n: usize,
    /// Loss rate of the primary degraded configuration (`0.0` when the
    /// bench runs loss-free).
    pub loss: f64,
}

/// The commit the bench ran on: `GITHUB_SHA` in CI, `git rev-parse HEAD`
/// locally, `"unknown"` outside a work tree.
pub fn commit_id() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders the shared `"meta"` object every quick bench embeds in its JSON
/// output (hand-rolled: the workspace builds offline, without serde_json).
/// The caller splices it as one top-level member, e.g.
/// `json.push_str(&format!("  {},\n", metadata_json(&meta)))`.
pub fn metadata_json(meta: &RunMeta) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|elapsed| elapsed.as_secs())
        .unwrap_or(0);
    format!(
        "\"meta\": {{\"seed\": {}, \"commit\": \"{}\", \"n\": {}, \"loss\": {:.2}, \
         \"unix_time\": {}}}",
        meta.seed,
        commit_id(),
        meta.n,
        meta.loss,
        unix_time,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_helpers_produce_consistent_shapes() {
        let scenario = figure3_scenario(5, true, 10);
        assert_eq!(scenario.device_count(), 5);
        assert!(scenario.adaptive);

        let loss = loss_scenario(StackKind::Reliable, 0.1, 10);
        assert_eq!(loss.device_count(), 4);
        assert!(!loss.adaptive);

        let wan = wan_scenario(8, StackKind::Gossip { fanout: 3, ttl: 4 }, 10);
        assert_eq!(wan.device_count(), 8);
    }

    #[test]
    fn metadata_json_embeds_the_run_parameters() {
        let rendered = metadata_json(&RunMeta {
            seed: 7,
            n: 250,
            loss: 0.1,
        });
        assert!(rendered.starts_with("\"meta\": {"));
        assert!(rendered.contains("\"seed\": 7"));
        assert!(rendered.contains("\"n\": 250"));
        assert!(rendered.contains("\"loss\": 0.10"));
        assert!(rendered.contains("\"commit\": \""));
        assert!(rendered.contains("\"unix_time\": "));
    }
}
