//! Quick-mode room-sharding scale measurement.
//!
//! Runs the partial-view + per-room overlay simulation
//! ([`morpheus_overlay::RoomSimulation`]) across a Zipf room workload and
//! emits machine-readable results to `BENCH_room_shard.json`. The headline
//! claims, asserted after the results file is written:
//!
//! * **cost follows subscriptions** — at n = 500 with 1000 Zipf rooms, the
//!   top-decile subscriber pays at least 3× the median node's data+overlay
//!   bytes;
//! * **cost does not follow group size** — doubling the population from
//!   n = 250 to n = 500 while holding per-node subscriptions fixed (rooms
//!   scale with n) moves the median node's cost by less than 2×;
//! * **loss is repaired per room** — under 10% injected data loss, every
//!   room still delivers every message to every live subscriber;
//! * **churn is local** — crashed nodes rejoin through one contact's
//!   partial view, exchanging messages with a small fraction of the group
//!   rather than triggering a full-membership view change.
//!
//! Run with `cargo run --release -p morpheus-bench --bin room_shard_quick
//! [output-path]`.

#![forbid(unsafe_code)]

use morpheus_overlay::{RoomSimulation, SimConfig};

struct CaseResult {
    name: String,
    n: u32,
    rooms: u32,
    data_loss: f64,
    churn: u32,
    direct_rooms: usize,
    tree_rooms: usize,
    coverage: f64,
    fully_covered_rooms: usize,
    median_subscriptions: usize,
    median_cost: u64,
    top_decile_cost: u64,
    data_bytes: u64,
    overlay_bytes: u64,
    repair_bytes: u64,
    control_bytes: u64,
    rejoined: usize,
    rejoin_touched_max: usize,
    events_processed: u64,
    wall_ms: f64,
}

fn run_case(name: &str, cfg: SimConfig) -> CaseResult {
    let started = std::time::Instant::now();
    let report = RoomSimulation::new(cfg).run();
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    CaseResult {
        name: name.to_string(),
        n: cfg.nodes,
        rooms: cfg.rooms,
        data_loss: cfg.data_loss,
        churn: cfg.churn_count,
        direct_rooms: report.direct_rooms,
        tree_rooms: report.tree_rooms,
        coverage: report.coverage(),
        fully_covered_rooms: report.fully_covered_rooms(),
        median_subscriptions: report.median_subscriptions(),
        median_cost: report.median_cost(),
        top_decile_cost: report.top_decile_cost(),
        data_bytes: report.nodes.iter().map(|node| node.data_bytes).sum(),
        overlay_bytes: report.nodes.iter().map(|node| node.overlay_bytes).sum(),
        repair_bytes: report.nodes.iter().map(|node| node.repair_bytes).sum(),
        control_bytes: report.nodes.iter().map(|node| node.control_bytes).sum(),
        rejoined: report.rejoined.len(),
        rejoin_touched_max: report.rejoin_touched_max,
        events_processed: report.events_processed,
        wall_ms,
    }
}

/// The headline scenario: 500 nodes, 1000 Zipf rooms, 10% data loss.
fn headline(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        nodes: 500,
        rooms: 1000,
        zipf_exponent: 1.0,
        duration_ms: 30_000,
        publishes_per_room: 3,
        payload_bytes: 512,
        data_loss: 0.10,
        // Background membership maintenance is uniform per node; a chatty
        // shuffle cadence would bury the subscription-proportional cost the
        // bench measures under it.
        shuffle_interval_ms: 5_000,
        ..SimConfig::default()
    }
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_room_shard.json".into());
    let wall_budget_ms: f64 = std::env::var("BENCH_WALL_BUDGET_MS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(120_000.0);

    eprintln!("room-shard quick mode (wall budget per case: {wall_budget_ms:.0} ms)");
    eprintln!(
        "{:>18}  {:>5}  {:>6}  {:>5}  {:>9}  {:>9}  {:>5}  {:>10}  {:>10}  {:>9}",
        "case",
        "n",
        "rooms",
        "loss",
        "coverage",
        "full-rms",
        "subs",
        "median-B",
        "top10%-B",
        "wall-ms"
    );

    let results = vec![
        // The headline case the acceptance ratios read.
        run_case("rooms-n500-loss10", headline(17)),
        // Half the population with half the rooms: per-node subscriptions
        // stay fixed while the group doubles — the scale comparison.
        run_case(
            "rooms-n250-loss10",
            SimConfig {
                nodes: 250,
                rooms: 500,
                ..headline(17)
            },
        ),
        // Churn on top of loss: five subscribed nodes crash mid-run and
        // rejoin through a single contact each.
        run_case(
            "rooms-n500-churn5",
            SimConfig {
                churn_count: 5,
                churn_at_ms: 10_000,
                churn_restart_ms: 16_000,
                ..headline(17)
            },
        ),
    ];

    for result in &results {
        eprintln!(
            "{:>18}  {:>5}  {:>6}  {:>5.2}  {:>9.4}  {:>9}  {:>5}  {:>10}  {:>10}  {:>9.1}",
            result.name,
            result.n,
            result.rooms,
            result.data_loss,
            result.coverage,
            result.fully_covered_rooms,
            result.median_subscriptions,
            result.median_cost,
            result.top_decile_cost,
            result.wall_ms,
        );
    }
    eprintln!("per-component bytes on the wire (data / overlay / repair / control):");
    for result in &results {
        eprintln!(
            "{:>18}  {:>11} / {:>11} / {:>10} / {:>9}",
            result.name,
            result.data_bytes,
            result.overlay_bytes,
            result.repair_bytes,
            result.control_bytes,
        );
    }

    let n500 = &results[0];
    let n250 = &results[1];
    let churned = &results[2];
    let skew = n500.top_decile_cost as f64 / (n500.median_cost as f64).max(1.0);
    let scale_ratio = n500.median_cost as f64 / (n250.median_cost as f64).max(1.0);
    eprintln!(
        "cost skew at n=500: top-decile {} B vs median {} B — {skew:.1}x; \
         median cost n=250 -> n=500: {scale_ratio:.2}x",
        n500.top_decile_cost, n500.median_cost
    );

    let meta = morpheus_bench::RunMeta {
        seed: 17,
        n: 500,
        loss: 0.10,
    };

    // Hand-rolled JSON: the workspace builds offline, without serde_json.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"room-shard\",\n");
    json.push_str("  \"mode\": \"quick\",\n");
    json.push_str(&format!("  {},\n", morpheus_bench::metadata_json(&meta)));
    json.push_str(&format!("  \"top_decile_over_median\": {skew:.2},\n"));
    json.push_str(&format!(
        "  \"median_cost_scale_ratio\": {scale_ratio:.2},\n"
    ));
    json.push_str(&format!("  \"wall_budget_ms\": {wall_budget_ms:.0},\n"));
    json.push_str("  \"results\": [\n");
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"n\": {}, \"rooms\": {}, \"data_loss\": {:.2}, \
             \"churn\": {}, \"direct_rooms\": {}, \"tree_rooms\": {}, \
             \"coverage\": {:.4}, \"fully_covered_rooms\": {}, \
             \"median_subscriptions\": {}, \"median_cost_bytes\": {}, \
             \"top_decile_cost_bytes\": {}, \
             \"wire_bytes\": {{\"data\": {}, \"overlay\": {}, \"repair\": {}, \
             \"control\": {}}}, \
             \"rejoined\": {}, \"rejoin_touched_max\": {}, \
             \"events_processed\": {}, \"wall_ms\": {:.1}}}{}\n",
            result.name,
            result.n,
            result.rooms,
            result.data_loss,
            result.churn,
            result.direct_rooms,
            result.tree_rooms,
            result.coverage,
            result.fully_covered_rooms,
            result.median_subscriptions,
            result.median_cost,
            result.top_decile_cost,
            result.data_bytes,
            result.overlay_bytes,
            result.repair_bytes,
            result.control_bytes,
            result.rejoined,
            result.rejoin_touched_max,
            result.events_processed,
            result.wall_ms,
            if index + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&output, json).expect("write benchmark results");
    eprintln!("wrote {output}");

    // --- Assertions: the acceptance criteria of the room-sharded overlay
    // (after the results file is written, so failed runs still record data).

    // Cost follows subscriptions, not group size.
    assert!(
        skew >= 3.0,
        "top-decile subscribers must pay >= 3x the median node's data+overlay \
         bytes (got {skew:.1}x)"
    );
    assert!(
        scale_ratio < 2.0 && scale_ratio > 0.5,
        "median-node cost must stay flat (within 2x) when the group doubles at \
         fixed subscriptions (got {scale_ratio:.2}x)"
    );
    assert!(
        n500.median_subscriptions > 0 && n250.median_subscriptions > 0,
        "the scale comparison needs subscribed median nodes"
    );

    // Every room fully recovers from 10% data loss.
    assert_eq!(
        n500.fully_covered_rooms, n500.rooms as usize,
        "every room must deliver every message to every live subscriber under \
         10% data loss ({}/{} rooms fully covered)",
        n500.fully_covered_rooms, n500.rooms
    );

    // Churned nodes rejoin through the partial view, not a group-wide view
    // change: each rejoiner talks to a small fraction of the population.
    assert_eq!(
        churned.rejoined, churned.churn as usize,
        "every churned node must rejoin"
    );
    assert!(
        churned.rejoin_touched_max < churned.n as usize / 2,
        "a rejoin touched {} peers of {} — that is a group-wide view change",
        churned.rejoin_touched_max,
        churned.n
    );
    assert!(
        churned.coverage >= 0.95,
        "the room shards must keep delivering through churn (coverage {:.4})",
        churned.coverage
    );

    for result in &results {
        assert!(
            result.tree_rooms > 0 && result.direct_rooms > 0,
            "the per-room policy must split the workload across both stacks ({})",
            result.name
        );
        assert!(
            result.wall_ms <= wall_budget_ms,
            "{} must stay within the CI wall budget ({:.0} ms > {wall_budget_ms:.0} ms)",
            result.name,
            result.wall_ms
        );
    }
}
