//! Quick-mode many-to-many chat measurement on the epidemic data stack.
//!
//! Runs the `chat_fanin` scenario — every member sends, at n = 250 by
//! default, with 10% of all data-channel transmissions dropped — and emits
//! machine-readable results to `BENCH_chat_fanin.json`. The headline
//! comparison is epidemic delivery coverage at n = 250:
//!
//! * **repair-off-ttl4** — the pre-repair baseline: the pure push phase
//!   under the old hard-coded `fanout=3/ttl=4` policy (the configuration
//!   the ROADMAP recorded at ~90-95% coverage);
//! * **repair-off** — the push phase alone, with the TTL now derived from
//!   the live view size by the policy layer;
//! * **repair-on** — the full bimodal design: size-derived push phase plus
//!   the NACK/anti-entropy repair pass.
//!
//! Per case it reports coverage %, repair pulls/pushes/repaired deliveries,
//! the duplicate ratio and delivered msgs/s of wall time; it asserts that
//! with repair on coverage is ≥ 99.9% while not a single message is lost on
//! live links (`messages_lost == 0` — the injected drops are accounted
//! separately), and that the pre-repair baseline really is visibly worse,
//! so the recorded comparison stays honest.
//!
//! Run with `cargo run --release -p morpheus-bench --bin chat_fanin_quick
//! [output-path]`.

#![forbid(unsafe_code)]

use morpheus_bench::{metadata_json, RunMeta};
use morpheus_testbed::{Runner, Scenario};

struct CaseResult {
    name: String,
    n: usize,
    senders: usize,
    data_loss: f64,
    repair_on: bool,
    coverage: f64,
    deliveries: u64,
    expected: u64,
    repair_pulls: u64,
    repair_pushes: u64,
    repaired_deliveries: u64,
    dup_ratio: f64,
    data_dropped: u64,
    messages_lost: u64,
    control_lost: u64,
    shed_packets: u64,
    max_queue_depth: u64,
    queue_cap: u64,
    catchups: u64,
    floor_escalations: u64,
    restarts: u64,
    wedged: bool,
    rounds: usize,
    msgs_per_sec: f64,
    wall_ms: f64,
}

fn run_case(name: &str, scenario: &Scenario) -> CaseResult {
    let senders = scenario.workload.senders.len();
    let messages = scenario.workload.messages_per_sender;
    let started = std::time::Instant::now();
    let report = Runner::new().run(scenario);
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;

    let deliveries = report.total_app_deliveries();
    let expected = senders as u64 * messages * (scenario.device_count() as u64 - 1);
    let gossip = report.gossip_totals();
    CaseResult {
        name: name.to_string(),
        n: scenario.device_count(),
        senders,
        data_loss: scenario.data_loss,
        repair_on: scenario.repair_interval_ms > 0,
        coverage: report.delivery_coverage(senders, messages),
        deliveries,
        expected,
        repair_pulls: gossip.repair_pulls,
        repair_pushes: gossip.repair_pushes,
        repaired_deliveries: gossip.repaired_deliveries,
        dup_ratio: gossip.duplicates as f64 / deliveries.max(1) as f64,
        data_dropped: report.data_dropped,
        messages_lost: report.messages_lost,
        control_lost: report.control_lost,
        shed_packets: report.shed_packets,
        max_queue_depth: report.max_queue_depth,
        queue_cap: scenario.wedge_queue_cap,
        catchups: report.total_catchups(),
        floor_escalations: gossip.floor_escalations,
        restarts: report.nodes.iter().map(|node| node.restarts).sum(),
        wedged: report.wedge.is_some(),
        rounds: report.completed_rounds().len(),
        msgs_per_sec: deliveries as f64 / (wall_ms / 1000.0).max(1e-9),
        wall_ms,
    }
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_chat_fanin.json".into());
    let n: usize = std::env::var("BENCH_FANIN_N")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .filter(|n| *n >= 16)
        .unwrap_or(250);
    let loss = 0.1;

    eprintln!(
        "chat-fanin quick mode: every member sends at n = {n}, {:.0}% data loss",
        loss * 100.0
    );
    eprintln!(
        "{:>18}  {:>5}  {:>7}  {:>9}  {:>9}  {:>8}  {:>8}  {:>7}  {:>7}  {:>7}  {:>9}",
        "case",
        "n",
        "repair",
        "coverage",
        "repaired",
        "pulls",
        "dup",
        "lost",
        "shed",
        "catchup",
        "msgs/s"
    );

    let results = vec![
        // The pre-repair baseline: pure push phase under the old hard-coded
        // fanout=3/ttl=4 policy.
        run_case(
            "repair-off-ttl4",
            &Scenario::chat_fanin(n, n)
                .with_data_loss(loss)
                .with_repair_interval(0)
                .with_core_param("gossip_ttl", "4"),
        ),
        // Push phase alone, with the size-derived TTL.
        run_case(
            "repair-off",
            &Scenario::chat_fanin(n, n)
                .with_data_loss(loss)
                .with_repair_interval(0),
        ),
        // The full design.
        run_case(
            "repair-on",
            &Scenario::chat_fanin(n, n).with_data_loss(loss),
        ),
        // A smaller group for the trajectory across sizes.
        run_case(
            "repair-on-n50",
            &Scenario::chat_fanin(50, 50).with_data_loss(loss),
        ),
        // Overload resilience: every member sends at twice the service rate
        // for 10 s of simulated time against the bounded event queue.
        run_case("sustained-2x", &Scenario::sustained_overload(n, n, 10_000)),
        // Partition healing: one member cut off for 3x the repair-log TTL
        // reconverges through the repair→snapshot catch-up, not a rejoin.
        run_case("long-partition-n50", &Scenario::long_partition(50, 30_000)),
    ];

    for result in &results {
        eprintln!(
            "{:>18}  {:>5}  {:>7}  {:>8.3}%  {:>9}  {:>8}  {:>8.2}  {:>7}  {:>7}  {:>7}  {:>9.0}",
            result.name,
            result.n,
            if result.repair_on { "on" } else { "off" },
            result.coverage * 100.0,
            result.repaired_deliveries,
            result.repair_pulls,
            result.dup_ratio,
            result.messages_lost,
            result.shed_packets,
            result.catchups,
            result.msgs_per_sec,
        );
    }

    let meta = RunMeta {
        seed: Scenario::chat_fanin(n, n).seed,
        n,
        loss,
    };

    // Hand-rolled JSON: the workspace builds offline, without serde_json.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"chat-fanin\",\n");
    json.push_str("  \"mode\": \"quick\",\n");
    json.push_str(&format!("  {},\n", metadata_json(&meta)));
    json.push_str("  \"results\": [\n");
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"n\": {}, \"senders\": {}, \"data_loss\": {:.2}, \
             \"repair\": {}, \"coverage\": {:.5}, \"deliveries\": {}, \"expected\": {}, \
             \"repair_pulls\": {}, \"repair_pushes\": {}, \"repaired_deliveries\": {}, \
             \"dup_ratio\": {:.4}, \"data_dropped\": {}, \"messages_lost\": {}, \
             \"control_lost\": {}, \"shed_packets\": {}, \"max_queue_depth\": {}, \
             \"queue_cap\": {}, \"catchups\": {}, \"floor_escalations\": {}, \
             \"restarts\": {}, \"wedged\": {}, \
             \"rounds\": {}, \"msgs_per_sec\": {:.0}, \"wall_ms\": {:.1}}}{}\n",
            result.name,
            result.n,
            result.senders,
            result.data_loss,
            result.repair_on,
            result.coverage,
            result.deliveries,
            result.expected,
            result.repair_pulls,
            result.repair_pushes,
            result.repaired_deliveries,
            result.dup_ratio,
            result.data_dropped,
            result.messages_lost,
            result.control_lost,
            result.shed_packets,
            result.max_queue_depth,
            result.queue_cap,
            result.catchups,
            result.floor_escalations,
            result.restarts,
            result.wedged,
            result.rounds,
            result.msgs_per_sec,
            result.wall_ms,
            if index + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&output, json).expect("write benchmark results");
    eprintln!("wrote {output}");

    // --- Assertions: the acceptance criteria of the reliable epidemic data
    // plane (after the results file is written, so failed runs still record
    // their data). The overload and partition cases run without injected
    // loss and with workloads that change the expected-delivery arithmetic,
    // so the steady-state coverage criteria apply only to the fan-in cases.
    let steady = |result: &&CaseResult| {
        !result.name.starts_with("sustained") && !result.name.starts_with("long-partition")
    };
    for result in &results {
        assert_eq!(
            result.messages_lost, 0,
            "live links lose nothing — injected drops are accounted separately ({})",
            result.name
        );
    }
    for result in results.iter().filter(steady) {
        assert!(
            result.data_dropped > 0,
            "the injected data loss must be real ({})",
            result.name
        );
        assert!(
            result.rounds > 0,
            "the large-group adaptation round must have completed ({})",
            result.name
        );
        // Coverage is an unclamped ratio: above 1.0 would mean duplicate
        // messages reached the application — as much a violation as a gap.
        assert!(
            result.coverage <= 1.0,
            "the application must never see duplicate deliveries ({}: {:.6})",
            result.name,
            result.coverage
        );
    }
    let baseline = &results[0];
    assert!(
        baseline.coverage < 0.999,
        "the pre-repair baseline should be visibly lossy, or the comparison is vacuous \
         (got {:.4})",
        baseline.coverage
    );
    for result in results
        .iter()
        .filter(steady)
        .filter(|result| result.repair_on)
    {
        assert!(
            result.coverage >= 0.999,
            "with repair on, epidemic coverage must converge to >= 99.9% ({}: {:.4})",
            result.name,
            result.coverage
        );
        assert!(
            result.repaired_deliveries > 0,
            "the repair pass must have done the closing work ({})",
            result.name
        );
        assert!(
            result.dup_ratio < 1.4,
            "push aggregation must keep the duplicate ratio under 1.4 ({}: {:.3})",
            result.name,
            result.dup_ratio
        );
    }
    // Overload resilience: 2x the service rate degrades gracefully — the
    // queue stays inside the bounded-degradation envelope, nothing on the
    // control plane is shed, no node wedges or crashes, and throughput
    // holds a conservative floor.
    let overload = results
        .iter()
        .find(|result| result.name == "sustained-2x")
        .expect("the sustained-overload case ran");
    assert!(!overload.wedged, "overload must degrade, not wedge");
    assert_eq!(overload.control_lost, 0, "control traffic is never shed");
    assert_eq!(overload.restarts, 0, "overload must not crash a node");
    assert!(
        overload.max_queue_depth <= overload.queue_cap * 2,
        "queue depth {} exceeded the bounded-degradation envelope ({})",
        overload.max_queue_depth,
        overload.queue_cap * 2
    );
    assert!(
        overload.msgs_per_sec > 20_000.0,
        "overload throughput fell through the floor ({:.0} msgs/s)",
        overload.msgs_per_sec
    );
    // Partition healing: a member cut off for 3x the repair-log TTL comes
    // back through the repair→snapshot catch-up — no restart, no rejoin.
    let partition = results
        .iter()
        .find(|result| result.name == "long-partition-n50")
        .expect("the long-partition case ran");
    assert!(!partition.wedged, "healing must not wedge");
    assert_eq!(partition.restarts, 0, "healing must not restart the member");
    assert!(
        partition.floor_escalations >= 1,
        "the evicted span must be detected via the repair-log floor"
    );
    assert!(
        partition.catchups >= 1,
        "the snapshot catch-up must have closed the evicted span"
    );
}
