//! Quick-mode control-plane scale measurement (membership scale).
//!
//! Runs the `large_group` scenario family — n fixed nodes whose adaptation
//! policy switches the data stack to epidemic multicast once the context
//! converges — and emits machine-readable results to
//! `BENCH_membership_scale.json`. The headline comparison is the control
//! plane at n = 100:
//!
//! * **baseline** (`control_fanout = 0`): all-to-all heartbeat multicast and
//!   full context-snapshot floods — `n · (n − 1)` control messages per
//!   heartbeat interval;
//! * **gossip** (`control_fanout = 3`): liveness-digest gossip and digest
//!   anti-entropy context dissemination — `n · fanout` messages per interval.
//!
//! The bench asserts the gossip plane cuts control messages per interval by
//! at least 10× at n = 100, that context dissemination still converges under
//! 10%/30% control loss *without* the legacy periodic full republish, that
//! no chat message is lost across the large-group reconfiguration, and that
//! the 250-node case finishes within a generous wall-clock budget (a CI trip
//! wire for O(n²) regressions).
//!
//! Run with `cargo run --release -p morpheus-bench --bin
//! membership_scale_quick [output-path]`.

#![forbid(unsafe_code)]

use morpheus_testbed::{RunReport, Runner, Scenario, WireBytes};

struct CaseResult {
    name: String,
    n: usize,
    control_fanout: usize,
    control_loss: f64,
    /// Control-class (heartbeat/command plane) sends per heartbeat
    /// interval, across all nodes — what the gossip failure detector cuts
    /// from n·(n−1) to n·fanout.
    control_msgs_per_interval: f64,
    /// Control + context sends per heartbeat interval (the whole control
    /// plane, boot transient included).
    combined_msgs_per_interval: f64,
    control_sent_total: u64,
    context_sent_total: u64,
    /// Per-component bytes-on-wire breakdown across the whole run.
    wire: WireBytes,
    context_converged_ms: Option<u64>,
    reconfigurations: u64,
    rounds: usize,
    messages_lost: u64,
    deliveries: u64,
    events_processed: u64,
    wall_ms: f64,
    events_per_sec: f64,
}

fn run_case(name: &str, scenario: &Scenario) -> CaseResult {
    let started = std::time::Instant::now();
    let report: RunReport = Runner::new().run(scenario);
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;

    let control_sent_total: u64 = report.nodes.iter().map(|node| node.sent_control).sum();
    let context_sent_total: u64 = report.nodes.iter().map(|node| node.sent_context).sum();
    let intervals = (report.duration_ms as f64 / scenario.hb_interval_ms as f64).max(1.0);
    CaseResult {
        name: name.to_string(),
        n: scenario.device_count(),
        control_fanout: scenario.control_fanout,
        control_loss: scenario.control_loss,
        control_msgs_per_interval: control_sent_total as f64 / intervals,
        combined_msgs_per_interval: (control_sent_total + context_sent_total) as f64 / intervals,
        control_sent_total,
        context_sent_total,
        wire: report.wire_bytes_totals(),
        context_converged_ms: report.context_convergence_ms(),
        reconfigurations: report.total_reconfigurations(),
        rounds: report.completed_rounds().len(),
        messages_lost: report.messages_lost,
        deliveries: report.total_app_deliveries(),
        events_processed: report.events_processed,
        wall_ms,
        events_per_sec: report.events_processed as f64 / (wall_ms / 1000.0).max(1e-9),
    }
}

fn json_option(value: Option<u64>) -> String {
    value.map_or_else(|| "null".to_string(), |v| v.to_string())
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_membership_scale.json".into());
    // Generous wall-clock budget for the 250-node case: CI fails the job if
    // an O(n²) regression blows through it.
    let wall_budget_ms: f64 = std::env::var("BENCH_WALL_BUDGET_MS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(60_000.0);

    eprintln!("membership-scale quick mode (wall budget for n=250: {wall_budget_ms:.0} ms)");
    eprintln!(
        "{:>24}  {:>5}  {:>6}  {:>5}  {:>12}  {:>11}  {:>7}  {:>9}  {:>9}  {:>10}",
        "case",
        "n",
        "fanout",
        "loss",
        "ctrl/intvl",
        "converge-ms",
        "rounds",
        "data-lost",
        "wall-ms",
        "events/s"
    );

    let mut results = Vec::new();

    // The O(n²) baseline: all-to-all heartbeats + full context floods.
    results.push(run_case(
        "baseline-alltoall-n100",
        &Scenario::large_group(100).with_control_fanout(0),
    ));

    // The gossip plane across the membership scale.
    for n in [10usize, 50, 100, 250] {
        results.push(run_case(&format!("gossip-n{n}"), &Scenario::large_group(n)));
    }

    // Context convergence under control-plane loss, with digest anti-entropy
    // as the only repair mechanism (no periodic full republish in gossip
    // mode).
    for loss in [0.1f64, 0.3] {
        let name = format!("gossip-n100-loss{}pct", (loss * 100.0).round() as u64);
        results.push(run_case(
            &name,
            &Scenario::large_group(100).with_control_loss(loss),
        ));
    }

    for result in &results {
        eprintln!(
            "{:>24}  {:>5}  {:>6}  {:>5.2}  {:>12.1}  {:>11}  {:>7}  {:>9}  {:>9.1}  {:>10.0}",
            result.name,
            result.n,
            result.control_fanout,
            result.control_loss,
            result.combined_msgs_per_interval,
            json_option(result.context_converged_ms),
            result.rounds,
            result.messages_lost,
            result.wall_ms,
            result.events_per_sec,
        );
    }

    eprintln!("per-component bytes on the wire (data / control / context / repair / overlay):");
    for result in &results {
        eprintln!(
            "{:>24}  {:>10} / {:>10} / {:>10} / {:>9} / {:>8}  (total {})",
            result.name,
            result.wire.data,
            result.wire.control,
            result.wire.context,
            result.wire.repair,
            result.wire.overlay,
            result.wire.total(),
        );
    }

    let baseline = &results[0];
    let gossip_n100 = results
        .iter()
        .find(|result| result.name == "gossip-n100")
        .expect("gossip n=100 case ran");
    let reduction = baseline.control_msgs_per_interval / gossip_n100.control_msgs_per_interval;
    let combined_reduction =
        baseline.combined_msgs_per_interval / gossip_n100.combined_msgs_per_interval;
    eprintln!(
        "control messages per heartbeat interval at n=100: {:.0} (all-to-all) vs {:.0} (gossip) — \
         {reduction:.1}x reduction ({combined_reduction:.1}x with context dissemination included)",
        baseline.control_msgs_per_interval, gossip_n100.control_msgs_per_interval
    );

    // Metadata of the headline comparison case (gossip-n100 vs the
    // all-to-all baseline): the seed, n and loss must reconstruct a
    // scenario that actually ran.
    let meta = morpheus_bench::RunMeta {
        seed: Scenario::large_group(100).seed,
        n: 100,
        loss: 0.0,
    };

    // Hand-rolled JSON: the workspace builds offline, without serde_json.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"membership-scale\",\n");
    json.push_str("  \"mode\": \"quick\",\n");
    json.push_str(&format!("  {},\n", morpheus_bench::metadata_json(&meta)));
    json.push_str(&format!(
        "  \"alltoall_vs_gossip_reduction_n100\": {reduction:.1},\n"
    ));
    json.push_str(&format!(
        "  \"combined_reduction_n100\": {combined_reduction:.1},\n"
    ));
    json.push_str(&format!("  \"wall_budget_ms\": {wall_budget_ms:.0},\n"));
    json.push_str("  \"results\": [\n");
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"n\": {}, \"control_fanout\": {}, \"control_loss\": {:.2}, \
             \"control_msgs_per_interval\": {:.1}, \"combined_msgs_per_interval\": {:.1}, \
             \"control_sent_total\": {}, \
             \"context_sent_total\": {}, \
             \"wire_bytes\": {{\"data\": {}, \"control\": {}, \"context\": {}, \
             \"repair\": {}, \"overlay\": {}, \"total\": {}}}, \
             \"context_converged_ms\": {}, \
             \"reconfigurations\": {}, \"rounds\": {}, \"messages_lost\": {}, \
             \"app_deliveries\": {}, \"events_processed\": {}, \"wall_ms\": {:.1}, \
             \"events_per_sec\": {:.0}}}{}\n",
            result.name,
            result.n,
            result.control_fanout,
            result.control_loss,
            result.control_msgs_per_interval,
            result.combined_msgs_per_interval,
            result.control_sent_total,
            result.context_sent_total,
            result.wire.data,
            result.wire.control,
            result.wire.context,
            result.wire.repair,
            result.wire.overlay,
            result.wire.total(),
            json_option(result.context_converged_ms),
            result.reconfigurations,
            result.rounds,
            result.messages_lost,
            result.deliveries,
            result.events_processed,
            result.wall_ms,
            result.events_per_sec,
            if index + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&output, json).expect("write benchmark results");
    eprintln!("wrote {output}");

    // --- Assertions: the acceptance criteria of the gossip control plane
    // (after the results file is written, so failed runs still record data).
    assert!(
        reduction >= 10.0,
        "gossip must cut heartbeat-plane traffic at n=100 by >= 10x (got {reduction:.1}x)"
    );
    assert!(
        combined_reduction > 1.0,
        "the whole control plane (context dissemination included) must be cheaper than \
         the all-to-all baseline (got {combined_reduction:.1}x)"
    );

    for result in &results {
        assert_eq!(
            result.messages_lost, 0,
            "no chat message may be lost across the reconfiguration ({})",
            result.name
        );
        if result.control_fanout > 0 {
            assert!(
                result.context_converged_ms.is_some(),
                "digest anti-entropy must converge the context store ({})",
                result.name
            );
            assert!(
                result.n < 16 || result.rounds > 0,
                "the large-group adaptation round must complete ({})",
                result.name
            );
        }
    }

    let n250 = results
        .iter()
        .find(|result| result.name == "gossip-n250")
        .expect("250-node case ran");
    assert!(
        n250.wall_ms <= wall_budget_ms,
        "the 250-node run must stay within the CI wall budget ({:.0} ms > {wall_budget_ms:.0} ms)",
        n250.wall_ms
    );
}
