//! Quick-mode reconfiguration-protocol measurement (Experiment E3+).
//!
//! Runs the adaptive chat scenario with the control channel degraded at
//! 0%/10%/30% loss, plus a coordinator-crash-mid-round scenario, and emits
//! machine-readable results to `BENCH_reconfig_latency.json` so the
//! robustness trajectory of the epoch-stamped reconfiguration protocol can
//! be tracked PR over PR. Per configuration it reports:
//!
//! * completed reconfiguration rounds and the epochs they ran under;
//! * command retransmissions the rounds needed;
//! * completion latency (initiation → last ack) as seen by the coordinator;
//! * control-plane packets lost vs chat messages lost (must stay zero).
//!
//! Run with `cargo run --release -p morpheus-bench --bin
//! reconfig_latency_quick [output-path]`.

#![forbid(unsafe_code)]

use morpheus_testbed::{RunReport, Runner, Scenario};

struct CaseResult {
    name: String,
    control_loss: f64,
    rounds: usize,
    retransmits: u64,
    mean_latency_ms: f64,
    max_latency_ms: u64,
    control_lost: u64,
    messages_lost: u64,
    deliveries: u64,
    converged_nodes: usize,
    wall_ms: f64,
}

fn summarize(name: &str, control_loss: f64, report: &RunReport, wall_ms: f64) -> CaseResult {
    let rounds = report.completed_rounds();
    let latencies: Vec<u64> = rounds.iter().map(|round| round.latency_ms).collect();
    let mean_latency_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let converged_nodes = report
        .nodes
        .iter()
        .filter(|node| node.final_stack.starts_with("hybrid-mecho"))
        .count();
    CaseResult {
        name: name.to_string(),
        control_loss,
        rounds: rounds.len(),
        retransmits: report.total_retransmits(),
        mean_latency_ms,
        max_latency_ms: latencies.iter().copied().max().unwrap_or(0),
        control_lost: report.control_lost,
        messages_lost: report.messages_lost,
        deliveries: report.total_app_deliveries(),
        converged_nodes,
        wall_ms,
    }
}

fn run_case(name: &str, control_loss: f64, scenario: &Scenario) -> CaseResult {
    let started = std::time::Instant::now();
    let report = Runner::new().run(scenario);
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    summarize(name, control_loss, &report, wall_ms)
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_reconfig_latency.json".into());
    let messages: u64 = std::env::var("BENCH_MESSAGES")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(200);

    eprintln!("reconfig-latency quick mode: {messages} chat messages per case");
    eprintln!(
        "{:>28}  {:>6}  {:>7}  {:>8}  {:>11}  {:>10}  {:>9}  {:>9}",
        "case", "loss", "rounds", "retrans", "latency(ms)", "ctrl-lost", "data-lost", "converged"
    );

    let mut results = Vec::new();
    for loss in [0.0f64, 0.1, 0.3] {
        // The same presets the reconfiguration-safety tests assert against.
        let scenario = Scenario::lossy_control(5, messages, loss);
        let name = format!("lossy-control-{}pct", (loss * 100.0).round() as u64);
        results.push(run_case(&name, loss, &scenario));
    }
    results.push(run_case(
        "coordinator-crash-20pct",
        0.2,
        &Scenario::coordinator_crash_mid_round(messages),
    ));

    for result in &results {
        eprintln!(
            "{:>28}  {:>6.2}  {:>7}  {:>8}  {:>11.1}  {:>10}  {:>9}  {:>9}",
            result.name,
            result.control_loss,
            result.rounds,
            result.retransmits,
            result.mean_latency_ms,
            result.control_lost,
            result.messages_lost,
            result.converged_nodes,
        );
        assert_eq!(
            result.messages_lost, 0,
            "the reconfiguration protocol must never lose chat messages ({})",
            result.name
        );
    }

    let meta = morpheus_bench::RunMeta {
        seed: Scenario::lossy_control(5, messages, 0.3).seed,
        n: 5,
        loss: 0.3,
    };

    // Hand-rolled JSON: the workspace builds offline, without serde_json.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"reconfig-latency\",\n");
    json.push_str("  \"mode\": \"quick\",\n");
    json.push_str(&format!("  {},\n", morpheus_bench::metadata_json(&meta)));
    json.push_str(&format!("  \"messages_per_case\": {messages},\n"));
    json.push_str("  \"results\": [\n");
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"control_loss\": {:.2}, \"rounds\": {}, \
             \"retransmits\": {}, \"mean_latency_ms\": {:.1}, \"max_latency_ms\": {}, \
             \"control_lost\": {}, \"messages_lost\": {}, \"app_deliveries\": {}, \
             \"converged_nodes\": {}, \"wall_ms\": {:.1}}}{}\n",
            result.name,
            result.control_loss,
            result.rounds,
            result.retransmits,
            result.mean_latency_ms,
            result.max_latency_ms,
            result.control_lost,
            result.messages_lost,
            result.deliveries,
            result.converged_nodes,
            result.wall_ms,
            if index + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&output, json).expect("write benchmark results");
    eprintln!("wrote {output}");
}
