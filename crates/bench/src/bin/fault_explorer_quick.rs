//! Quick-mode adversarial fault explorer: the seed-sweeping wedge hunter.
//!
//! Samples `BENCH_FAULT_SCHEDULES` random fault schedules (link flaps,
//! asymmetric one-way partitions — steady and flapping, latency-class
//! shifts, WAN multi-region latency tiers, churn and mass churn,
//! byte-level packet corruption) with `FaultSchedule::generate`, runs each
//! against the `fault_harness` scenario, and asserts the run's safety
//! invariants:
//!
//! * no wedge — the runner's detector saw progress whenever live members
//!   disagreed on the installed view, and neither the event queue nor the
//!   round count grew without bound;
//! * zero live-link data loss — every injected drop is accounted as a fault,
//!   never as a lost chat message;
//! * every decode error is explained by an injected corruption;
//! * context dissemination converged on every node by the end of the run.
//!
//! Every case is deterministic in `(seed, schedule)`: when one fails, the
//! exact one-line reproducer (`fault_harness(n=…, seed=…, schedule="…")`) is
//! printed and embedded in `BENCH_fault_matrix.json`, which is written
//! *before* the assertions so a red CI run still uploads the matrix.
//!
//! Run with `cargo run --release -p morpheus-bench --bin
//! fault_explorer_quick [output-path]`. Environment knobs:
//! `BENCH_FAULT_SCHEDULES` (sweep budget, default 48), `BENCH_FAULT_N`
//! (group size, default 16), `BENCH_FAULT_SEED` (base seed, default 1),
//! `MORPHEUS_FAULT_SEEDS` (extended sweep: a comma-separated list of extra
//! seeds, each run as one additional generated case after the base window —
//! e.g. `MORPHEUS_FAULT_SEEDS=$(seq -s, 1000 1499)` for an overnight soak).

#![forbid(unsafe_code)]

use morpheus_netsim::{FaultEvent, FaultSchedule, NodeId};
use morpheus_testbed::{Runner, Scenario, WedgeReport};

struct CaseResult {
    seed: u64,
    classes: Vec<&'static str>,
    reproducer: String,
    fault_dropped: u64,
    corrupted_packets: u64,
    messages_lost: u64,
    errors: u64,
    restarts: u64,
    rejoins: u64,
    min_deliveries: u64,
    converged: bool,
    wedge: Option<WedgeReport>,
    wall_ms: f64,
}

impl CaseResult {
    fn passed(&self) -> bool {
        self.wedge.is_none()
            && self.messages_lost == 0
            && self.errors <= self.corrupted_packets
            && self.converged
    }
}

fn run_case(n: usize, seed: u64) -> CaseResult {
    let base = Scenario::fault_harness(n, seed);
    let schedule = FaultSchedule::generate(seed, n, base.end_time_ms());
    run_scheduled(n, seed, schedule)
}

/// Runs one explicit (non-generated) schedule against the fault harness
/// under the same invariants as the sweep cases.
fn run_scheduled(n: usize, seed: u64, schedule: FaultSchedule) -> CaseResult {
    let base = Scenario::fault_harness(n, seed);
    let scenario = base.with_fault_schedule(schedule.clone());
    let started = std::time::Instant::now();
    let report = Runner::new().run(&scenario);
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    CaseResult {
        seed,
        classes: schedule.class_tags(),
        reproducer: scenario.fault_reproducer(),
        fault_dropped: report.fault_dropped,
        corrupted_packets: report.corrupted_packets,
        messages_lost: report.messages_lost,
        errors: report.total_errors(),
        restarts: report.nodes.iter().map(|node| node.restarts).sum(),
        rejoins: report
            .nodes
            .iter()
            .filter(|node| node.rejoin.is_some())
            .count() as u64,
        min_deliveries: report
            .nodes
            .iter()
            .map(|node| node.app_deliveries)
            .min()
            .unwrap_or(0),
        converged: report
            .nodes
            .iter()
            .all(|node| node.context_converged_ms.is_some()),
        wedge: report.wedge,
        wall_ms,
    }
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fault_matrix.json".into());
    let budget: u64 = std::env::var("BENCH_FAULT_SCHEDULES")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .filter(|budget| *budget > 0)
        .unwrap_or(48);
    let n: usize = std::env::var("BENCH_FAULT_N")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .filter(|n| *n >= 4)
        .unwrap_or(16);
    let base_seed: u64 = std::env::var("BENCH_FAULT_SEED")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(1);

    eprintln!(
        "fault-explorer quick mode: {budget} generated schedules, n = {n}, seeds {base_seed}.."
    );
    eprintln!(
        "{:>6}  {:>30}  {:>7}  {:>9}  {:>5}  {:>8}  {:>7}  {:>6}",
        "seed", "classes", "dropped", "corrupted", "lost", "restarts", "wall-ms", "status"
    );

    let mut results = Vec::new();
    let print_row = |result: &CaseResult| {
        eprintln!(
            "{:>6}  {:>30}  {:>7}  {:>9}  {:>5}  {:>8}  {:>7.0}  {:>6}",
            result.seed,
            result.classes.join("+"),
            result.fault_dropped,
            result.corrupted_packets,
            result.messages_lost,
            result.restarts,
            result.wall_ms,
            if result.passed() { "ok" } else { "FAIL" },
        );
    };
    for index in 0..budget {
        let result = run_case(n, base_seed + index);
        print_row(&result);
        results.push(result);
    }

    // Extended sweep: every seed listed in MORPHEUS_FAULT_SEEDS runs one
    // additional generated case after the base window, so a soak job can
    // explore arbitrary seed ranges without touching the budget knob.
    let extra_seeds: Vec<u64> = std::env::var("MORPHEUS_FAULT_SEEDS")
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|part| part.trim().parse().ok())
                .collect()
        })
        .unwrap_or_default();
    if !extra_seeds.is_empty() {
        eprintln!("extended sweep: {} extra seeds", extra_seeds.len());
        for seed in extra_seeds {
            let result = run_case(n, seed);
            print_row(&result);
            results.push(result);
        }
    }

    // Scheduled rows that run regardless of what the generator sampled:
    // a sustained 2x-rate overload across the chat window; a single-node
    // partition that outlives the suspicion timeout (expel, heal,
    // reconverge); and one pinned row per adversarial class — WAN region
    // tiers, mass churn, and a flapping one-way link — so every class has
    // at least one deterministic survivor in the matrix. All run under the
    // full sweep invariants.
    let harness = Scenario::fault_harness(n, base_seed);
    let chat_start = harness.workload.warmup_ms;
    let overload = FaultSchedule {
        events: vec![FaultEvent::Overload {
            start_ms: chat_start,
            end_ms: chat_start + 4_000,
            interval_ms: harness.workload.interval_ms,
        }],
    };
    let partition = FaultSchedule {
        events: vec![FaultEvent::Partition {
            node: NodeId(n as u32 - 1),
            start_ms: chat_start,
            end_ms: chat_start + 7_000,
        }],
    };
    let wan_regions = FaultSchedule {
        events: vec![FaultEvent::WanRegions {
            start_ms: chat_start,
            end_ms: chat_start + 7_000,
            regions: 3,
            step_ms: 80,
        }],
    };
    let mass_churn = FaultSchedule {
        events: vec![FaultEvent::MassChurn {
            start_ms: chat_start,
            end_ms: chat_start + 4_000,
            per_second: 2,
            down_ms: 2_000,
        }],
    };
    let flap_oneway = FaultSchedule {
        events: vec![FaultEvent::FlapOneWay {
            from: NodeId(1),
            to: NodeId(n as u32 - 1),
            start_ms: chat_start,
            down_ms: 500,
            up_ms: 900,
            until_ms: chat_start + 6_000,
        }],
    };
    for schedule in [overload, partition, wan_regions, mass_churn, flap_oneway] {
        let result = run_scheduled(n, base_seed, schedule);
        print_row(&result);
        results.push(result);
    }

    let meta = morpheus_bench::RunMeta {
        seed: base_seed,
        n,
        loss: 0.0,
    };

    // Survival matrix per fault class: how many sweep cases exercised the
    // class and how many of those survived every invariant. `all_classes`
    // is what `FaultSchedule::generate` can emit; the scheduled-only
    // classes appear in the survival table but are exempt from the
    // generator-coverage assertion below.
    let all_classes = [
        "flap",
        "oneway",
        "latency",
        "churn",
        "corrupt",
        "wanregions",
        "masschurn",
        "flaponeway",
    ];
    let survival_classes = [
        "flap",
        "oneway",
        "latency",
        "churn",
        "corrupt",
        "overload",
        "partition",
        "wanregions",
        "masschurn",
        "flaponeway",
    ];
    let class_row = |class: &str| -> (u64, u64) {
        let runs = results
            .iter()
            .filter(|result| result.classes.contains(&class));
        let total = runs.clone().count() as u64;
        let passed = runs.filter(|result| result.passed()).count() as u64;
        (total, passed)
    };

    // Hand-rolled JSON: the workspace builds offline, without serde_json.
    // Written before any assertion so a failing sweep still ships the
    // matrix (and the reproducer) as a CI artifact.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"fault-matrix\",\n");
    json.push_str("  \"mode\": \"quick\",\n");
    json.push_str(&format!("  {},\n", morpheus_bench::metadata_json(&meta)));
    json.push_str(&format!("  \"schedules\": {budget},\n"));
    json.push_str("  \"survival\": {\n");
    for (index, class) in survival_classes.iter().enumerate() {
        let (total, passed) = class_row(class);
        json.push_str(&format!(
            "    \"{class}\": {{\"runs\": {total}, \"passed\": {passed}}}{}\n",
            if index + 1 == survival_classes.len() {
                ""
            } else {
                ","
            },
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"results\": [\n");
    for (index, result) in results.iter().enumerate() {
        let wedge = match &result.wedge {
            Some(wedge) => format!(
                "{{\"at_ms\": {}, \"reason\": \"{}\"}}",
                wedge.at_ms,
                wedge.reason.replace('"', "'")
            ),
            None => "null".into(),
        };
        json.push_str(&format!(
            "    {{\"seed\": {}, \"classes\": \"{}\", \"fault_dropped\": {}, \
             \"corrupted_packets\": {}, \"messages_lost\": {}, \"errors\": {}, \
             \"restarts\": {}, \"rejoins\": {}, \"min_deliveries\": {}, \
             \"converged\": {}, \"wedge\": {}, \"wall_ms\": {:.1}, \
             \"reproducer\": \"{}\"}}{}\n",
            result.seed,
            result.classes.join("+"),
            result.fault_dropped,
            result.corrupted_packets,
            result.messages_lost,
            result.errors,
            result.restarts,
            result.rejoins,
            result.min_deliveries,
            result.converged,
            wedge,
            result.wall_ms,
            result.reproducer.replace('"', "\\\""),
            if index + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&output, json).expect("write benchmark results");
    eprintln!("wrote {output}");

    // Sweep-wide coverage: a budget of >= 20 schedules must exercise every
    // fault class, or the generator regressed.
    if budget >= 20 {
        for class in all_classes {
            let (total, _) = class_row(class);
            assert!(
                total > 0,
                "the sweep never generated a `{class}` fault — generator coverage regressed"
            );
        }
    }

    // Per-case safety invariants. The reproducer line is the failure
    // artifact: paste it into `Scenario::fault_harness` +
    // `FaultSchedule::parse` to replay the exact failing run.
    for result in &results {
        assert!(
            result.wedge.is_none(),
            "WEDGE at {}ms ({}). Reproduce with: {}",
            result.wedge.as_ref().unwrap().at_ms,
            result.wedge.as_ref().unwrap().reason,
            result.reproducer
        );
        assert_eq!(
            result.messages_lost, 0,
            "live-link data loss under faults. Reproduce with: {}",
            result.reproducer
        );
        assert!(
            result.errors <= result.corrupted_packets,
            "{} decode errors but only {} injected corruptions. Reproduce with: {}",
            result.errors,
            result.corrupted_packets,
            result.reproducer
        );
        assert!(
            result.converged,
            "context dissemination never converged. Reproduce with: {}",
            result.reproducer
        );
    }
    eprintln!(
        "all {} cases survived: no wedges, no live-link loss",
        results.len()
    );
}
