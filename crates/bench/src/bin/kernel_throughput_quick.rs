//! Quick-mode kernel throughput measurement (Experiment E7).
//!
//! Unlike the Criterion bench, this runner finishes in a few seconds and
//! emits machine-readable results to `BENCH_kernel_throughput.json` so the
//! performance trajectory of the kernel hot path can be tracked PR over PR.
//! It measures, per stack depth:
//!
//! * end-to-end group sends per second through the full stack;
//! * session hops per second (each send traverses `depth + 2` sessions);
//! * heap allocations and allocated bytes per send, via a counting
//!   global allocator.
//!
//! Run with `cargo run --release -p morpheus-bench --bin
//! kernel_throughput_quick [output-path]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use morpheus_appia::config::{ChannelConfig, LayerSpec};
use morpheus_appia::event::{Event, EventSpec};
use morpheus_appia::events::DataEvent;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{Layer, LayerParams};
use morpheus_appia::platform::{NodeId, TestPlatform};
use morpheus_appia::session::Session;
use morpheus_appia::{Kernel, Message};
use morpheus_groupcomm::register_suite;

/// A `System` wrapper counting every allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        ALLOCATED_BYTES.load(Ordering::Relaxed),
    )
}

/// A trivial pass-through micro-protocol used to pad the stack to the
/// requested depth.
struct PassThroughLayer {
    name: String,
}

struct PassThroughSession {
    name: String,
}

impl Layer for PassThroughLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![EventSpec::All]
    }

    fn create_session(&self, _params: &LayerParams) -> Box<dyn Session> {
        Box::new(PassThroughSession {
            name: self.name.clone(),
        })
    }
}

impl Session for PassThroughSession {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, event: Event, ctx: &mut EventContext<'_>) {
        ctx.forward(event);
    }
}

fn deep_stack(depth: usize) -> (Kernel, TestPlatform, morpheus_appia::ChannelId) {
    let mut kernel = Kernel::new();
    register_suite(&mut kernel);
    for index in 0..depth {
        kernel.layers_mut().register(PassThroughLayer {
            name: format!("relay{index}"),
        });
    }
    let mut platform = TestPlatform::new(NodeId(1));
    let mut config = ChannelConfig::new("bench")
        .with_layer(LayerSpec::new("network"))
        .with_layer(LayerSpec::new("beb").with_param("members", "1,2,3,4"));
    for index in 0..depth {
        config = config.with_layer(LayerSpec::new(format!("relay{index}")));
    }
    config = config.with_layer(LayerSpec::new("app"));
    let id = kernel.create_channel(&config, &mut platform).unwrap();
    (kernel, platform, id)
}

struct DepthResult {
    depth: usize,
    sends_per_sec: f64,
    batched_sends_per_sec: f64,
    hops_per_sec: f64,
    allocations_per_send: f64,
    allocated_bytes_per_send: f64,
    ns_per_send: f64,
}

fn measure_depth(depth: usize, sends: usize) -> DepthResult {
    let (mut kernel, mut platform, id) = deep_stack(depth);

    let run = |kernel: &mut Kernel, platform: &mut TestPlatform, count: usize| {
        for _ in 0..count {
            let event = Event::down(DataEvent::to_group(
                NodeId(1),
                Message::with_payload(&b"x"[..]),
            ));
            kernel.dispatch_and_process(id, event, platform);
        }
        platform.take_sent().len()
    };

    // Warm-up: populates route caches and steady-state buffer capacity.
    run(&mut kernel, &mut platform, sends / 10);

    let (allocs_before, bytes_before) = alloc_snapshot();
    let started = Instant::now();
    run(&mut kernel, &mut platform, sends);
    let elapsed = started.elapsed();
    let (allocs_after, bytes_after) = alloc_snapshot();

    // The same workload through the batch API: events enqueued in chunks of
    // 64 with a single queue drain per chunk.
    let batch_started = Instant::now();
    let mut remaining = sends;
    while remaining > 0 {
        let chunk = remaining.min(64);
        kernel.dispatch_batch_and_process(
            id,
            (0..chunk).map(|_| {
                Event::down(DataEvent::to_group(
                    NodeId(1),
                    Message::with_payload(&b"x"[..]),
                ))
            }),
            &mut platform,
        );
        remaining -= chunk;
    }
    platform.take_sent();
    let batch_elapsed = batch_started.elapsed();

    let secs = elapsed.as_secs_f64();
    // Each group send is handled by the app interface, `depth` relays, the
    // best-effort multicast layer and the network driver.
    let hops = (depth + 3) as f64;
    DepthResult {
        depth,
        sends_per_sec: sends as f64 / secs,
        batched_sends_per_sec: sends as f64 / batch_elapsed.as_secs_f64(),
        hops_per_sec: sends as f64 * hops / secs,
        allocations_per_send: (allocs_after - allocs_before) as f64 / sends as f64,
        allocated_bytes_per_send: (bytes_after - bytes_before) as f64 / sends as f64,
        ns_per_send: elapsed.as_nanos() as f64 / sends as f64,
    }
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernel_throughput.json".into());
    let sends: usize = std::env::var("BENCH_SENDS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(50_000);

    let depths = [0usize, 2, 4, 8, 12];
    let mut results = Vec::new();
    eprintln!("kernel-throughput quick mode: {sends} group sends per depth");
    eprintln!(
        "{:>6}  {:>14}  {:>14}  {:>14}  {:>12}  {:>14}  {:>12}",
        "depth", "sends/s", "batched/s", "hops/s", "ns/send", "allocs/send", "bytes/send"
    );
    for depth in depths {
        let result = measure_depth(depth, sends);
        eprintln!(
            "{:>6}  {:>14.0}  {:>14.0}  {:>14.0}  {:>12.0}  {:>14.2}  {:>12.1}",
            result.depth,
            result.sends_per_sec,
            result.batched_sends_per_sec,
            result.hops_per_sec,
            result.ns_per_send,
            result.allocations_per_send,
            result.allocated_bytes_per_send,
        );
        results.push(result);
    }

    let meta = morpheus_bench::RunMeta {
        seed: 0,
        n: 0,
        loss: 0.0,
    };

    // Hand-rolled JSON: the workspace builds offline, without serde_json.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"kernel-throughput\",\n");
    json.push_str("  \"mode\": \"quick\",\n");
    json.push_str(&format!("  {},\n", morpheus_bench::metadata_json(&meta)));
    json.push_str(&format!("  \"sends_per_depth\": {sends},\n"));
    json.push_str("  \"results\": [\n");
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"stack_depth\": {}, \"events_per_sec\": {:.0}, \
             \"batched_events_per_sec\": {:.0}, \"hops_per_sec\": {:.0}, \
             \"ns_per_send\": {:.1}, \"allocations_per_event\": {:.3}, \
             \"allocated_bytes_per_event\": {:.1}}}{}\n",
            result.depth,
            result.sends_per_sec,
            result.batched_sends_per_sec,
            result.hops_per_sec,
            result.ns_per_send,
            result.allocations_per_send,
            result.allocated_bytes_per_send,
            if index + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&output, json).expect("write benchmark results");
    eprintln!("wrote {output}");
}
