//! Quick-mode rejoin / state-transfer measurement.
//!
//! Runs the `member_restart` recovery scenario (n = 50 by default) at
//! 0%/10%/30% control-channel loss plus the donor-crash-mid-transfer case,
//! with a real chat application bound to every node, and emits
//! machine-readable results to `BENCH_rejoin_latency.json`. Per case it
//! reports:
//!
//! * the restarted node's rejoin latency (restart → snapshot installed) and
//!   when it happened in simulated time;
//! * the transferred snapshot size, chunk count and transfer epochs (more
//!   than one epoch = donor failover);
//! * how much of the downtime chat traffic the rejoiner recovered through
//!   the snapshot;
//! * data-plane safety: live-link chat losses (must stay zero for the
//!   surviving members) next to the separately accounted in-flight traffic
//!   towards the crashed node.
//!
//! Run with `cargo run --release -p morpheus-bench --bin
//! rejoin_latency_quick [output-path]`.

#![forbid(unsafe_code)]

use morpheus_appia::platform::NodeId;
use morpheus_chat::ChatHistoryBinding;
use morpheus_testbed::{RejoinReport, Runner, Scenario};

struct CaseResult {
    name: String,
    control_loss: f64,
    rejoin: RejoinReport,
    downtime_recovered: usize,
    downtime_total: usize,
    messages_lost: u64,
    lost_to_crashed: u64,
    control_lost: u64,
    survivor_deliveries_min: u64,
    wall_ms: f64,
}

fn run_case(name: &str, control_loss: f64, scenario: &Scenario) -> CaseResult {
    let restarting = scenario.restarting_members()[0];
    let (crash_at, _) = scenario
        .failures
        .iter()
        .find(|(_, node)| *node == restarting)
        .copied()
        .expect("recovery scenarios crash the restarting node first");
    let (restart_at, _) = scenario.restarts[0];

    let mut binding = ChatHistoryBinding::new("icdcs");
    let started = std::time::Instant::now();
    let report = Runner::new().run_with_binding(scenario, &mut binding);
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;

    let node = report
        .node(restarting)
        .expect("the restarting node is part of the report");
    let rejoin = node
        .rejoin
        .clone()
        .unwrap_or_else(|| panic!("{name}: the restarted node never rejoined"));

    // Downtime coverage: messages sent while the node was crashed, recovered
    // through the snapshot (with a safety margin inside the window).
    let window = scenario
        .workload
        .seqs_sent_between(crash_at + 1000, restart_at.saturating_sub(1000));
    let history = binding.history(restarting).expect("history bound");
    let senders: Vec<String> = scenario
        .workload
        .senders
        .iter()
        .map(|node| ChatHistoryBinding::sender_name(*node))
        .collect();
    let downtime_total = window.clone().count() * senders.len();
    let downtime_recovered = senders
        .iter()
        .flat_map(|sender| {
            window
                .clone()
                .filter(move |seq| history.contains("icdcs", sender, *seq))
        })
        .count();

    let survivor_deliveries_min = report
        .nodes
        .iter()
        .filter(|n| n.node != restarting && !scenario.failures.iter().any(|(_, f)| *f == n.node))
        .map(|n| n.app_deliveries)
        .min()
        .unwrap_or(0);

    CaseResult {
        name: name.to_string(),
        control_loss,
        rejoin,
        downtime_recovered,
        downtime_total,
        messages_lost: report.messages_lost,
        lost_to_crashed: report.messages_lost_to_crashed,
        control_lost: report.control_lost,
        survivor_deliveries_min,
        wall_ms,
    }
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_rejoin_latency.json".into());
    let n: usize = std::env::var("BENCH_RESTART_N")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .filter(|n| *n >= 4)
        .unwrap_or(50);

    eprintln!("rejoin-latency quick mode: member restart at n = {n}");
    eprintln!(
        "{:>26}  {:>6}  {:>11}  {:>9}  {:>7}  {:>7}  {:>12}  {:>9}",
        "case", "loss", "rejoin(ms)", "bytes", "chunks", "epochs", "downtime-cov", "data-lost"
    );

    let mut results = Vec::new();
    for loss in [0.0f64, 0.1, 0.3] {
        let scenario = Scenario::member_restart(n, loss);
        let name = format!("member-restart-{}pct", (loss * 100.0).round() as u64);
        results.push(run_case(&name, loss, &scenario));
    }
    results.push(run_case(
        "donor-crash-mid-transfer",
        0.0,
        &Scenario::donor_crash_mid_transfer(),
    ));

    for result in &results {
        eprintln!(
            "{:>26}  {:>6.2}  {:>11}  {:>9}  {:>7}  {:>7}  {:>9}/{:<3}  {:>9}",
            result.name,
            result.control_loss,
            result.rejoin.elapsed_ms,
            result.rejoin.bytes,
            result.rejoin.chunks,
            result.rejoin.transfer_epochs,
            result.downtime_recovered,
            result.downtime_total,
            result.messages_lost,
        );
        assert_eq!(
            result.messages_lost, 0,
            "rejoin must not cost surviving members any chat message ({})",
            result.name
        );
        assert!(
            result.rejoin.elapsed_ms < 10_000,
            "rejoin latency blew the bound ({})",
            result.name
        );
        assert!(
            result.downtime_recovered * 10 >= result.downtime_total * 8,
            "the snapshot recovered too little downtime traffic ({})",
            result.name
        );
    }
    let failover = results.last().expect("donor-crash case present");
    assert!(
        failover.rejoin.transfer_epochs >= 2 && failover.rejoin.donor == NodeId(1),
        "the donor-crash case must fail over to the next donor"
    );

    // Metadata of the acceptance case (member-restart-10pct): the seed and
    // loss must reconstruct a scenario that actually ran.
    let meta = morpheus_bench::RunMeta {
        seed: Scenario::member_restart(n, 0.1).seed,
        n,
        loss: 0.1,
    };

    // Hand-rolled JSON: the workspace builds offline, without serde_json.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"rejoin-latency\",\n");
    json.push_str("  \"mode\": \"quick\",\n");
    json.push_str(&format!("  {},\n", morpheus_bench::metadata_json(&meta)));
    json.push_str(&format!("  \"restart_n\": {n},\n"));
    json.push_str("  \"results\": [\n");
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"control_loss\": {:.2}, \"rejoin_latency_ms\": {}, \
             \"rejoined_at_ms\": {}, \"donor\": {}, \"transfer_bytes\": {}, \
             \"transfer_chunks\": {}, \"transfer_epochs\": {}, \
             \"downtime_recovered\": {}, \"downtime_total\": {}, \"messages_lost\": {}, \
             \"lost_to_crashed\": {}, \"control_lost\": {}, \
             \"survivor_deliveries_min\": {}, \"wall_ms\": {:.1}}}{}\n",
            result.name,
            result.control_loss,
            result.rejoin.elapsed_ms,
            result.rejoin.at_ms,
            result.rejoin.donor.0,
            result.rejoin.bytes,
            result.rejoin.chunks,
            result.rejoin.transfer_epochs,
            result.downtime_recovered,
            result.downtime_total,
            result.messages_lost,
            result.lost_to_crashed,
            result.control_lost,
            result.survivor_deliveries_min,
            result.wall_ms,
            if index + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&output, json).expect("write benchmark results");
    eprintln!("wrote {output}");
}
