//! # morpheus-core
//!
//! The **Core** control and reconfiguration subsystem of the Morpheus
//! framework, plus the adaptation policies and the node-level façade that
//! ties the whole middleware together.
//!
//! Core is a distributed subsystem with two parts, mirroring the paper:
//!
//! * a **control component** ([`control`]) — a layer on the group
//!   communication control channel. The deterministically elected coordinator
//!   (lowest node id) evaluates the adaptation policy against the distributed
//!   context assembled by Cocaditem and, when a different stack configuration
//!   becomes preferable, ships the new declarative channel description to all
//!   participants;
//! * a set of **local modules** ([`node::MorpheusNode`]) — on each node,
//!   the runtime that drives the data channel to quiescence (through the
//!   view-synchrony block primitive), deploys the new stack via the kernel's
//!   channel replacement and resumes the data flow.
//!
//! The adaptation policies themselves live in [`policy`] and [`rules`]; the
//! named stack configurations the policies can choose between are produced by
//! [`stack_catalog`].

#![forbid(unsafe_code)]

pub mod control;
pub mod node;
pub mod policy;
pub mod rules;
pub mod stack_catalog;

pub use control::{register_core, ReconfigAck, ReconfigCommand, CORE_LAYER};
pub use node::{MorpheusNode, NodeOptions};
pub use policy::{AdaptationPolicy, GlobalContext, RoomStackKind, StackKind};
pub use rules::{DefaultPolicy, RoomRules};
pub use stack_catalog::StackCatalog;
