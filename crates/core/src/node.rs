//! The node-level façade: one Morpheus middleware instance.
//!
//! [`MorpheusNode`] owns the protocol kernel of one participant, with the two
//! channels the prototype uses:
//!
//! * the **data channel**, carrying application traffic over the stack the
//!   Core subsystem currently prescribes;
//! * the **control channel**, carrying Cocaditem context publications and
//!   Core reconfiguration commands.
//!
//! It also acts as the Core *local module*: when the control layer requests a
//! reconfiguration, the node drives the data channel to quiescence (blocking
//! it through the view-synchrony layer), swaps the stack via the kernel's
//! channel replacement and resumes the flow — the sequence Section 3.3 of the
//! paper describes.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;

use morpheus_appia::config::ChannelConfig;
use morpheus_appia::error::Result;
use morpheus_appia::event::Event;
use morpheus_appia::events::DataEvent;
use morpheus_appia::message::Message;
use morpheus_appia::platform::{
    AppDelivery, DeliveryKind, InPacket, NodeId, Platform, ReconfigRequest,
};
use morpheus_appia::timer::TimerKey;
use morpheus_appia::{ChannelId, Kernel};
use morpheus_cocaditem::dissemination::register_cocaditem_with_store;
use morpheus_cocaditem::store::ContextStoreSection;
use morpheus_cocaditem::ContextStore;
use morpheus_groupcomm::events::{BlockRequest, ResumeRequest, ViewInstall};
use morpheus_groupcomm::recovery::{RecoveryLayer, StateSection};
use morpheus_groupcomm::{register_suite, View};

use crate::control::{register_core, ReconfigAck};
use crate::policy::StackKind;
use crate::stack_catalog::StackCatalog;

/// Configuration of one Morpheus node.
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// The participants of the application group (including the local node).
    pub members: Vec<NodeId>,
    /// Whether the Core subsystem may adapt the data stack at run time.
    /// Disabling this yields the paper's non-adapted baseline.
    pub adaptive: bool,
    /// The stack deployed at start-up.
    pub initial_stack: StackKind,
    /// How often Cocaditem publishes the local context, in milliseconds.
    pub publish_interval_ms: u64,
    /// Failure-detector heartbeat period for generated stacks (and for the
    /// control channel's own failure detector).
    pub hb_interval_ms: u64,
    /// Failure-detector suspicion timeout for generated stacks (and for the
    /// control channel's own failure detector).
    pub suspect_timeout_ms: u64,
    /// How often the reconfiguration coordinator retransmits an
    /// unacknowledged command, in milliseconds.
    pub retransmit_interval_ms: u64,
    /// Total time budget of one reconfiguration round before the coordinator
    /// aborts it and lets the policy re-fire, in milliseconds.
    pub round_timeout_ms: u64,
    /// Gossip fan-out of the control mechanisms: the failure detectors
    /// (control channel and generated data stacks) and the context
    /// dissemination. `0` selects the legacy all-to-all control plane
    /// (heartbeat multicast + context flood) — the benchmarks' O(n²)
    /// baseline.
    pub control_fanout: usize,
    /// Cadence of the epidemic data stack's NACK/anti-entropy repair pass,
    /// in milliseconds (`0` disables repair, leaving the pure push-phase
    /// gossip — the pre-repair baseline benchmarks compare against).
    pub gossip_repair_interval_ms: u64,
    /// Per-peer credit window of the epidemic data stack: how many gossip
    /// pushes a sender may have in flight towards one peer before it defers
    /// into the bounded outbox and falls back to digest/pull repair (`0`
    /// disables backpressure).
    pub gossip_credit_window: usize,
    /// How many application messages one gossip packet may aggregate
    /// (`1` = singleton pushes, the pre-batching baseline).
    pub gossip_batch_max: usize,
    /// Whether this node is a *restarted* member re-entering a running
    /// group: its stacks come up in joining mode (empty view, blocked) and
    /// the recovery layer drives re-admission plus state transfer.
    pub rejoining: bool,
    /// Chunk size of the rejoin state transfer, in bytes.
    pub transfer_chunk_bytes: usize,
    /// Name of the data channel.
    pub data_channel: String,
    /// Name of the control channel.
    pub control_channel: String,
    /// Extra parameters handed to the Core control layer (policy thresholds).
    pub core_params: Vec<(String, String)>,
}

impl NodeOptions {
    /// Sensible defaults for a group of the given members.
    pub fn new(members: Vec<NodeId>) -> Self {
        Self {
            members,
            adaptive: true,
            initial_stack: StackKind::BestEffort,
            publish_interval_ms: 1000,
            hb_interval_ms: 1000,
            suspect_timeout_ms: 5000,
            retransmit_interval_ms: 500,
            round_timeout_ms: 4000,
            control_fanout: 3,
            gossip_repair_interval_ms: 1000,
            gossip_credit_window: 128,
            gossip_batch_max: 4,
            rejoining: false,
            transfer_chunk_bytes: 1024,
            data_channel: "data".to_string(),
            control_channel: "ctrl".to_string(),
            core_params: Vec::new(),
        }
    }

    /// Disables run-time adaptation (builder style).
    pub fn non_adaptive(mut self) -> Self {
        self.adaptive = false;
        self
    }

    /// Sets the initial stack (builder style).
    pub fn with_initial_stack(mut self, stack: StackKind) -> Self {
        self.initial_stack = stack;
        self
    }

    /// Sets the context publication interval (builder style).
    pub fn with_publish_interval(mut self, interval_ms: u64) -> Self {
        self.publish_interval_ms = interval_ms;
        self
    }

    /// Adds a Core policy parameter (builder style).
    pub fn with_core_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.core_params.push((key.into(), value.into()));
        self
    }

    /// Marks the node as a restarted member rejoining a running group
    /// (builder style).
    pub fn rejoining(mut self) -> Self {
        self.rejoining = true;
        self
    }
}

/// One Morpheus middleware instance.
pub struct MorpheusNode {
    kernel: Kernel,
    options: NodeOptions,
    catalog: StackCatalog,
    context_store: Rc<RefCell<ContextStore>>,
    data_channel: ChannelId,
    control_channel: ChannelId,
    current_stack: String,
    reconfigurations: u64,
    sent_messages: u64,
}

impl MorpheusNode {
    /// Builds a node, creating its data and control channels.
    pub fn new(options: NodeOptions, platform: &mut dyn Platform) -> Result<Self> {
        Self::with_app_state(options, Vec::new(), platform)
    }

    /// Builds a node whose rejoin state transfer additionally streams the
    /// given application-level state sections (e.g. the chat room history).
    ///
    /// The node always contributes its own Cocaditem context store as the
    /// first section, so a rejoiner recovers the replicated context without
    /// waiting for digest anti-entropy to repopulate it.
    pub fn with_app_state(
        options: NodeOptions,
        app_sections: Vec<Rc<dyn StateSection>>,
        platform: &mut dyn Platform,
    ) -> Result<Self> {
        let mut kernel = Kernel::new();
        register_suite(&mut kernel);
        let context_store = Rc::new(RefCell::new(ContextStore::new()));
        register_cocaditem_with_store(&mut kernel, context_store.clone());
        let mut sections: Vec<Rc<dyn StateSection>> =
            vec![Rc::new(ContextStoreSection::new(context_store.clone()))];
        sections.extend(app_sections);
        // Replaces the suite's section-less recovery layer by name.
        kernel
            .layers_mut()
            .register(RecoveryLayer::with_sections(sections));
        register_core(&mut kernel);

        let catalog = StackCatalog::new(&options.data_channel, options.members.clone())
            .with_failure_detection(options.hb_interval_ms, options.suspect_timeout_ms)
            .with_fd_fanout(options.control_fanout)
            .with_view_change_timing(options.retransmit_interval_ms, options.round_timeout_ms)
            .with_transfer_chunk_bytes(options.transfer_chunk_bytes)
            .with_gossip_repair(options.gossip_repair_interval_ms)
            .with_gossip_flow(options.gossip_credit_window, options.gossip_batch_max)
            .with_rejoining(options.rejoining);

        let data_config = catalog.config_for(&options.initial_stack);
        let data_channel = kernel.create_channel(&data_config, platform)?;

        let mut core_params = options.core_params.clone();
        core_params.push(("initial_stack".to_string(), options.initial_stack.name()));
        core_params.push((
            "hb_interval_ms".to_string(),
            options.hb_interval_ms.to_string(),
        ));
        core_params.push((
            "suspect_timeout_ms".to_string(),
            options.suspect_timeout_ms.to_string(),
        ));
        core_params.push((
            "retransmit_interval_ms".to_string(),
            options.retransmit_interval_ms.to_string(),
        ));
        core_params.push((
            "round_timeout_ms".to_string(),
            options.round_timeout_ms.to_string(),
        ));
        core_params.push((
            "control_fanout".to_string(),
            options.control_fanout.to_string(),
        ));
        core_params.push((
            "transfer_chunk_bytes".to_string(),
            options.transfer_chunk_bytes.to_string(),
        ));
        core_params.push((
            "gossip_repair_interval_ms".to_string(),
            options.gossip_repair_interval_ms.to_string(),
        ));
        core_params.push((
            "gossip_credit_window".to_string(),
            options.gossip_credit_window.to_string(),
        ));
        core_params.push((
            "gossip_batch_max".to_string(),
            options.gossip_batch_max.to_string(),
        ));
        let control_config = catalog.control_config(
            &options.control_channel,
            options.publish_interval_ms,
            options.adaptive,
            &core_params,
        );
        let control_channel = kernel.create_channel(&control_config, platform)?;

        Ok(Self {
            current_stack: options.initial_stack.name(),
            kernel,
            catalog,
            context_store,
            data_channel,
            control_channel,
            options,
            reconfigurations: 0,
            sent_messages: 0,
        })
    }

    /// The kernel backing this node.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel (tests and advanced integrations).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The stack catalogue this node deploys from.
    pub fn catalog(&self) -> &StackCatalog {
        &self.catalog
    }

    /// The node's shared Cocaditem context store (live view of the
    /// replicated context; also the first rejoin state-transfer section).
    pub fn context_store(&self) -> &Rc<RefCell<ContextStore>> {
        &self.context_store
    }

    /// Name of the stack currently deployed on the data channel.
    pub fn current_stack(&self) -> &str {
        &self.current_stack
    }

    /// Number of reconfigurations applied so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Number of application messages sent so far.
    pub fn sent_messages(&self) -> u64 {
        self.sent_messages
    }

    /// Counters of the data channel's gossip session (push-phase forwards
    /// and duplicates, repair digests/pulls/pushes, repaired deliveries), or
    /// `None` when the current data stack is not epidemic. Read through the
    /// session downcast hook; used by the testbed to report per-node
    /// epidemic coverage and repair work.
    pub fn gossip_stats(&self) -> Option<morpheus_groupcomm::gossip::GossipStats> {
        let channel = self.kernel.channel(self.data_channel)?;
        let session = channel.session_of(morpheus_groupcomm::gossip::GOSSIP_LAYER)?;
        let session = session.borrow();
        session
            .as_any()?
            .downcast_ref::<morpheus_groupcomm::gossip::GossipSession>()
            .map(morpheus_groupcomm::gossip::GossipSession::stats)
    }

    /// Counters of the data channel's recovery session as
    /// `(buffer_shed, catchups)`: application sends shed from the bounded
    /// join-view buffer, and completed repair→snapshot catch-up transfers.
    /// `None` when the data stack carries no recovery layer.
    pub fn recovery_stats(&self) -> Option<(u64, u64)> {
        let channel = self.kernel.channel(self.data_channel)?;
        let session = channel.session_of(morpheus_groupcomm::recovery::RECOVERY_LAYER)?;
        let session = session.borrow();
        session
            .as_any()?
            .downcast_ref::<morpheus_groupcomm::recovery::RecoverySession>()
            .map(|recovery| (recovery.buffer_shed(), recovery.catchup_count()))
    }

    /// Layer names of the data channel, bottom-first.
    pub fn data_stack_layers(&self) -> Vec<String> {
        self.kernel
            .channel(self.data_channel)
            .map(|channel| {
                channel
                    .layer_names()
                    .iter()
                    .map(|name| name.as_str().to_string())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Sends an application payload to the whole group on the data channel.
    pub fn send_to_group(&mut self, payload: impl Into<Bytes>, platform: &mut dyn Platform) {
        let source = platform.node_id();
        let event = Event::down(DataEvent::to_group(source, Message::with_payload(payload)));
        self.sent_messages += 1;
        self.kernel
            .dispatch_and_process(self.data_channel, event, platform);
    }

    /// Delivers a packet received from the network.
    pub fn deliver_packet(&mut self, packet: InPacket, platform: &mut dyn Platform) -> Result<()> {
        self.kernel.deliver_packet(packet, platform)
    }

    /// Delivers a batch of packets with a single kernel queue drain,
    /// returning how many were rejected (undecodable or misaddressed).
    pub fn deliver_packet_batch(
        &mut self,
        packets: impl IntoIterator<Item = InPacket>,
        platform: &mut dyn Platform,
    ) -> usize {
        self.kernel.deliver_packet_batch(packets, platform)
    }

    /// Reports a fired timer.
    pub fn timer_fired(&mut self, key: TimerKey, platform: &mut dyn Platform) {
        self.kernel.timer_expired(key, platform);
    }

    /// Installs a data-channel view on the **control** channel.
    ///
    /// View synchrony lives only in the generated data stacks; the control
    /// channel (fd → cocaditem → core) never sees its `ViewInstall`s
    /// directly. The node runtime calls this when the application is told
    /// about a view change, so the control plane treats installed views as
    /// authoritative membership: the failure detector stops tracking
    /// expelled members, the context store drops their snapshots, and the
    /// core layer removes them from ack quorums and generated stack
    /// configurations. Idempotent — re-announcements of the current view
    /// (e.g. across a stack replacement) are harmless.
    pub fn install_control_view(
        &mut self,
        view_id: u64,
        members: Vec<NodeId>,
        platform: &mut dyn Platform,
    ) {
        let view = View::new(view_id, members);
        self.kernel.dispatch_and_process(
            self.control_channel,
            Event::down(ViewInstall { view }),
            platform,
        );
    }

    /// Applies a reconfiguration request raised by the Core control layer:
    /// block, replace, resume, acknowledge.
    ///
    /// The acknowledgement is stamped with the request's epoch and sent to
    /// the coordinator that initiated the round, *after* the deployment
    /// succeeded — never optimistically. If the replacement fails after the
    /// channel was driven to quiescence, the old stack is resumed (so the
    /// data channel is not left blocked forever) and the failure is surfaced
    /// to the application as a notification.
    pub fn apply_reconfiguration(
        &mut self,
        request: ReconfigRequest,
        platform: &mut dyn Platform,
    ) -> Result<()> {
        let config = ChannelConfig::from_xml(&request.description)?;

        // 1. Drive the data channel to quiescence: the view-synchrony layer
        //    buffers application sends from this point on.
        let old_channel = self.kernel.channel_id(&request.channel);
        if let Some(channel) = old_channel {
            self.kernel
                .dispatch_and_process(channel, Event::down(BlockRequest {}), platform);
        }

        // 2. Deploy the new stack. Shared sessions (notably view synchrony)
        //    carry their state across the replacement. On failure the old
        //    stack is still in place: resume it so the channel does not stay
        //    blocked, and surface the error.
        let new_channel = match self
            .kernel
            .replace_channel(&request.channel, &config, platform)
        {
            Ok(channel) => channel,
            Err(error) => {
                if let Some(channel) = old_channel {
                    self.kernel.dispatch_and_process(
                        channel,
                        Event::down(ResumeRequest {}),
                        platform,
                    );
                }
                platform.deliver(AppDelivery {
                    channel: request.channel.clone().into(),
                    kind: DeliveryKind::Notification(format!(
                        "reconfiguration to `{}` (epoch {}) failed: {error}; \
                         resumed the previous stack",
                        request.stack_name, request.epoch
                    )),
                });
                return Err(error);
            }
        };
        if request.channel == self.options.data_channel {
            self.data_channel = new_channel;
        }

        // 3. Resume the data flow; buffered sends are re-emitted through the
        //    new stack.
        self.kernel
            .dispatch_and_process(new_channel, Event::down(ResumeRequest {}), platform);

        self.current_stack = request.stack_name.clone();
        self.reconfigurations += 1;

        // 4. Acknowledge the deployment to the coordinator of this epoch.
        //    The ack travels down the control channel; the Core layer counts
        //    a self-addressed ack locally instead of sending it on the wire.
        let local = platform.node_id();
        let mut message = Message::new();
        message.push(&request.epoch);
        message.push(&request.stack_name);
        let ack = Event::down(ReconfigAck::new(
            local,
            morpheus_appia::event::Dest::Node(request.coordinator),
            message,
        ));
        self.kernel
            .dispatch_and_process(self.control_channel, ack, platform);

        platform.deliver(AppDelivery {
            channel: request.channel.into(),
            kind: DeliveryKind::Reconfigured {
                stack: request.stack_name,
            },
        });
        Ok(())
    }
}

impl std::fmt::Debug for MorpheusNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MorpheusNode")
            .field("members", &self.options.members)
            .field("current_stack", &self.current_stack)
            .field("reconfigurations", &self.reconfigurations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::{NodeProfile, PacketClass, TestPlatform};

    use super::*;

    fn members(count: u32) -> Vec<NodeId> {
        (0..count).map(NodeId).collect()
    }

    #[test]
    fn node_starts_with_data_and_control_channels() {
        let mut platform = TestPlatform::new(NodeId(0));
        let node = MorpheusNode::new(NodeOptions::new(members(3)), &mut platform).unwrap();
        assert_eq!(node.kernel().channel_names(), vec!["ctrl", "data"]);
        assert_eq!(node.current_stack(), "best-effort");
        assert_eq!(
            node.data_stack_layers(),
            vec!["network", "beb", "fd", "recovery", "vsync", "app"]
        );
        // Channel creation publishes the initial context on the control channel.
        assert!(platform
            .sent
            .iter()
            .any(|packet| packet.channel == "ctrl" && packet.class == PacketClass::Context));
    }

    #[test]
    fn group_sends_fan_out_according_to_the_initial_stack() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut node = MorpheusNode::new(NodeOptions::new(members(4)), &mut platform).unwrap();
        platform.take_sent();
        node.send_to_group(&b"hello"[..], &mut platform);
        let data_packets = platform
            .take_sent()
            .into_iter()
            .filter(|packet| packet.class == PacketClass::Data)
            .count();
        assert_eq!(data_packets, 3);
        assert_eq!(node.sent_messages(), 1);
    }

    #[test]
    fn applying_a_reconfiguration_swaps_the_data_stack() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut node = MorpheusNode::new(NodeOptions::new(members(3)), &mut platform).unwrap();
        let hybrid = node
            .catalog()
            .config_for(&StackKind::HybridMecho { relay: NodeId(0) });

        node.apply_reconfiguration(
            ReconfigRequest {
                channel: "data".into(),
                stack_name: "hybrid-mecho-relay0".into(),
                description: hybrid.to_xml(),
                epoch: 1,
                coordinator: NodeId(0),
            },
            &mut platform,
        )
        .unwrap();

        assert_eq!(node.current_stack(), "hybrid-mecho-relay0");
        assert_eq!(node.reconfigurations(), 1);
        assert!(node.data_stack_layers().contains(&"mecho".to_string()));
        // The node acknowledged to the coordinator (node 0) on the control channel.
        assert!(platform
            .sent
            .iter()
            .any(|packet| packet.channel == "ctrl" && packet.class == PacketClass::Control));
        // The application was told about the reconfiguration.
        assert!(platform
            .take_deliveries()
            .iter()
            .any(|delivery| matches!(&delivery.kind, DeliveryKind::Reconfigured { stack } if stack.contains("mecho"))));
    }

    #[test]
    fn buffered_sends_survive_a_reconfiguration() {
        let mut platform = TestPlatform::with_profile(NodeProfile::mobile_pda(NodeId(2)));
        let mut node = MorpheusNode::new(NodeOptions::new(members(3)), &mut platform).unwrap();
        platform.take_sent();

        // Block the data channel (as the reconfiguration procedure would),
        // then send: nothing leaves the node.
        let data_id = node.kernel_mut().channel_id("data").unwrap();
        node.kernel_mut().dispatch_and_process(
            data_id,
            Event::down(BlockRequest {}),
            &mut platform,
        );
        node.send_to_group(&b"queued"[..], &mut platform);
        assert_eq!(
            platform
                .sent
                .iter()
                .filter(|p| p.class == PacketClass::Data)
                .count(),
            0,
            "sends are buffered while blocked"
        );

        // Replacing the stack and resuming releases the buffered message
        // through the *new* stack (Mecho, wireless mode → a single packet to
        // the relay).
        let hybrid = node
            .catalog()
            .config_for(&StackKind::HybridMecho { relay: NodeId(0) });
        node.apply_reconfiguration(
            ReconfigRequest {
                channel: "data".into(),
                stack_name: "hybrid-mecho-relay0".into(),
                description: hybrid.to_xml(),
                epoch: 1,
                coordinator: NodeId(0),
            },
            &mut platform,
        )
        .unwrap();
        let data_packets: Vec<_> = platform
            .take_sent()
            .into_iter()
            .filter(|packet| packet.class == PacketClass::Data)
            .collect();
        assert_eq!(
            data_packets.len(),
            1,
            "buffered send released through the Mecho relay path"
        );
    }

    #[test]
    fn bad_reconfiguration_descriptions_are_rejected() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut node = MorpheusNode::new(NodeOptions::new(members(2)), &mut platform).unwrap();
        let err = node.apply_reconfiguration(
            ReconfigRequest {
                channel: "data".into(),
                stack_name: "broken".into(),
                description: "<not-xml".into(),
                epoch: 1,
                coordinator: NodeId(0),
            },
            &mut platform,
        );
        assert!(err.is_err());
        assert_eq!(node.reconfigurations(), 0);
    }

    #[test]
    fn failed_replacement_resumes_the_old_stack_instead_of_leaking_a_block() {
        // Regression test: a description that *parses* but cannot be
        // instantiated (unknown layer) used to leave the data channel
        // blocked forever after the BlockRequest had been dispatched.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut node = MorpheusNode::new(NodeOptions::new(members(3)), &mut platform).unwrap();
        platform.take_sent();
        platform.take_deliveries();

        let err = node.apply_reconfiguration(
            ReconfigRequest {
                channel: "data".into(),
                stack_name: "bogus".into(),
                description: "<channel name=\"data\"><layer name=\"no-such-layer\"/></channel>"
                    .into(),
                epoch: 1,
                coordinator: NodeId(0),
            },
            &mut platform,
        );
        assert!(err.is_err());
        assert_eq!(node.reconfigurations(), 0);
        assert_eq!(node.current_stack(), "best-effort");

        // The failure is surfaced to the application...
        let notes: Vec<String> = platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::Notification(text) => Some(text),
                _ => None,
            })
            .collect();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("failed"));
        assert!(notes[0].contains("resumed"));

        // ... no ack was sent for the failed deployment ...
        assert!(platform
            .take_sent()
            .iter()
            .all(|packet| packet.class != PacketClass::Control));

        // ... and the old stack still carries traffic: the channel was
        // resumed, not left blocked.
        node.send_to_group(&b"still flowing"[..], &mut platform);
        let data_packets = platform
            .take_sent()
            .into_iter()
            .filter(|packet| packet.class == PacketClass::Data)
            .count();
        assert_eq!(
            data_packets, 2,
            "sends leave the node through the old stack"
        );
    }
}
