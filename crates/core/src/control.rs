//! The Core control layer: coordinator-driven adaptation.
//!
//! The layer sits on the control channel, above the Cocaditem dissemination
//! layer and a control-plane failure detector. Every node maintains the
//! distributed context it learns from [`ContextUpdated`] events; the
//! coordinator (lowest *live* member id, the deterministic election the paper
//! describes) additionally evaluates the adaptation policy whenever the
//! context changes. When the policy prefers a different stack configuration
//! the coordinator:
//!
//! 1. opens a new **reconfiguration epoch** and ships the declarative channel
//!    description to every participant in an epoch-stamped
//!    [`ReconfigCommand`] (and asks its own local module to deploy it);
//! 2. retransmits the command to members that have not acknowledged, every
//!    `retransmit_interval_ms`, until the round either completes or hits
//!    `round_timeout_ms` (at which point it is aborted and the policy may
//!    re-fire with a fresh epoch);
//! 3. collects epoch-stamped [`ReconfigAck`]s — sent by the local module only
//!    *after* the deployment succeeded — and, once every live member has
//!    redeployed, reports the reconfiguration latency to the application.
//!
//! Epochs are monotonic per group: members reject commands whose epoch is not
//! newer than the last one they accepted (so reordered or replayed commands
//! cannot roll the stack back), and the coordinator rejects acknowledgements
//! whose epoch does not match the round in flight (so an ack replayed from a
//! previous round to the same stack cannot complete a newer round early).
//! The ballot ordering, ack bookkeeping and retransmit/timeout clock are the
//! shared [`morpheus_groupcomm::round`] engine; this layer keeps only the
//! reconfiguration payloads and wire formats.
//!
//! Failures are tolerated through the control-channel failure detector: a
//! [`Suspect`]ed member is excluded from the ack quorum (the round can finish
//! without it), and a suspected *coordinator* triggers deterministic
//! re-election — the next-lowest live id takes over and, because the policy
//! is a pure function of the replicated context, resumes or re-initiates the
//! in-flight adaptation under a fresh epoch. An [`Alive`] notification (a
//! false suspicion healed) re-admits the member to the quorum.
//!
//! The actual deployment — blocking the data channel, replacing the stack,
//! resuming the flow — is performed by the local module
//! ([`crate::node::MorpheusNode`]), because a session cannot mutate the
//! kernel that is executing it; the layer only raises a
//! [`morpheus_appia::platform::ReconfigRequest`] through the platform.

use std::collections::BTreeSet;

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::{ChannelInit, TimerExpired};
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::{DeliveryKind, NodeId, ReconfigRequest};
use morpheus_appia::sendable_event;
use morpheus_appia::session::Session;
use morpheus_appia::Kernel;
use morpheus_cocaditem::dissemination::ContextUpdated;
use morpheus_cocaditem::ContextStore;
use morpheus_groupcomm::events::{Alive, Suspect, ViewInstall};
use morpheus_groupcomm::round::{Ballot, Engine as RoundEngine, Tick};

use crate::policy::{AdaptationPolicy, GlobalContext, StackKind};
use crate::rules::DefaultPolicy;
use crate::stack_catalog::StackCatalog;

/// Registered name of the Core control layer.
pub const CORE_LAYER: &str = "core";

/// Timer tag for the coordinator's retransmit/round-timeout timer.
const ROUND_TAG: u32 = 1;

sendable_event! {
    /// Coordinator → members: deploy the carried stack configuration
    /// (message headers, top-first: the channel description text, the stack
    /// name, then the reconfiguration epoch).
    pub struct ReconfigCommand, class: Control
}

sendable_event! {
    /// Member → coordinator: the carried stack configuration is deployed
    /// (message headers, top-first: the stack name, then the epoch).
    pub struct ReconfigAck, class: Control
}

/// Registers the Core control layer and its event types with a kernel.
pub fn register_core(kernel: &mut Kernel) {
    kernel.layers_mut().register(CoreLayer);
    ReconfigCommand::register(kernel.events_mut());
    ReconfigAck::register(kernel.events_mut());
}

/// The Core control layer.
///
/// Parameters:
///
/// * `members` — comma-separated control-group membership;
/// * `data_channel` — name of the data channel to adapt (default `data`);
/// * `adaptive` — when `false` the layer only observes and never reconfigures
///   (the paper's non-adapted baseline);
/// * `initial_stack` — name of the stack deployed at start-up
///   (default `best-effort`);
/// * `retransmit_interval_ms` — how often the coordinator retransmits an
///   unacknowledged [`ReconfigCommand`] (default 500 ms);
/// * `round_timeout_ms` — total time budget of one reconfiguration round
///   before it is aborted and re-initiated under a fresh epoch
///   (default 4000 ms);
/// * plus the [`DefaultPolicy`] thresholds (`large_group_threshold`,
///   `fec_error_threshold`, `retransmit_error_threshold`, `fec_k`,
///   `gossip_fanout`, `gossip_ttl`).
pub struct CoreLayer;

impl Layer for CoreLayer {
    fn name(&self) -> &str {
        CORE_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<ContextUpdated>(),
            EventSpec::of::<ReconfigCommand>(),
            EventSpec::of::<ReconfigAck>(),
            EventSpec::of::<ChannelInit>(),
            EventSpec::of::<TimerExpired>(),
            EventSpec::of::<Suspect>(),
            EventSpec::of::<Alive>(),
            EventSpec::of::<ViewInstall>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["ReconfigCommand", "ReconfigAck"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        let members = param_node_list(params, "members");
        let data_channel = params
            .get("data_channel")
            .cloned()
            .unwrap_or_else(|| "data".to_string());
        let hb = param_or(params, "hb_interval_ms", 1000u64);
        let suspect = param_or(params, "suspect_timeout_ms", 5000u64);
        let retransmit = param_or(params, "retransmit_interval_ms", 500u64).max(10);
        let round_timeout = param_or(params, "round_timeout_ms", 4000u64).max(100);
        Box::new(CoreSession {
            catalog: StackCatalog::new(&data_channel, members.clone())
                .with_failure_detection(hb, suspect)
                .with_fd_fanout(param_or(params, "control_fanout", 3usize))
                .with_view_change_timing(retransmit, round_timeout)
                .with_transfer_chunk_bytes(param_or(params, "transfer_chunk_bytes", 1024usize))
                .with_gossip_repair(param_or(params, "gossip_repair_interval_ms", 1000u64))
                .with_gossip_flow(
                    param_or(params, "gossip_credit_window", 128usize),
                    param_or(params, "gossip_batch_max", 4usize),
                ),
            members,
            data_channel,
            adaptive: param_or(params, "adaptive", true),
            policy: DefaultPolicy::from_params(params),
            store: ContextStore::new(),
            current_stack: params
                .get("initial_stack")
                .cloned()
                .unwrap_or_else(|| "best-effort".to_string()),
            // The engine starts at `Ballot::ZERO`: holder 0 makes every
            // epoch-0 ballot lose the tie-break, so epoch 0 is never a valid
            // round.
            engine: RoundEngine::new(),
            pending: None,
            suspected: BTreeSet::new(),
            accepted: None,
            installed: None,
            confirmed: BTreeSet::new(),
            round_timer: None,
            retransmit_interval_ms: retransmit,
            round_timeout_ms: round_timeout,
            reconfigurations_started: 0,
            reconfigurations_completed: 0,
            reconfigurations_aborted: 0,
        })
    }
}

/// The proposal payload of the round in flight. Its ballot, ack set, start
/// time and retransmit count live in the round engine.
#[derive(Debug, Clone)]
struct PendingReconfiguration {
    /// The stack kind of the round (kept so repairs can re-render the
    /// description over a changed live membership later).
    kind: StackKind,
    stack_name: String,
    description: String,
}

/// A stack configuration this node deployed (member side) or saw the group
/// commit (coordinator side), kept so late joiners and healed members can be
/// repaired onto it.
#[derive(Debug, Clone)]
struct InstalledStack {
    epoch: u64,
    /// The stack kind, when this node rendered the configuration itself
    /// (coordinator side); members that merely deployed a shipped
    /// description have no kind and repair with the description as-is.
    kind: Option<StackKind>,
    stack_name: String,
    description: String,
}

impl InstalledStack {
    fn matches(&self, epoch: u64, stack_name: &str) -> bool {
        self.epoch == epoch && self.stack_name == stack_name
    }
}

/// Session state of the Core control layer.
#[derive(Debug)]
pub struct CoreSession {
    // bound: replaced wholesale on every view install; <= view size.
    members: Vec<NodeId>,
    data_channel: String,
    adaptive: bool,
    policy: DefaultPolicy,
    catalog: StackCatalog,
    store: ContextStore,
    /// The stack the group has agreed on. On the coordinator this is only
    /// committed when a round *completes* (never optimistically), so an
    /// aborted round leaves the policy free to re-fire.
    current_stack: String,
    /// The shared round engine: ballot monotonicity (the highest epoch this
    /// node initiated or accepted, with the holding coordinator as the
    /// tie-break), the in-flight round's ack set, and the retransmit/timeout
    /// clock.
    engine: RoundEngine<NodeId>,
    /// The in-flight proposal payload, kept in lockstep with the engine's
    /// round on the coordinator.
    pending: Option<PendingReconfiguration>,
    // bound: fed by the control-plane failure detector -- only current members appear.
    suspected: BTreeSet<NodeId>,
    /// The configuration accepted from the most recent command, kept until
    /// the local module confirms the deployment (its ack passing back down
    /// through this layer promotes it to [`CoreSession::installed`]).
    accepted: Option<InstalledStack>,
    /// The configuration this node last deployed (member) or saw the group
    /// commit (coordinator). Duplicate commands for it are re-acked without
    /// redeploying, and the coordinator repairs members that are known to
    /// miss it (see [`CoreSession::repair_behind`]).
    installed: Option<InstalledStack>,
    /// Coordinator bookkeeping: members known to run [`CoreSession::installed`]
    /// (they acknowledged its epoch). Live members outside this set are
    /// re-sent the installed configuration whenever the policy is otherwise
    /// satisfied — so a member whose command was lost while it was (even
    /// falsely) suspected still converges after the quorum moved on.
    // bound: <= view size; rebuilt from the completed round's acks on commit.
    confirmed: BTreeSet<NodeId>,
    round_timer: Option<u64>,
    retransmit_interval_ms: u64,
    round_timeout_ms: u64,
    reconfigurations_started: u64,
    reconfigurations_completed: u64,
    reconfigurations_aborted: u64,
}

impl CoreSession {
    /// Members not currently suspected by the control-plane failure detector.
    fn live_members(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .copied()
            .filter(|member| !self.suspected.contains(member))
            .collect()
    }

    /// The current coordinator: the lowest live member id.
    fn coordinator(&self) -> Option<NodeId> {
        self.live_members().into_iter().min()
    }

    fn arm_round_timer(&mut self, ctx: &mut EventContext<'_>) {
        self.round_timer = Some(ctx.set_timer(self.retransmit_interval_ms, ROUND_TAG));
    }

    fn cancel_round_timer(&mut self, ctx: &mut EventContext<'_>) {
        if let Some(timer_id) = self.round_timer.take() {
            ctx.cancel_timer(timer_id);
        }
    }

    /// Dispatches a [`ReconfigCommand`] carrying the given configuration —
    /// the single place the command's wire layout (description, stack name,
    /// epoch) is produced, shared by round initiation, retransmission and
    /// repair.
    fn dispatch_command(
        epoch: u64,
        stack_name: &String,
        description: &String,
        targets: Vec<NodeId>,
        ctx: &mut EventContext<'_>,
    ) {
        if targets.is_empty() {
            return;
        }
        let mut message = Message::new();
        message.push(&epoch);
        message.push(stack_name);
        message.push(description);
        ctx.dispatch(Event::down(ReconfigCommand::new(
            ctx.node_id(),
            Dest::Nodes(targets),
            message,
        )));
    }

    fn send_command(&self, targets: Vec<NodeId>, ctx: &mut EventContext<'_>) {
        let (Some(pending), Some(round)) = (&self.pending, self.engine.round()) else {
            return;
        };
        Self::dispatch_command(
            round.ballot.epoch,
            &pending.stack_name,
            &pending.description,
            targets,
            ctx,
        );
    }

    fn evaluate(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        if !self.adaptive || self.coordinator() != Some(local) || self.pending.is_some() {
            return;
        }
        // The policy sees only the live membership and its context: a crashed
        // relay candidate must not be selected again.
        let live = self.live_members();
        let mut store = self.store.clone();
        for suspect in &self.suspected {
            store.remove(*suspect);
        }
        let context = GlobalContext {
            local,
            members: live,
            store,
            current_stack: self.current_stack.clone(),
        };
        let Some(kind) = self.policy.evaluate(&context) else {
            // No (or not enough) context for a fresh decision — but the
            // committed stack is always safe to re-send to members known to
            // be behind (e.g. one whose context was pruned on suspicion and
            // has not republished yet).
            self.repair_behind(ctx);
            return;
        };
        let desired = kind.name();
        if desired == self.current_stack {
            // The group already agreed on this stack — but members whose
            // command was lost while they were suspected (or that this node,
            // as a failover coordinator, never heard an ack from) may still
            // run an older one. Repair them instead of declaring victory on
            // local state alone.
            self.repair_behind(ctx);
            return;
        }

        // Open a new epoch and initiate the round: ship the declarative
        // description to every other participant (including suspected ones —
        // a false suspicion must not starve a member of the command) and ask
        // the local module to deploy it too. `current_stack` is *not* touched
        // here; it is committed when the round completes. The description is
        // rendered over the *live* membership, so generated stacks stop
        // listing crashed nodes.
        let config = self.catalog.config_for_members(&kind, self.live_members());
        let description = config.to_xml();
        // Every member must ack — the coordinator and suspected ones
        // included; completion excludes whoever is suspected *at completion
        // time* instead.
        let ballot = self
            .engine
            .open(local, self.members.iter().copied(), ctx.now_ms());
        self.reconfigurations_started += 1;
        self.pending = Some(PendingReconfiguration {
            kind,
            stack_name: desired.clone(),
            description: description.clone(),
        });

        let others: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|member| *member != local)
            .collect();
        self.send_command(others, ctx);
        ctx.request_reconfiguration(ReconfigRequest {
            channel: self.data_channel.clone(),
            stack_name: desired,
            description,
            epoch: ballot.epoch,
            coordinator: local,
        });
        self.cancel_round_timer(ctx);
        self.arm_round_timer(ctx);
    }

    fn maybe_complete(&mut self, ctx: &mut EventContext<'_>) {
        if self.pending.is_none() || !self.engine.completed(&self.suspected) {
            return;
        }
        let round = self.engine.complete().expect("completed round in flight");
        let pending = self.pending.take().expect("pending checked above");
        let elapsed = ctx.now_ms().saturating_sub(round.started_at_ms);
        self.current_stack = pending.stack_name.clone();
        self.reconfigurations_completed += 1;
        // Remember what the group committed and who is known to run it, so
        // members that were cut out of the quorum can be repaired later.
        self.installed = Some(InstalledStack {
            epoch: round.ballot.epoch,
            kind: Some(pending.kind.clone()),
            stack_name: pending.stack_name.clone(),
            description: pending.description.clone(),
        });
        self.confirmed = round.acked().clone();
        self.cancel_round_timer(ctx);
        ctx.deliver(DeliveryKind::ReconfigurationComplete {
            stack: pending.stack_name,
            epoch: round.ballot.epoch,
            latency_ms: elapsed,
            retransmits: round.retransmits,
            nodes: self.live_members().len(),
        });
    }

    /// Re-sends the committed configuration to live members not known to run
    /// it. Fired whenever the policy is otherwise satisfied (context updates
    /// arrive periodically, so this retries until everyone is confirmed) and
    /// when a suspicion heals — it is what lets a member that missed the
    /// round while suspected, or a failover coordinator's silent peers,
    /// converge after the quorum already moved on.
    ///
    /// Each repair attempt is stamped with a *fresh* epoch (mirrored into
    /// `installed` so the returning acks match): a member whose epoch already
    /// advanced past the committed round — it deployed a later round that was
    /// aborted, or its deployment failed after accepting the command — would
    /// reject a replay of the committed epoch as stale, but accepts the
    /// re-assertion under a higher one.
    fn repair_behind(&mut self, ctx: &mut EventContext<'_>) {
        if self.pending.is_some() {
            return;
        }
        if self
            .installed
            .as_ref()
            .is_none_or(|installed| installed.stack_name != self.current_stack)
        {
            return;
        }
        let local = ctx.node_id();
        let live = self.live_members();
        let behind: Vec<NodeId> = live
            .iter()
            .copied()
            .filter(|member| *member != local && !self.confirmed.contains(member))
            .collect();
        if behind.is_empty() {
            return;
        }
        // A repair opens no round: just adopt the successor ballot, so the
        // re-asserted command outranks everything seen so far.
        self.engine
            .adopt(Ballot::new(self.engine.epoch() + 1, local));
        // Re-render the committed configuration over the *current* live
        // membership before re-asserting it: a member repaired after a crash
        // elsewhere must not receive stacks still listing the dead node.
        let refreshed = self
            .installed
            .as_ref()
            .and_then(|installed| installed.kind.clone())
            .map(|kind| self.catalog.config_for_members(&kind, live).to_xml());
        let installed = self.installed.as_mut().expect("installed checked above");
        installed.epoch = self.engine.epoch();
        if let Some(description) = refreshed {
            installed.description = description;
        }
        Self::dispatch_command(
            installed.epoch,
            &installed.stack_name,
            &installed.description,
            behind,
            ctx,
        );
    }

    /// Gives up on the in-flight round. `current_stack` keeps its pre-round
    /// value, so the policy is free to re-fire (with a fresh epoch).
    fn abort_round(&mut self, ctx: &mut EventContext<'_>) {
        if self.pending.take().is_some() {
            self.reconfigurations_aborted += 1;
        }
        self.engine.abort();
        self.cancel_round_timer(ctx);
    }

    fn on_round_timer(&mut self, timer_id: u64, ctx: &mut EventContext<'_>) {
        if self.round_timer != Some(timer_id) {
            return; // stale timer from a previous round
        }
        self.round_timer = None;
        if self.pending.is_none() {
            return;
        }
        match self.engine.tick(ctx.now_ms(), self.round_timeout_ms) {
            Tick::Idle => {}
            Tick::TimedOut => {
                // The round failed (e.g. the command kept getting lost, or a
                // member died without being suspected yet): abort and let the
                // policy re-fire immediately under a fresh epoch.
                let aborted = self.pending.clone();
                self.abort_round(ctx);
                self.evaluate(ctx);
                if self.pending.is_none() {
                    // The policy did not re-fire (e.g. the context shifted
                    // back mid-round) — but this node itself already deployed
                    // the aborted configuration at initiation. Roll its own
                    // data channel back to the committed stack so the
                    // coordinator is not the one node silently running the
                    // abandoned one.
                    let rollback = match (&aborted, &self.installed) {
                        (Some(aborted), Some(installed))
                            if installed.stack_name == self.current_stack
                                && aborted.stack_name != self.current_stack =>
                        {
                            Some(installed.clone())
                        }
                        _ => None,
                    };
                    if let Some(installed) = rollback {
                        ctx.request_reconfiguration(ReconfigRequest {
                            channel: self.data_channel.clone(),
                            stack_name: installed.stack_name,
                            description: installed.description,
                            epoch: installed.epoch,
                            coordinator: ctx.node_id(),
                        });
                    }
                }
            }
            Tick::Retransmit(missing) => {
                // Retransmit to everyone still missing, suspected members
                // included (a falsely suspected member must still converge on
                // the new stack). The engine also lists the coordinator's own
                // unfinished deployment, which is not a wire target.
                let local = ctx.node_id();
                let targets: Vec<NodeId> = missing
                    .into_iter()
                    .filter(|member| *member != local)
                    .collect();
                if !targets.is_empty() {
                    self.send_command(targets, ctx);
                }
                self.arm_round_timer(ctx);
            }
        }
    }

    fn on_suspect(&mut self, node: NodeId, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        if node == local || !self.members.contains(&node) {
            return;
        }
        let was_coordinator = self.coordinator() == Some(node);
        self.suspected.insert(node);
        self.store.remove(node);
        if self.pending.is_some() {
            // The ack quorum shrank; the round may be complete now.
            self.maybe_complete(ctx);
        }
        if was_coordinator && self.coordinator() == Some(local) && self.pending.is_none() {
            // Deterministic failover: this node is now the lowest live id.
            // The policy is a pure function of the replicated context, so
            // re-evaluating resumes (or re-initiates) the in-flight
            // adaptation under a fresh epoch.
            self.evaluate(ctx);
        }
    }

    fn on_command(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        let Some(command) = event.get_mut::<ReconfigCommand>() else {
            return;
        };
        let coordinator = command.header.source;
        let Ok(description) = command.message.pop::<String>() else {
            return;
        };
        let Ok(stack_name) = command.message.pop::<String>() else {
            return;
        };
        let Ok(epoch) = command.message.pop::<u64>() else {
            return;
        };

        if self.engine.adopt(Ballot::new(epoch, coordinator)) {
            // A winning ballot supersedes anything this node initiated
            // itself — including a concurrent round under the *same* epoch
            // number from a higher-id coordinator (split-brain after a false
            // suspicion): the lower coordinator id wins the tie-break.
            if self.pending.is_some() {
                self.abort_round(ctx);
            }
            self.accepted = Some(InstalledStack {
                epoch,
                kind: None,
                stack_name: stack_name.clone(),
                description: description.clone(),
            });
            // Deploy; the local module acknowledges after the deployment
            // succeeded (never before).
            ctx.request_reconfiguration(ReconfigRequest {
                channel: self.data_channel.clone(),
                stack_name,
                description,
                epoch,
                coordinator,
            });
        } else if self
            .installed
            .as_ref()
            .is_some_and(|installed| installed.matches(epoch, &stack_name))
        {
            // A retransmission of the round we already deployed: our ack was
            // probably lost, so resend it without redeploying.
            let mut message = Message::new();
            message.push(&epoch);
            message.push(&stack_name);
            ctx.dispatch(Event::down(ReconfigAck::new(
                ctx.node_id(),
                Dest::Node(coordinator),
                message,
            )));
        }
        // Otherwise: a stale or reordered command from an earlier epoch —
        // rejected, the stack is never rolled back by old commands.
    }

    fn record_ack(
        &mut self,
        source: NodeId,
        epoch: u64,
        stack_name: &str,
        ctx: &mut EventContext<'_>,
    ) {
        let in_round = self.engine.round_epoch() == Some(epoch)
            && self
                .pending
                .as_ref()
                .is_some_and(|pending| pending.stack_name == stack_name);
        if in_round {
            self.engine.record_ack(epoch, source);
            self.maybe_complete(ctx);
        } else if self
            .installed
            .as_ref()
            .is_some_and(|installed| installed.matches(epoch, stack_name))
        {
            // A late (or repair-triggered) ack for the committed round: the
            // member is now known to run the installed stack.
            self.confirmed.insert(source);
        }
        // Acks from any other epoch are dropped: a replayed ack from a
        // previous round (even for the same stack name) cannot complete a
        // newer round.
    }
}

impl Session for CoreSession {
    fn layer_name(&self) -> &str {
        CORE_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            ctx.forward(event);
            return;
        }

        if let Some(timer) = event.get::<TimerExpired>() {
            if timer.owner == CORE_LAYER {
                if timer.tag == ROUND_TAG {
                    let timer_id = timer.timer_id;
                    self.on_round_timer(timer_id, ctx);
                }
                return;
            }
            ctx.forward(event);
            return;
        }

        if let Some(update) = event.get::<ContextUpdated>() {
            self.store.update(update.snapshot.clone());
            self.evaluate(ctx);
            return;
        }

        if let Some(suspect) = event.get::<Suspect>() {
            let node = suspect.node;
            self.on_suspect(node, ctx);
            return;
        }

        if let Some(install) = event.get::<ViewInstall>() {
            // An installed view *is* the membership: nodes the view removed
            // stop being considered for quorums, coordinator election and
            // generated stack configurations entirely (unlike a suspicion,
            // which is provisional and healable).
            self.members = install.view.members.clone();
            self.suspected.retain(|node| self.members.contains(node));
            self.confirmed.retain(|node| self.members.contains(node));
            self.store.retain_members(&self.members);
            // Refreeze the in-flight round's ack threshold over the new
            // membership: expelled members stop being awaited.
            self.engine.set_participants(self.members.iter().copied());
            // The quorum may just have shrunk to the already-collected acks
            // (same reason on_suspect re-checks): an expelled member must
            // not stall a round it was the last missing ack of.
            self.maybe_complete(ctx);
            ctx.forward(event);
            return;
        }

        if let Some(alive) = event.get::<Alive>() {
            // A false suspicion healed: the member rejoins the quorum (and
            // the coordinator election). If it missed a round while it was
            // suspected, repair it onto the committed stack right away.
            self.suspected.remove(&alive.node);
            if self.adaptive && self.coordinator() == Some(ctx.node_id()) {
                self.repair_behind(ctx);
            }
            return;
        }

        if event.is::<ReconfigCommand>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            self.on_command(event, ctx);
            return;
        }

        if event.is::<ReconfigAck>() {
            let local = ctx.node_id();
            if event.direction == Direction::Down {
                // An ack raised by the local module after a successful
                // deployment, on its way to the coordinator.
                let Some(ack) = event.get_mut::<ReconfigAck>() else {
                    return;
                };
                let dest = ack.header.dest.clone();
                let Ok(stack_name) = ack.message.pop::<String>() else {
                    return;
                };
                let Ok(epoch) = ack.message.pop::<u64>() else {
                    return;
                };
                if dest == Dest::Node(local) {
                    // This node is the coordinator of the round: its own
                    // deployment just finished — count it instead of sending
                    // it to itself. `installed` is deliberately *not* touched
                    // here: the coordinator's repair record only moves to the
                    // new configuration when the group commits it
                    // (`maybe_complete`), so an aborted round cannot destroy
                    // the record of the stack the group still agrees on.
                    self.record_ack(local, epoch, &stack_name, ctx);
                } else {
                    // Member: the deployment it accepted earlier is what
                    // commits the new stack locally; it becomes the base
                    // configuration for duplicate re-acks and repairs.
                    if self
                        .accepted
                        .as_ref()
                        .is_some_and(|accepted| accepted.matches(epoch, &stack_name))
                    {
                        self.installed = self.accepted.take();
                        self.confirmed = BTreeSet::from([local]);
                    }
                    self.current_stack = stack_name.clone();
                    ack.message.push(&epoch);
                    ack.message.push(&stack_name);
                    ctx.forward(event);
                }
                return;
            }
            let Some(ack) = event.get_mut::<ReconfigAck>() else {
                return;
            };
            let source = ack.header.source;
            let Ok(stack_name) = ack.message.pop::<String>() else {
                return;
            };
            let Ok(epoch) = ack.message.pop::<u64>() else {
                return;
            };
            self.record_ack(source, epoch, &stack_name, ctx);
            return;
        }

        ctx.forward(event);
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::{NodeProfile, TestPlatform};
    use morpheus_appia::testing::Harness;
    use morpheus_cocaditem::ContextSnapshot;

    use super::*;

    fn core_params(members: &[u32], adaptive: bool) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params.insert("adaptive".into(), adaptive.to_string());
        params.insert("data_channel".into(), "data".into());
        params.insert("retransmit_interval_ms".into(), "500".into());
        params.insert("round_timeout_ms".into(), "4000".into());
        params
    }

    fn context_update(node: u32, mobile: bool) -> Event {
        let profile = if mobile {
            NodeProfile::mobile_pda(NodeId(node))
        } else {
            NodeProfile::fixed_pc(NodeId(node))
        };
        Event::up(ContextUpdated {
            snapshot: ContextSnapshot::from_profile(&profile, 1),
        })
    }

    fn ack_message(epoch: u64, stack: &str) -> Message {
        let mut message = Message::new();
        message.push(&epoch);
        message.push(&stack.to_string());
        message
    }

    fn command_message(epoch: u64, stack: &str, description: &str) -> Message {
        let mut message = Message::new();
        message.push(&epoch);
        message.push(&stack.to_string());
        message.push(&description.to_string());
        message
    }

    /// Simulates the local module's post-deployment ack: a `ReconfigAck`
    /// travelling down the control channel towards the coordinator.
    fn deployment_ack(local: u32, coordinator: u32, epoch: u64, stack: &str) -> Event {
        Event::down(ReconfigAck::new(
            NodeId(local),
            Dest::Node(NodeId(coordinator)),
            ack_message(epoch, stack),
        ))
    }

    fn fire_pending_timers(harness: &mut Harness, platform: &mut TestPlatform) {
        let timers: Vec<_> = std::mem::take(&mut platform.timers);
        let cancelled: Vec<_> = std::mem::take(&mut platform.cancelled);
        for (_, key) in timers {
            if !cancelled.contains(&key) {
                harness.fire_timer(key, platform);
            }
        }
    }

    fn completion_reports(platform: &mut TestPlatform) -> Vec<(String, u64, u64)> {
        platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::ReconfigurationComplete {
                    stack,
                    epoch,
                    latency_ms,
                    ..
                } => Some((stack, epoch, latency_ms)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn coordinator_initiates_reconfiguration_when_the_group_becomes_hybrid() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);

        // Context arrives for every member: node 0 fixed, nodes 1-2 mobile.
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        assert!(
            platform.reconfig_requests.is_empty(),
            "no decision before full context"
        );
        core.run_up(context_update(2, true), &mut platform);

        assert_eq!(platform.reconfig_requests.len(), 1);
        let request = &platform.reconfig_requests[0];
        assert_eq!(request.channel, "data");
        assert_eq!(request.stack_name, "hybrid-mecho-relay0");
        assert_eq!(request.epoch, 1, "first round opens epoch 1");
        assert_eq!(request.coordinator, NodeId(0));
        assert!(request.description.contains("mecho"));

        let down = core.drain_down();
        let commands: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ReconfigCommand>())
            .collect();
        assert_eq!(commands.len(), 1);
        assert_eq!(
            commands[0].get::<ReconfigCommand>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(1), NodeId(2)])
        );
    }

    #[test]
    fn non_adaptive_nodes_never_reconfigure() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], false), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        assert!(platform.reconfig_requests.is_empty());
        assert!(core
            .drain_down()
            .iter()
            .all(|event| !event.is::<ReconfigCommand>()));
    }

    #[test]
    fn non_coordinator_nodes_only_observe() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        assert!(platform.reconfig_requests.is_empty());
    }

    #[test]
    fn members_deploy_on_command_and_ack_only_after_deployment() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);

        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(0),
                Dest::Node(NodeId(1)),
                command_message(
                    3,
                    "hybrid-mecho-relay0",
                    "<channel name=\"data\"><layer name=\"network\"/></channel>",
                ),
            )),
            &mut platform,
        );

        assert_eq!(platform.reconfig_requests.len(), 1);
        assert_eq!(
            platform.reconfig_requests[0].stack_name,
            "hybrid-mecho-relay0"
        );
        assert_eq!(platform.reconfig_requests[0].epoch, 3);
        assert_eq!(platform.reconfig_requests[0].coordinator, NodeId(0));
        // No ack yet: the local module acknowledges after deployment.
        assert!(core
            .drain_down()
            .iter()
            .all(|event| !event.is::<ReconfigAck>()));

        // The local module finished deploying: its ack is forwarded towards
        // the coordinator with the epoch intact.
        let down = core.run_down(
            deployment_ack(1, 0, 3, "hybrid-mecho-relay0"),
            &mut platform,
        );
        let acks: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ReconfigAck>())
            .collect();
        assert_eq!(acks.len(), 1);
        assert_eq!(
            acks[0].get::<ReconfigAck>().unwrap().header.dest,
            Dest::Node(NodeId(0))
        );
    }

    #[test]
    fn stale_or_reordered_commands_are_rejected() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);
        let description = "<channel name=\"data\"><layer name=\"network\"/></channel>";

        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(0),
                Dest::Node(NodeId(1)),
                command_message(5, "reliable", description),
            )),
            &mut platform,
        );
        assert_eq!(platform.reconfig_requests.len(), 1);

        // A reordered command from an earlier epoch must not overwrite the
        // newer deployment.
        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(0),
                Dest::Node(NodeId(1)),
                command_message(3, "best-effort", description),
            )),
            &mut platform,
        );
        assert_eq!(
            platform.reconfig_requests.len(),
            1,
            "epoch 3 after epoch 5 is stale"
        );
    }

    #[test]
    fn duplicate_commands_after_deployment_resend_the_ack() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);
        let description = "<channel name=\"data\"><layer name=\"network\"/></channel>";

        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(0),
                Dest::Node(NodeId(1)),
                command_message(2, "reliable", description),
            )),
            &mut platform,
        );
        core.run_down(deployment_ack(1, 0, 2, "reliable"), &mut platform);

        // The coordinator retransmits (it never saw the ack): the member
        // re-acks without deploying again.
        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(0),
                Dest::Node(NodeId(1)),
                command_message(2, "reliable", description),
            )),
            &mut platform,
        );
        let down = core.drain_down();
        assert_eq!(platform.reconfig_requests.len(), 1, "no redeployment");
        let acks: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ReconfigAck>())
            .collect();
        assert_eq!(acks.len(), 1, "ack resent");
    }

    #[test]
    fn coordinator_reports_completion_once_every_member_acknowledged() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        platform.take_deliveries();

        // The coordinator's own deployment finishes...
        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        assert!(
            completion_reports(&mut platform).is_empty(),
            "member 1 has not acknowledged yet"
        );

        // ... and 42 ms later the member's ack arrives.
        platform.advance(42);
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );

        let reports = completion_reports(&mut platform);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, "hybrid-mecho-relay0");
        assert_eq!(reports[0].1, 1, "completed round is epoch 1");
        assert_eq!(reports[0].2, 42);
    }

    #[test]
    fn a_stale_ack_from_a_prior_epoch_cannot_complete_a_newer_round() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        platform.take_deliveries();

        // The round times out and is re-initiated under epoch 2.
        platform.advance(4000);
        fire_pending_timers(&mut core, &mut platform);
        assert_eq!(
            platform.reconfig_requests.len(),
            2,
            "round re-initiated after the timeout"
        );
        assert_eq!(platform.reconfig_requests[1].epoch, 2);

        // The coordinator's own epoch-2 deployment finishes; then an ack
        // replayed from the aborted epoch-1 round arrives — same stack name,
        // wrong epoch. It must not complete the epoch-2 round.
        core.run_down(
            deployment_ack(0, 0, 2, "hybrid-mecho-relay0"),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        assert!(
            completion_reports(&mut platform).is_empty(),
            "stale ack must not complete the newer round"
        );

        // The genuine epoch-2 ack does.
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(2, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        assert_eq!(completion_reports(&mut platform).len(), 1);
    }

    #[test]
    fn lost_commands_are_retransmitted_until_acknowledged() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        core.drain_down();

        // Node 1 acknowledged, node 2's command was lost.
        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );

        platform.advance(500);
        fire_pending_timers(&mut core, &mut platform);
        let down = core.drain_down();
        let retransmits: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ReconfigCommand>())
            .collect();
        assert_eq!(retransmits.len(), 1);
        assert_eq!(
            retransmits[0].get::<ReconfigCommand>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2)]),
            "only the missing member is retransmitted to"
        );
    }

    #[test]
    fn round_timeout_rolls_back_and_lets_the_policy_refire() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        assert_eq!(platform.reconfig_requests.len(), 1);

        // Nothing is ever acknowledged; past the round timeout the round is
        // aborted, `current_stack` keeps its pre-round value, and the policy
        // immediately re-fires under a fresh epoch.
        platform.advance(4000);
        fire_pending_timers(&mut core, &mut platform);
        assert_eq!(platform.reconfig_requests.len(), 2);
        assert_eq!(
            platform.reconfig_requests[1].stack_name,
            "hybrid-mecho-relay0"
        );
        assert_eq!(platform.reconfig_requests[1].epoch, 2);
    }

    #[test]
    fn a_suspected_member_is_excluded_from_the_ack_quorum() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        platform.take_deliveries();

        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        assert!(
            completion_reports(&mut platform).is_empty(),
            "node 2 is still expected"
        );

        // Node 2 crashes: the failure detector suspects it and the round
        // completes over the surviving quorum.
        core.run_up(Event::up(Suspect { node: NodeId(2) }), &mut platform);
        let reports = completion_reports(&mut platform);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn a_suspected_coordinator_triggers_failover_to_the_next_lowest_live_id() {
        // Two fixed nodes (0 and 1) and two mobiles: the group stays hybrid
        // even after the original coordinator dies.
        let mut platform = TestPlatform::new(NodeId(1));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2, 3], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, false), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        core.run_up(context_update(3, true), &mut platform);
        assert!(
            platform.reconfig_requests.is_empty(),
            "node 1 is not the coordinator while node 0 lives"
        );

        // Node 0 (coordinator *and* designated relay) crashes. Node 1 takes
        // over and re-initiates the adaptation over the survivors — with a
        // relay that is still alive.
        core.run_up(Event::up(Suspect { node: NodeId(0) }), &mut platform);
        assert_eq!(platform.reconfig_requests.len(), 1);
        let request = &platform.reconfig_requests[0];
        assert_eq!(request.coordinator, NodeId(1));
        assert!(
            !request.stack_name.ends_with("relay0"),
            "the dead node must not be selected as relay (got {})",
            request.stack_name
        );
    }

    #[test]
    fn an_alive_notification_readmits_a_member_to_the_quorum() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        platform.take_deliveries();

        // Node 1 is falsely suspected, then heard from again before it acked.
        core.run_up(Event::up(Suspect { node: NodeId(1) }), &mut platform);
        core.run_up(Event::up(Alive { node: NodeId(1) }), &mut platform);

        // Completion now requires node 1's ack again.
        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        assert!(completion_reports(&mut platform).is_empty());
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        assert_eq!(completion_reports(&mut platform).len(), 1);
    }

    #[test]
    fn a_member_that_missed_the_round_while_suspected_is_repaired() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        core.drain_down();

        // Node 2's command is lost, it gets suspected, and the round
        // completes over the shrunk quorum {0, 1}.
        core.run_up(Event::up(Suspect { node: NodeId(2) }), &mut platform);
        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        assert_eq!(completion_reports(&mut platform).len(), 1);
        core.drain_down();

        // The suspicion heals: node 2 must be re-sent the committed
        // configuration even though the policy sees nothing left to do.
        core.run_up(Event::up(Alive { node: NodeId(2) }), &mut platform);
        let down = core.drain_down();
        let repairs: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ReconfigCommand>())
            .collect();
        assert_eq!(repairs.len(), 1, "repair command sent on recovery");
        assert_eq!(
            repairs[0].get::<ReconfigCommand>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(2)])
        );

        // Context updates keep retrying the repair until node 2 confirms...
        core.run_up(context_update(1, true), &mut platform);
        assert_eq!(
            core.drain_down()
                .iter()
                .filter(|event| event.is::<ReconfigCommand>())
                .count(),
            1,
            "repair retried while the member is unconfirmed"
        );

        // ... after which no further commands are sent and no new round or
        // completion report is produced. The ack answers the latest repair
        // epoch (round 1 opened epoch 1; the two repair attempts above opened
        // 2 and 3).
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(2),
                Dest::Node(NodeId(0)),
                ack_message(3, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        core.run_up(context_update(1, true), &mut platform);
        assert!(core
            .drain_down()
            .iter()
            .all(|event| !event.is::<ReconfigCommand>()));
        assert!(completion_reports(&mut platform).is_empty());
        assert!(platform.reconfig_requests.len() == 1, "no new round opened");
    }

    #[test]
    fn an_aborted_round_does_not_destroy_the_repair_record_of_the_committed_stack() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);

        // Round 1 commits `hybrid-mecho-relay0` over the quorum {0, 1} while
        // node 2 is suspected.
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        core.run_up(Event::up(Suspect { node: NodeId(2) }), &mut platform);
        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        assert_eq!(completion_reports(&mut platform).len(), 1);

        // The context shifts (node 0 turns mobile): round 2 towards
        // `best-effort` opens, the coordinator deploys locally, but no member
        // ever acknowledges...
        core.run_up(context_update(0, true), &mut platform);
        assert_eq!(platform.reconfig_requests.len(), 2);
        assert_eq!(platform.reconfig_requests[1].epoch, 2);
        core.run_down(deployment_ack(0, 0, 2, "best-effort"), &mut platform);

        // ... and the context shifts back to hybrid before the round times
        // out and aborts. The policy is satisfied again (`current_stack` was
        // never optimistically committed), so no third round opens — but the
        // coordinator rolls its own data channel back to the committed stack
        // (it deployed `best-effort` locally when round 2 started).
        core.run_up(context_update(0, false), &mut platform);
        platform.advance(4000);
        fire_pending_timers(&mut core, &mut platform);
        assert_eq!(platform.reconfig_requests.len(), 3, "rollback, not a round");
        assert_eq!(
            platform.reconfig_requests[2].stack_name, "hybrid-mecho-relay0",
            "the coordinator redeploys the committed stack locally"
        );
        core.drain_down();

        // Regression: the aborted round's local deployment must not have
        // destroyed the repair record of the *committed* stack — when node 2
        // heals it is still repaired onto `hybrid-mecho-relay0`, under a
        // fresh epoch that outranks the aborted round's.
        core.run_up(Event::up(Alive { node: NodeId(2) }), &mut platform);
        let down = core.drain_down();
        let repairs: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ReconfigCommand>())
            .collect();
        assert_eq!(repairs.len(), 1, "repair survives the aborted round");
        let command = repairs[0].get::<ReconfigCommand>().unwrap();
        assert_eq!(command.header.dest, Dest::Nodes(vec![NodeId(2)]));
        let mut message = command.message.clone();
        let _description: String = message.pop().unwrap();
        assert_eq!(message.pop::<String>().unwrap(), "hybrid-mecho-relay0");
        assert!(
            message.pop::<u64>().unwrap() > 2,
            "the repair epoch outranks the aborted round, so even a member \
             that deployed the aborted configuration accepts it"
        );
    }

    #[test]
    fn equal_epochs_are_tie_broken_by_the_coordinator_id() {
        // Split-brain: after a false suspicion, coordinators 0 and 1 briefly
        // run concurrent rounds under the same epoch number. The ballot
        // order (epoch, coordinator-id) makes exactly one of them win on
        // every member, regardless of arrival order.
        let description = "<channel name=\"data\"><layer name=\"network\"/></channel>";

        // Arrival order A: higher-id coordinator first, lower-id second.
        let mut platform = TestPlatform::new(NodeId(5));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 5], true), &mut platform);
        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(1),
                Dest::Node(NodeId(5)),
                command_message(2, "reliable", description),
            )),
            &mut platform,
        );
        assert_eq!(platform.reconfig_requests.len(), 1);
        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(0),
                Dest::Node(NodeId(5)),
                command_message(2, "best-effort", description),
            )),
            &mut platform,
        );
        assert_eq!(
            platform.reconfig_requests.len(),
            2,
            "the lower-id coordinator's equal-epoch ballot outranks the accepted one"
        );
        assert_eq!(platform.reconfig_requests[1].stack_name, "best-effort");
        // A third command from the deposed coordinator under the same epoch
        // is rejected.
        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(1),
                Dest::Node(NodeId(5)),
                command_message(2, "fec-k4", description),
            )),
            &mut platform,
        );
        assert_eq!(platform.reconfig_requests.len(), 2);

        // Arrival order B: lower-id coordinator first — the higher-id
        // coordinator's same-epoch round never deploys.
        let mut platform = TestPlatform::new(NodeId(5));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 5], true), &mut platform);
        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(0),
                Dest::Node(NodeId(5)),
                command_message(2, "best-effort", description),
            )),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(1),
                Dest::Node(NodeId(5)),
                command_message(2, "reliable", description),
            )),
            &mut platform,
        );
        assert_eq!(platform.reconfig_requests.len(), 1);
        assert_eq!(platform.reconfig_requests[0].stack_name, "best-effort");
    }

    #[test]
    fn generated_stacks_list_only_live_members() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2, 3], true), &mut platform);

        // Node 3 crashes before the adaptation fires; the configuration the
        // round ships must not list it.
        core.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, false), &mut platform);
        core.run_up(context_update(2, true), &mut platform);

        assert_eq!(platform.reconfig_requests.len(), 1);
        let description = &platform.reconfig_requests[0].description;
        let config = morpheus_appia::config::ChannelConfig::from_xml(description).unwrap();
        let fd = config.layers.iter().find(|l| l.layer == "fd").unwrap();
        assert_eq!(
            fd.params.get("members").map(String::as_str),
            Some("0,1,2"),
            "the crashed node dropped out of the generated stack"
        );
    }

    #[test]
    fn a_view_install_rewrites_the_control_membership() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        platform.take_deliveries();

        // The view removes node 2 outright (it is not merely suspected):
        // the round now completes over {0, 1} alone.
        core.run_down(
            Event::down(ViewInstall {
                view: morpheus_groupcomm::View::new(2, vec![NodeId(0), NodeId(1)]),
            }),
            &mut platform,
        );
        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        let reports = completion_reports(&mut platform);
        assert_eq!(reports.len(), 1, "node 2 is no longer awaited");
    }

    #[test]
    fn a_view_install_completes_a_round_whose_last_ack_was_expelled() {
        // Regression: the quorum check must re-run when the view shrinks,
        // exactly as it does on a local Suspect — otherwise a round whose
        // only missing ack belonged to the expelled member stalls until the
        // round timeout aborts it.
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        platform.take_deliveries();

        // Acks from 0 (self) and 1 arrive; node 2 stays silent.
        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        assert!(completion_reports(&mut platform).is_empty());

        // The view expels node 2: the round is complete over {0, 1} now.
        core.run_down(
            Event::down(ViewInstall {
                view: morpheus_groupcomm::View::new(2, vec![NodeId(0), NodeId(1)]),
            }),
            &mut platform,
        );
        assert_eq!(completion_reports(&mut platform).len(), 1);
    }

    #[test]
    fn repairs_are_re_rendered_over_the_current_live_membership() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2, 3], true), &mut platform);
        // Hybrid group: round 1 ships while everyone is live.
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, false), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        core.run_up(context_update(3, true), &mut platform);
        core.drain_down();

        // Node 2's command is lost and it gets suspected; node 3 crashes for
        // good too. The round completes over {0, 1}.
        core.run_up(Event::up(Suspect { node: NodeId(2) }), &mut platform);
        core.run_up(Event::up(Suspect { node: NodeId(3) }), &mut platform);
        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        core.drain_down();

        // Node 2 heals; the repair command it receives is rendered over the
        // current live membership {0, 1, 2} — without the dead node 3.
        core.run_up(Event::up(Alive { node: NodeId(2) }), &mut platform);
        let down = core.drain_down();
        let repair = down
            .iter()
            .find(|event| event.is::<ReconfigCommand>())
            .expect("repair command sent on recovery");
        let mut message = repair.get::<ReconfigCommand>().unwrap().message.clone();
        let description: String = message.pop().unwrap();
        let config = morpheus_appia::config::ChannelConfig::from_xml(&description).unwrap();
        let fd = config.layers.iter().find(|l| l.layer == "fd").unwrap();
        assert_eq!(
            fd.params.get("members").map(String::as_str),
            Some("0,1,2"),
            "the repair description reflects the live view"
        );
    }

    #[test]
    fn repeated_context_updates_do_not_reinitiate_the_same_stack() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        // Complete the pending reconfiguration.
        core.run_down(
            deployment_ack(0, 0, 1, "hybrid-mecho-relay0"),
            &mut platform,
        );
        core.run_up(
            Event::up(ReconfigAck::new(
                NodeId(1),
                Dest::Node(NodeId(0)),
                ack_message(1, "hybrid-mecho-relay0"),
            )),
            &mut platform,
        );
        platform.reconfig_requests.clear();

        // The same hybrid context arrives again: nothing new should happen.
        core.run_up(context_update(1, true), &mut platform);
        assert!(platform.reconfig_requests.is_empty());
    }
}
