//! The Core control layer: coordinator-driven adaptation.
//!
//! The layer sits on the control channel, above the Cocaditem dissemination
//! layer. Every node maintains the distributed context it learns from
//! [`ContextUpdated`] events; the coordinator (lowest member id, exactly the
//! deterministic election the paper describes) additionally evaluates the
//! adaptation policy whenever the context changes. When the policy prefers a
//! different stack configuration the coordinator:
//!
//! 1. ships the declarative channel description to every participant in a
//!    [`ReconfigCommand`] control message (and asks its own local module to
//!    deploy it);
//! 2. collects [`ReconfigAck`]s and, once every member has redeployed,
//!    reports the reconfiguration latency to the application.
//!
//! The actual deployment — blocking the data channel, replacing the stack,
//! resuming the flow — is performed by the local module
//! ([`crate::node::MorpheusNode`]), because a session cannot mutate the
//! kernel that is executing it; the layer only raises a
//! [`morpheus_appia::platform::ReconfigRequest`] through the platform.

use std::collections::BTreeSet;

use morpheus_appia::event::{Dest, Direction, Event, EventSpec};
use morpheus_appia::events::ChannelInit;
use morpheus_appia::kernel::EventContext;
use morpheus_appia::layer::{param_node_list, param_or, Layer, LayerParams};
use morpheus_appia::message::Message;
use morpheus_appia::platform::{DeliveryKind, NodeId, ReconfigRequest};
use morpheus_appia::sendable_event;
use morpheus_appia::session::Session;
use morpheus_appia::Kernel;
use morpheus_cocaditem::dissemination::ContextUpdated;
use morpheus_cocaditem::ContextStore;

use crate::policy::{AdaptationPolicy, GlobalContext};
use crate::rules::DefaultPolicy;
use crate::stack_catalog::StackCatalog;

/// Registered name of the Core control layer.
pub const CORE_LAYER: &str = "core";

sendable_event! {
    /// Coordinator → members: deploy the carried stack configuration
    /// (message headers: stack name, then the channel description text).
    pub struct ReconfigCommand, class: Control
}

sendable_event! {
    /// Member → coordinator: the carried stack configuration is deployed
    /// (message header: stack name).
    pub struct ReconfigAck, class: Control
}

/// Registers the Core control layer and its event types with a kernel.
pub fn register_core(kernel: &mut Kernel) {
    kernel.layers_mut().register(CoreLayer);
    ReconfigCommand::register(kernel.events_mut());
    ReconfigAck::register(kernel.events_mut());
}

/// The Core control layer.
///
/// Parameters:
///
/// * `members` — comma-separated control-group membership;
/// * `data_channel` — name of the data channel to adapt (default `data`);
/// * `adaptive` — when `false` the layer only observes and never reconfigures
///   (the paper's non-adapted baseline);
/// * `initial_stack` — name of the stack deployed at start-up
///   (default `best-effort`);
/// * plus the [`DefaultPolicy`] thresholds (`large_group_threshold`,
///   `fec_error_threshold`, `retransmit_error_threshold`, `fec_k`,
///   `gossip_fanout`, `gossip_ttl`).
pub struct CoreLayer;

impl Layer for CoreLayer {
    fn name(&self) -> &str {
        CORE_LAYER
    }

    fn accepted_events(&self) -> Vec<EventSpec> {
        vec![
            EventSpec::of::<ContextUpdated>(),
            EventSpec::of::<ReconfigCommand>(),
            EventSpec::of::<ReconfigAck>(),
            EventSpec::of::<ChannelInit>(),
        ]
    }

    fn provided_events(&self) -> Vec<&'static str> {
        vec!["ReconfigCommand", "ReconfigAck"]
    }

    fn create_session(&self, params: &LayerParams) -> Box<dyn Session> {
        let members = param_node_list(params, "members");
        let data_channel = params
            .get("data_channel")
            .cloned()
            .unwrap_or_else(|| "data".to_string());
        let hb = param_or(params, "hb_interval_ms", 1000u64);
        let suspect = param_or(params, "suspect_timeout_ms", 5000u64);
        Box::new(CoreSession {
            catalog: StackCatalog::new(&data_channel, members.clone())
                .with_failure_detection(hb, suspect),
            members,
            data_channel,
            adaptive: param_or(params, "adaptive", true),
            policy: DefaultPolicy::from_params(params),
            store: ContextStore::new(),
            current_stack: params
                .get("initial_stack")
                .cloned()
                .unwrap_or_else(|| "best-effort".to_string()),
            pending: None,
            acks: BTreeSet::new(),
            reconfigurations_started: 0,
            reconfigurations_completed: 0,
        })
    }
}

#[derive(Debug, Clone)]
struct PendingReconfiguration {
    stack_name: String,
    started_at_ms: u64,
}

/// Session state of the Core control layer.
#[derive(Debug)]
pub struct CoreSession {
    members: Vec<NodeId>,
    data_channel: String,
    adaptive: bool,
    policy: DefaultPolicy,
    catalog: StackCatalog,
    store: ContextStore,
    current_stack: String,
    pending: Option<PendingReconfiguration>,
    acks: BTreeSet<NodeId>,
    reconfigurations_started: u64,
    reconfigurations_completed: u64,
}

impl CoreSession {
    fn coordinator(&self) -> Option<NodeId> {
        self.members.iter().copied().min()
    }

    fn evaluate(&mut self, ctx: &mut EventContext<'_>) {
        let local = ctx.node_id();
        if !self.adaptive || self.coordinator() != Some(local) || self.pending.is_some() {
            return;
        }
        let context = GlobalContext {
            local,
            members: self.members.clone(),
            store: self.store.clone(),
            current_stack: self.current_stack.clone(),
        };
        let Some(kind) = self.policy.evaluate(&context) else {
            return;
        };
        let desired = kind.name();
        if desired == self.current_stack {
            return;
        }

        // Initiate the reconfiguration: ship the declarative description to
        // every other participant and ask the local module to deploy it too.
        let config = self.catalog.config_for(&kind);
        let description = config.to_xml();
        self.reconfigurations_started += 1;
        self.pending = Some(PendingReconfiguration {
            stack_name: desired.clone(),
            started_at_ms: ctx.now_ms(),
        });
        self.acks.clear();
        self.acks.insert(local);
        self.current_stack = desired.clone();

        let others: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|member| *member != local)
            .collect();
        if !others.is_empty() {
            let mut message = Message::new();
            message.push(&desired);
            message.push(&description);
            ctx.dispatch(Event::down(ReconfigCommand::new(
                local,
                Dest::Nodes(others),
                message,
            )));
        }
        ctx.request_reconfiguration(ReconfigRequest {
            channel: self.data_channel.clone(),
            stack_name: desired,
            description,
        });
        self.maybe_complete(ctx);
    }

    fn maybe_complete(&mut self, ctx: &mut EventContext<'_>) {
        let Some(pending) = self.pending.clone() else {
            return;
        };
        if !self.members.iter().all(|member| self.acks.contains(member)) {
            return;
        }
        let elapsed = ctx.now_ms().saturating_sub(pending.started_at_ms);
        self.reconfigurations_completed += 1;
        self.pending = None;
        ctx.deliver(DeliveryKind::Notification(format!(
            "reconfiguration to `{}` completed across {} nodes in {} ms",
            pending.stack_name,
            self.members.len(),
            elapsed
        )));
    }
}

impl Session for CoreSession {
    fn layer_name(&self) -> &str {
        CORE_LAYER
    }

    fn handle(&mut self, mut event: Event, ctx: &mut EventContext<'_>) {
        if event.is::<ChannelInit>() {
            ctx.forward(event);
            return;
        }

        if let Some(update) = event.get::<ContextUpdated>() {
            self.store.update(update.snapshot.clone());
            self.evaluate(ctx);
            return;
        }

        if event.is::<ReconfigCommand>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(command) = event.get_mut::<ReconfigCommand>() else {
                return;
            };
            let coordinator = command.header.source;
            let Ok(description) = command.message.pop::<String>() else {
                return;
            };
            let Ok(stack_name) = command.message.pop::<String>() else {
                return;
            };
            self.current_stack = stack_name.clone();
            ctx.request_reconfiguration(ReconfigRequest {
                channel: self.data_channel.clone(),
                stack_name: stack_name.clone(),
                description,
            });
            let local = ctx.node_id();
            let mut message = Message::new();
            message.push(&stack_name);
            ctx.dispatch(Event::down(ReconfigAck::new(
                local,
                Dest::Node(coordinator),
                message,
            )));
            return;
        }

        if event.is::<ReconfigAck>() {
            if event.direction == Direction::Down {
                ctx.forward(event);
                return;
            }
            let Some(ack) = event.get_mut::<ReconfigAck>() else {
                return;
            };
            let source = ack.header.source;
            let Ok(stack_name) = ack.message.pop::<String>() else {
                return;
            };
            if self
                .pending
                .as_ref()
                .map(|pending| pending.stack_name.clone())
                == Some(stack_name)
            {
                self.acks.insert(source);
                self.maybe_complete(ctx);
            }
            return;
        }

        ctx.forward(event);
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::{NodeProfile, TestPlatform};
    use morpheus_appia::testing::Harness;
    use morpheus_cocaditem::ContextSnapshot;

    use super::*;

    fn core_params(members: &[u32], adaptive: bool) -> LayerParams {
        let mut params = LayerParams::new();
        params.insert(
            "members".into(),
            members
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        params.insert("adaptive".into(), adaptive.to_string());
        params.insert("data_channel".into(), "data".into());
        params
    }

    fn context_update(node: u32, mobile: bool) -> Event {
        let profile = if mobile {
            NodeProfile::mobile_pda(NodeId(node))
        } else {
            NodeProfile::fixed_pc(NodeId(node))
        };
        Event::up(ContextUpdated {
            snapshot: ContextSnapshot::from_profile(&profile, 1),
        })
    }

    #[test]
    fn coordinator_initiates_reconfiguration_when_the_group_becomes_hybrid() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);

        // Context arrives for every member: node 0 fixed, nodes 1-2 mobile.
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        assert!(
            platform.reconfig_requests.is_empty(),
            "no decision before full context"
        );
        core.run_up(context_update(2, true), &mut platform);

        assert_eq!(platform.reconfig_requests.len(), 1);
        let request = &platform.reconfig_requests[0];
        assert_eq!(request.channel, "data");
        assert_eq!(request.stack_name, "hybrid-mecho-relay0");
        assert!(request.description.contains("mecho"));

        let down = core.drain_down();
        let commands: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ReconfigCommand>())
            .collect();
        assert_eq!(commands.len(), 1);
        assert_eq!(
            commands[0].get::<ReconfigCommand>().unwrap().header.dest,
            Dest::Nodes(vec![NodeId(1), NodeId(2)])
        );
    }

    #[test]
    fn non_adaptive_nodes_never_reconfigure() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], false), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        assert!(platform.reconfig_requests.is_empty());
        assert!(core
            .drain_down()
            .iter()
            .all(|event| !event.is::<ReconfigCommand>()));
    }

    #[test]
    fn non_coordinator_nodes_only_observe() {
        let mut platform = TestPlatform::new(NodeId(2));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1, 2], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        core.run_up(context_update(2, true), &mut platform);
        assert!(platform.reconfig_requests.is_empty());
    }

    #[test]
    fn members_deploy_and_acknowledge_commands() {
        let mut platform = TestPlatform::new(NodeId(1));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);

        let mut message = Message::new();
        message.push(&"hybrid-mecho-relay0".to_string());
        message.push(&"<channel name=\"data\"><layer name=\"network\"/></channel>".to_string());
        core.run_up(
            Event::up(ReconfigCommand::new(
                NodeId(0),
                Dest::Node(NodeId(1)),
                message,
            )),
            &mut platform,
        );

        assert_eq!(platform.reconfig_requests.len(), 1);
        assert_eq!(
            platform.reconfig_requests[0].stack_name,
            "hybrid-mecho-relay0"
        );
        let down = core.drain_down();
        let acks: Vec<&Event> = down
            .iter()
            .filter(|event| event.is::<ReconfigAck>())
            .collect();
        assert_eq!(acks.len(), 1);
        assert_eq!(
            acks[0].get::<ReconfigAck>().unwrap().header.dest,
            Dest::Node(NodeId(0))
        );
    }

    #[test]
    fn coordinator_reports_completion_once_everyone_acknowledged() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        platform.take_deliveries();

        platform.advance(42);
        let mut message = Message::new();
        message.push(&"hybrid-mecho-relay0".to_string());
        core.run_up(
            Event::up(ReconfigAck::new(NodeId(1), Dest::Node(NodeId(0)), message)),
            &mut platform,
        );

        let notes: Vec<String> = platform
            .take_deliveries()
            .into_iter()
            .filter_map(|delivery| match delivery.kind {
                DeliveryKind::Notification(text) => Some(text),
                _ => None,
            })
            .collect();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("hybrid-mecho-relay0"));
        assert!(notes[0].contains("42 ms"));
    }

    #[test]
    fn repeated_context_updates_do_not_reinitiate_the_same_stack() {
        let mut platform = TestPlatform::new(NodeId(0));
        let mut core = Harness::new(CoreLayer, &core_params(&[0, 1], true), &mut platform);
        core.run_up(context_update(0, false), &mut platform);
        core.run_up(context_update(1, true), &mut platform);
        // Complete the pending reconfiguration.
        let mut message = Message::new();
        message.push(&"hybrid-mecho-relay0".to_string());
        core.run_up(
            Event::up(ReconfigAck::new(NodeId(1), Dest::Node(NodeId(0)), message)),
            &mut platform,
        );
        platform.reconfig_requests.clear();

        // The same hybrid context arrives again: nothing new should happen.
        core.run_up(context_update(1, true), &mut platform);
        assert!(platform.reconfig_requests.is_empty());
    }
}
