//! The catalogue of named stack configurations the Core subsystem deploys.

use morpheus_appia::config::{ChannelConfig, LayerSpec};
use morpheus_appia::platform::NodeId;
use morpheus_groupcomm::suite::StackBuilder;

use crate::policy::{RoomStackKind, StackKind};

/// Produces the declarative channel descriptions for every [`StackKind`],
/// over a fixed data-channel name and group membership.
///
/// All generated data stacks share the view-synchrony session under the same
/// key, so the group state (current view, blocked/buffered messages) survives
/// a stack replacement — this is what makes the reconfiguration lossless for
/// the application.
#[derive(Debug, Clone)]
pub struct StackCatalog {
    channel: String,
    members: Vec<NodeId>,
    share_key: String,
    hb_interval_ms: u64,
    suspect_timeout_ms: u64,
    fd_fanout: usize,
    retransmit_interval_ms: u64,
    round_timeout_ms: u64,
    transfer_chunk_bytes: usize,
    gossip_repair_interval_ms: u64,
    gossip_credit_window: usize,
    gossip_batch_max: usize,
    rejoining: bool,
}

impl StackCatalog {
    /// Creates a catalogue for the given data channel and membership.
    pub fn new(channel: impl Into<String>, members: Vec<NodeId>) -> Self {
        Self {
            channel: channel.into(),
            members,
            share_key: "group".to_string(),
            hb_interval_ms: 1000,
            suspect_timeout_ms: 5000,
            fd_fanout: 3,
            retransmit_interval_ms: 500,
            round_timeout_ms: 4000,
            transfer_chunk_bytes: 1024,
            gossip_repair_interval_ms: 1000,
            gossip_credit_window: 128,
            gossip_batch_max: 4,
            rejoining: false,
        }
    }

    /// Overrides the failure-detection timing of generated stacks.
    pub fn with_failure_detection(mut self, hb_interval_ms: u64, suspect_timeout_ms: u64) -> Self {
        self.hb_interval_ms = hb_interval_ms;
        self.suspect_timeout_ms = suspect_timeout_ms;
        self
    }

    /// Overrides the failure detector's gossip fan-out in generated stacks
    /// and in [`StackCatalog::control_config`] (`0` selects the legacy
    /// all-to-all heartbeat — the benchmarks' O(n²) baseline).
    pub fn with_fd_fanout(mut self, fanout: usize) -> Self {
        self.fd_fanout = fanout;
        self
    }

    /// Overrides the view-change round timing of generated stacks (also the
    /// recovery layer's retry cadence and transfer failover timeout).
    pub fn with_view_change_timing(mut self, retransmit_ms: u64, round_timeout_ms: u64) -> Self {
        self.retransmit_interval_ms = retransmit_ms;
        self.round_timeout_ms = round_timeout_ms;
        self
    }

    /// Overrides the rejoin state-transfer chunk size of generated stacks.
    pub fn with_transfer_chunk_bytes(mut self, bytes: usize) -> Self {
        self.transfer_chunk_bytes = bytes;
        self
    }

    /// Overrides the epidemic repair-pass cadence of generated gossip stacks
    /// (`0` disables the NACK/anti-entropy repair).
    pub fn with_gossip_repair(mut self, interval_ms: u64) -> Self {
        self.gossip_repair_interval_ms = interval_ms;
        self
    }

    /// Overrides the epidemic flow control of generated gossip stacks: the
    /// per-peer credit window (`0` disables backpressure) and how many app
    /// messages one gossip packet may aggregate (`1` = singleton pushes).
    pub fn with_gossip_flow(mut self, credit_window: usize, batch_max: usize) -> Self {
        self.gossip_credit_window = credit_window;
        self.gossip_batch_max = batch_max.max(1);
        self
    }

    /// Marks generated stacks as belonging to a restarted node re-entering
    /// the group (vsync starts with an empty view; the recovery layer drives
    /// re-admission and state transfer).
    pub fn with_rejoining(mut self, rejoining: bool) -> Self {
        self.rejoining = rejoining;
        self
    }

    /// The group membership the catalogue builds stacks for.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The data-channel name.
    pub fn channel_name(&self) -> &str {
        &self.channel
    }

    fn builder_for(&self, members: Vec<NodeId>) -> StackBuilder {
        StackBuilder::new(self.channel.clone(), members)
            .share_vsync(self.share_key.clone())
            .failure_detection(self.hb_interval_ms, self.suspect_timeout_ms)
            .fd_fanout(self.fd_fanout)
            .view_change_timing(self.retransmit_interval_ms, self.round_timeout_ms)
            .transfer_chunk_bytes(self.transfer_chunk_bytes)
            .gossip_repair_interval_ms(self.gossip_repair_interval_ms)
            .gossip_credit_window(self.gossip_credit_window)
            .gossip_batch_max(self.gossip_batch_max)
            .rejoining(self.rejoining)
    }

    /// The channel description for a stack kind, over the catalogue's own
    /// (boot) membership.
    pub fn config_for(&self, kind: &StackKind) -> ChannelConfig {
        self.config_for_members(kind, self.members.clone())
    }

    /// The channel description for a stack kind over an explicit membership —
    /// what the Core control layer uses so generated stacks reflect the
    /// *current* live view instead of the boot membership (crashed nodes
    /// stop being listed).
    pub fn config_for_members(&self, kind: &StackKind, members: Vec<NodeId>) -> ChannelConfig {
        let builder = self.builder_for(members);
        match kind {
            StackKind::BestEffort => builder.beb(false).build(),
            StackKind::Reliable => builder.beb(false).reliable().build(),
            StackKind::ErrorMasking { k } => builder.beb(false).fec(*k).build(),
            StackKind::HybridMecho { relay } => builder.mecho("auto", Some(*relay)).build(),
            StackKind::Gossip { fanout, ttl } => builder.gossip(*fanout, *ttl).build(),
        }
    }

    /// The rendered parameters of one room shard's overlay stack. Room
    /// shards inherit the catalogue's epidemic repair cadence, so tuning
    /// the group's repair knobs tunes every room the same way; the kind
    /// contributes the tree/flood split and the derived push depth.
    pub fn room_params(&self, kind: &RoomStackKind) -> Vec<(String, String)> {
        let mut params = vec![
            ("room_stack".to_string(), kind.name()),
            (
                "repair_interval_ms".to_string(),
                self.gossip_repair_interval_ms.to_string(),
            ),
        ];
        match kind {
            RoomStackKind::DirectPush => {
                params.push(("allow_prune".to_string(), "false".to_string()));
            }
            RoomStackKind::TreePush { push_ttl } => {
                params.push(("allow_prune".to_string(), "true".to_string()));
                params.push(("push_ttl".to_string(), push_ttl.to_string()));
            }
        }
        params
    }

    /// The control-channel description: a control-plane failure detector,
    /// Cocaditem and the Core control layer over the raw network driver.
    ///
    /// The failure detector lives on the *control* channel (not only inside
    /// the data stacks) because the data channel is torn down and rebuilt on
    /// every reconfiguration — exactly the moment crash detection must keep
    /// working so the coordinator's ack quorum and the coordinator election
    /// stay live.
    pub fn control_config(
        &self,
        channel: &str,
        publish_interval_ms: u64,
        adaptive: bool,
        extra_core_params: &[(String, String)],
    ) -> ChannelConfig {
        let members_param = self
            .members
            .iter()
            .map(|m| m.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut core = LayerSpec::new("core")
            .with_param("members", &members_param)
            .with_param("adaptive", adaptive.to_string())
            .with_param("data_channel", &self.channel);
        for (key, value) in extra_core_params {
            core = core.with_param(key.clone(), value.clone());
        }
        ChannelConfig::new(channel)
            .with_layer(LayerSpec::new("network"))
            .with_layer(
                LayerSpec::new("fd")
                    .with_param("members", &members_param)
                    .with_param("hb_interval_ms", self.hb_interval_ms.to_string())
                    .with_param("suspect_timeout_ms", self.suspect_timeout_ms.to_string())
                    .with_param("fanout", self.fd_fanout.to_string()),
            )
            .with_layer(
                LayerSpec::new("cocaditem")
                    .with_param("members", &members_param)
                    .with_param("publish_interval_ms", publish_interval_ms.to_string())
                    .with_param("fanout", self.fd_fanout.to_string()),
            )
            .with_layer(core)
            .with_layer(LayerSpec::new("app"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(count: u32) -> Vec<NodeId> {
        (0..count).map(NodeId).collect()
    }

    #[test]
    fn every_kind_produces_a_distinct_stack() {
        let catalog = StackCatalog::new("data", members(4));
        let kinds = vec![
            StackKind::BestEffort,
            StackKind::Reliable,
            StackKind::ErrorMasking { k: 4 },
            StackKind::HybridMecho { relay: NodeId(0) },
            StackKind::Gossip { fanout: 3, ttl: 4 },
        ];
        let mut multicast_layers = Vec::new();
        for kind in &kinds {
            let config = catalog.config_for(kind);
            assert_eq!(config.name, "data");
            assert_eq!(config.layers.first().unwrap().layer, "network");
            assert_eq!(config.layers.last().unwrap().layer, "app");
            assert!(config.has_layer("vsync"));
            multicast_layers.push(config.layers[1].layer.clone());
        }
        assert_eq!(
            multicast_layers,
            vec!["beb", "beb", "beb", "mecho", "gossip"]
        );
    }

    #[test]
    fn generated_stacks_share_the_vsync_session() {
        let catalog = StackCatalog::new("data", members(3));
        let best_effort = catalog.config_for(&StackKind::BestEffort);
        let hybrid = catalog.config_for(&StackKind::HybridMecho { relay: NodeId(0) });
        let key = |config: &ChannelConfig| {
            config
                .layers
                .iter()
                .find(|layer| layer.layer == "vsync")
                .and_then(|layer| layer.share.clone())
        };
        assert_eq!(key(&best_effort), Some("group".to_string()));
        assert_eq!(key(&best_effort), key(&hybrid));
    }

    #[test]
    fn control_config_stacks_fd_and_cocaditem_under_core() {
        let catalog = StackCatalog::new("data", members(3)).with_failure_detection(250, 900);
        let config = catalog.control_config("ctrl", 500, true, &[]);
        assert_eq!(
            config.layer_names(),
            vec!["network", "fd", "cocaditem", "core", "app"]
        );
        let fd = &config.layers[1];
        assert_eq!(
            fd.params.get("hb_interval_ms").map(String::as_str),
            Some("250")
        );
        assert_eq!(
            fd.params.get("suspect_timeout_ms").map(String::as_str),
            Some("900")
        );
        let core = &config.layers[3];
        assert_eq!(
            core.params.get("adaptive").map(String::as_str),
            Some("true")
        );
        assert_eq!(
            core.params.get("data_channel").map(String::as_str),
            Some("data")
        );
    }

    #[test]
    fn configs_render_from_an_explicit_membership() {
        // The control layer renders stacks from the *live* view: crashed
        // nodes must drop out of every generated member list.
        let catalog = StackCatalog::new("data", members(5));
        let live = vec![NodeId(0), NodeId(1), NodeId(3)];
        let config = catalog.config_for_members(&StackKind::BestEffort, live);
        for layer in ["beb", "fd", "vsync"] {
            let spec = config.layers.iter().find(|l| l.layer == layer).unwrap();
            assert_eq!(
                spec.params.get("members").map(String::as_str),
                Some("0,1,3"),
                "layer {layer} must list only the live members"
            );
        }
    }

    #[test]
    fn fd_fanout_flows_into_generated_stacks_and_the_control_config() {
        let catalog = StackCatalog::new("data", members(4)).with_fd_fanout(0);
        let data = catalog.config_for(&StackKind::BestEffort);
        let fd = data.layers.iter().find(|l| l.layer == "fd").unwrap();
        assert_eq!(fd.params.get("fanout").map(String::as_str), Some("0"));
        let control = catalog.control_config("ctrl", 500, true, &[]);
        let fd = control.layers.iter().find(|l| l.layer == "fd").unwrap();
        assert_eq!(fd.params.get("fanout").map(String::as_str), Some("0"));
        let cocaditem = control
            .layers
            .iter()
            .find(|l| l.layer == "cocaditem")
            .unwrap();
        assert_eq!(
            cocaditem.params.get("fanout").map(String::as_str),
            Some("0")
        );
    }

    #[test]
    fn room_params_render_the_kind_and_inherit_the_repair_cadence() {
        let catalog = StackCatalog::new("data", members(4)).with_gossip_repair(250);
        let direct = catalog.room_params(&RoomStackKind::DirectPush);
        assert!(direct.contains(&("room_stack".to_string(), "room-direct".to_string())));
        assert!(direct.contains(&("allow_prune".to_string(), "false".to_string())));
        assert!(direct.contains(&("repair_interval_ms".to_string(), "250".to_string())));
        let tree = catalog.room_params(&RoomStackKind::TreePush { push_ttl: 6 });
        assert!(tree.contains(&("room_stack".to_string(), "room-tree-t6".to_string())));
        assert!(tree.contains(&("push_ttl".to_string(), "6".to_string())));
        assert!(tree.contains(&("allow_prune".to_string(), "true".to_string())));
    }

    #[test]
    fn configs_roundtrip_through_xml() {
        let catalog = StackCatalog::new("data", members(5));
        for kind in [
            StackKind::BestEffort,
            StackKind::HybridMecho { relay: NodeId(2) },
            StackKind::Gossip { fanout: 2, ttl: 3 },
        ] {
            let config = catalog.config_for(&kind);
            let parsed = ChannelConfig::from_xml(&config.to_xml()).unwrap();
            assert_eq!(parsed, config);
        }
    }
}
