//! The default rule-based adaptation policy.

use morpheus_appia::layer::{param_or, LayerParams};
use morpheus_cocaditem::RoomContext;

use crate::policy::{AdaptationPolicy, GlobalContext, RoomStackKind, StackKind};

/// The smallest TTL at which an epidemic push phase plausibly covers a group
/// of size `n` at the given fan-out: the number of forwarding rounds after
/// which `fanout^rounds >= n`, plus one slack round for the push targets
/// lost to duplication. Floored at the historical default of 4 (small
/// groups keep their behaviour) and capped at 12 (the repair pass closes
/// whatever tail remains — deeper flooding only buys duplicates).
///
/// This is the plumbing-style per-size tuning (van Renesse et al.): the
/// policy derives the dissemination parameters from the *live* group size
/// instead of hard-coding one constant for every scale.
pub fn derived_gossip_ttl(group_size: usize, fanout: usize) -> u32 {
    let fanout = fanout.max(2);
    let mut rounds: u32 = 0;
    let mut covered: usize = 1;
    while covered < group_size {
        covered = covered.saturating_mul(fanout);
        rounds += 1;
    }
    (rounds + 1).clamp(4, 12)
}

/// The rule-based per-room adaptation: maps one room's context slice to the
/// dissemination stack that shard should run.
///
/// Small rooms flood: below `direct_max_size` members, a spanning tree
/// saves at most a handful of duplicate payloads while adding prune/graft
/// control traffic and a failure mode (a broken tree edge) — direct push is
/// both cheaper and sturdier there. Quiet rooms flood too: pruning is only
/// amortised when messages keep flowing along the tree, so below
/// `busy_publish_rate` the duplicates are too rare to matter. Everything
/// else runs the tree, with a push TTL derived from the room size exactly
/// like the whole-group gossip TTL ([`derived_gossip_ttl`]).
#[derive(Debug, Clone)]
pub struct RoomRules {
    /// Largest room that floods unconditionally.
    pub direct_max_size: usize,
    /// Publish rate (messages/minute) below which a room floods even when
    /// large.
    pub busy_publish_rate: f64,
    /// Fan-out assumed when deriving the tree's push TTL.
    pub tree_fanout: usize,
}

impl Default for RoomRules {
    fn default() -> Self {
        Self {
            direct_max_size: 8,
            busy_publish_rate: 2.0,
            tree_fanout: 3,
        }
    }
}

impl RoomRules {
    /// Picks the stack for one room shard.
    pub fn evaluate(&self, context: &RoomContext) -> RoomStackKind {
        if context.size <= self.direct_max_size
            || context.publish_rate_per_min < self.busy_publish_rate
        {
            return RoomStackKind::DirectPush;
        }
        RoomStackKind::TreePush {
            push_ttl: derived_gossip_ttl(context.size, self.tree_fanout),
        }
    }
}

/// The rule-based policy used by the prototype, encoding the trade-offs the
/// paper motivates, evaluated in priority order:
///
/// 1. **Hybrid group** (some participants fixed, some mobile) → the Mecho
///    stack, with the best-resourced fixed node as relay.
/// 2. **Large group** (at or above `large_group_threshold`) → epidemic
///    multicast, with `ttl` derived from the live view size
///    ([`derived_gossip_ttl`]) unless pinned by `gossip_ttl`.
/// 3. **High error rate** (at or above `fec_error_threshold`) → forward error
///    correction ("mask the errors").
/// 4. **Moderate error rate** (at or above `retransmit_error_threshold`) →
///    NACK-based retransmission ("detect and recover").
/// 5. Otherwise → plain best-effort multicast.
#[derive(Debug, Clone)]
pub struct DefaultPolicy {
    /// Group size at which gossip becomes preferable.
    pub large_group_threshold: usize,
    /// Error rate at which FEC becomes preferable.
    pub fec_error_threshold: f64,
    /// Error rate at which retransmission becomes preferable.
    pub retransmit_error_threshold: f64,
    /// FEC block size used when FEC is selected.
    pub fec_k: usize,
    /// Gossip fan-out used when gossip is selected.
    pub gossip_fanout: usize,
    /// Gossip TTL used when gossip is selected. `0` (the default) derives
    /// the TTL from the live group size at evaluation time; a non-zero
    /// value pins it.
    pub gossip_ttl: u32,
}

impl Default for DefaultPolicy {
    fn default() -> Self {
        Self {
            large_group_threshold: 16,
            fec_error_threshold: 0.05,
            retransmit_error_threshold: 0.005,
            fec_k: 4,
            gossip_fanout: 3,
            gossip_ttl: 0,
        }
    }
}

impl DefaultPolicy {
    /// Builds the policy from layer parameters (all optional).
    pub fn from_params(params: &LayerParams) -> Self {
        let defaults = Self::default();
        Self {
            large_group_threshold: param_or(
                params,
                "large_group_threshold",
                defaults.large_group_threshold,
            ),
            fec_error_threshold: param_or(
                params,
                "fec_error_threshold",
                defaults.fec_error_threshold,
            ),
            retransmit_error_threshold: param_or(
                params,
                "retransmit_error_threshold",
                defaults.retransmit_error_threshold,
            ),
            fec_k: param_or(params, "fec_k", defaults.fec_k),
            gossip_fanout: param_or(params, "gossip_fanout", defaults.gossip_fanout),
            gossip_ttl: param_or(params, "gossip_ttl", defaults.gossip_ttl),
        }
    }
}

impl AdaptationPolicy for DefaultPolicy {
    fn name(&self) -> &'static str {
        "default-rules"
    }

    fn evaluate(&self, context: &GlobalContext) -> Option<StackKind> {
        if !context.is_complete() {
            return None;
        }

        if context.store.is_hybrid() {
            let relay = context.store.best_relay()?;
            return Some(StackKind::HybridMecho { relay });
        }
        if context.group_size() >= self.large_group_threshold {
            let ttl = if self.gossip_ttl == 0 {
                derived_gossip_ttl(context.group_size(), self.gossip_fanout)
            } else {
                self.gossip_ttl
            };
            return Some(StackKind::Gossip {
                fanout: self.gossip_fanout,
                ttl,
            });
        }
        let error_rate = context.store.max_error_rate();
        if error_rate >= self.fec_error_threshold {
            return Some(StackKind::ErrorMasking { k: self.fec_k });
        }
        if error_rate >= self.retransmit_error_threshold {
            return Some(StackKind::Reliable);
        }
        Some(StackKind::BestEffort)
    }
}

#[cfg(test)]
mod tests {
    use morpheus_appia::platform::{NodeId, NodeProfile};
    use morpheus_cocaditem::{ContextKey, ContextSnapshot, ContextStore, ContextValue};

    use super::*;

    fn context_with(snapshots: Vec<ContextSnapshot>) -> GlobalContext {
        let members = snapshots.iter().map(|snapshot| snapshot.node).collect();
        let mut store = ContextStore::new();
        for snapshot in snapshots {
            store.update(snapshot);
        }
        GlobalContext {
            local: NodeId(0),
            members,
            store,
            current_stack: "best-effort".into(),
        }
    }

    fn fixed(node: u32) -> ContextSnapshot {
        ContextSnapshot::from_profile(&NodeProfile::fixed_pc(NodeId(node)), 1)
    }

    fn mobile(node: u32) -> ContextSnapshot {
        ContextSnapshot::from_profile(&NodeProfile::mobile_pda(NodeId(node)), 1)
    }

    fn with_error(mut snapshot: ContextSnapshot, rate: f64) -> ContextSnapshot {
        snapshot.set(ContextKey::ErrorRate, ContextValue::Number(rate));
        snapshot
    }

    #[test]
    fn room_rules_split_direct_and_tree() {
        let rules = RoomRules::default();
        // Small rooms flood regardless of traffic.
        let small = RoomContext::synthetic(0, 4, 100.0);
        assert_eq!(rules.evaluate(&small), RoomStackKind::DirectPush);
        // Large but quiet rooms flood too.
        let quiet = RoomContext::synthetic(1, 80, 0.5);
        assert_eq!(rules.evaluate(&quiet), RoomStackKind::DirectPush);
        // Large busy rooms run the tree, TTL derived from the room size.
        let busy = RoomContext::synthetic(2, 80, 30.0);
        let RoomStackKind::TreePush { push_ttl } = rules.evaluate(&busy) else {
            panic!("large busy room must run the tree");
        };
        assert_eq!(push_ttl, derived_gossip_ttl(80, 3));
        // A bigger room derives a deeper push.
        let huge = RoomContext::synthetic(3, 2000, 30.0);
        let RoomStackKind::TreePush { push_ttl: deeper } = rules.evaluate(&huge) else {
            panic!("huge busy room must run the tree");
        };
        assert!(deeper > push_ttl);
    }

    #[test]
    fn incomplete_context_yields_no_decision() {
        let mut context = context_with(vec![fixed(0)]);
        context.members.push(NodeId(9));
        assert_eq!(DefaultPolicy::default().evaluate(&context), None);
    }

    #[test]
    fn hybrid_groups_select_mecho_with_a_fixed_relay() {
        let context = context_with(vec![fixed(0), mobile(1), mobile(2)]);
        let decision = DefaultPolicy::default().evaluate(&context);
        assert_eq!(decision, Some(StackKind::HybridMecho { relay: NodeId(0) }));
    }

    #[test]
    fn homogeneous_small_clean_groups_stay_best_effort() {
        let context = context_with(vec![fixed(0), fixed(1), fixed(2)]);
        assert_eq!(
            DefaultPolicy::default().evaluate(&context),
            Some(StackKind::BestEffort)
        );
    }

    #[test]
    fn large_groups_select_gossip() {
        let snapshots: Vec<ContextSnapshot> = (0..20).map(fixed).collect();
        let context = context_with(snapshots);
        let decision = DefaultPolicy::default().evaluate(&context).unwrap();
        assert!(matches!(decision, StackKind::Gossip { .. }));
    }

    #[test]
    fn gossip_ttl_derives_from_the_live_group_size() {
        // fanout 3: 3^3 = 27 covers 20 → 3 rounds + 1 slack, floored at 4.
        assert_eq!(derived_gossip_ttl(20, 3), 4);
        // 3^4 = 81 covers 50 → 5; 3^5 = 243 covers 100 → 6; 250 needs 6 → 7.
        assert_eq!(derived_gossip_ttl(50, 3), 5);
        assert_eq!(derived_gossip_ttl(100, 3), 6);
        assert_eq!(derived_gossip_ttl(250, 3), 7);
        // Tiny groups keep the historical default; huge ones are capped.
        assert_eq!(derived_gossip_ttl(2, 3), 4);
        assert_eq!(derived_gossip_ttl(usize::MAX, 2), 12);

        // The policy wires the derivation: a 250-member view gets a deeper
        // push phase than a 20-member one, without any parameter change.
        let small = context_with((0..20).map(fixed).collect());
        let large = context_with((0..250).map(fixed).collect());
        let policy = DefaultPolicy::default();
        let Some(StackKind::Gossip {
            fanout: f1,
            ttl: t1,
        }) = policy.evaluate(&small)
        else {
            panic!("small large-group context must select gossip");
        };
        let Some(StackKind::Gossip {
            fanout: f2,
            ttl: t2,
        }) = policy.evaluate(&large)
        else {
            panic!("250-member context must select gossip");
        };
        assert_eq!((f1, t1), (3, 4));
        assert_eq!((f2, t2), (3, 7));

        // A pinned TTL bypasses the derivation.
        let pinned = DefaultPolicy {
            gossip_ttl: 9,
            ..DefaultPolicy::default()
        };
        let Some(StackKind::Gossip { ttl, .. }) = pinned.evaluate(&large) else {
            panic!("pinned policy must still select gossip");
        };
        assert_eq!(ttl, 9);
    }

    #[test]
    fn error_rates_select_retransmission_then_fec() {
        let moderate = context_with(vec![
            with_error(mobile(0), 0.01),
            with_error(mobile(1), 0.0),
        ]);
        assert_eq!(
            DefaultPolicy::default().evaluate(&moderate),
            Some(StackKind::Reliable)
        );

        let severe = context_with(vec![
            with_error(mobile(0), 0.12),
            with_error(mobile(1), 0.0),
        ]);
        assert_eq!(
            DefaultPolicy::default().evaluate(&severe),
            Some(StackKind::ErrorMasking { k: 4 })
        );
    }

    #[test]
    fn hybrid_takes_priority_over_error_rules() {
        let context = context_with(vec![fixed(0), with_error(mobile(1), 0.2)]);
        assert!(matches!(
            DefaultPolicy::default().evaluate(&context),
            Some(StackKind::HybridMecho { .. })
        ));
    }

    #[test]
    fn from_params_overrides_thresholds() {
        let mut params = LayerParams::new();
        params.insert("large_group_threshold".into(), "4".into());
        params.insert("fec_k".into(), "8".into());
        let policy = DefaultPolicy::from_params(&params);
        assert_eq!(policy.large_group_threshold, 4);
        assert_eq!(policy.fec_k, 8);
        assert_eq!(policy.gossip_fanout, DefaultPolicy::default().gossip_fanout);

        let snapshots: Vec<ContextSnapshot> = (0..5).map(fixed).collect();
        let context = context_with(snapshots);
        assert!(matches!(
            policy.evaluate(&context),
            Some(StackKind::Gossip { .. })
        ));
        assert_eq!(policy.name(), "default-rules");
    }
}
