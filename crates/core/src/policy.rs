//! Adaptation policies: mapping the distributed context to a stack choice.

use morpheus_appia::platform::NodeId;
use morpheus_cocaditem::ContextStore;

/// The stack configurations the Core subsystem can switch the data channel
/// between. Each kind corresponds to a trade-off discussed in the paper's
/// motivation section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackKind {
    /// Plain best-effort multicast: one point-to-point message per member.
    /// Adequate for small homogeneous groups.
    BestEffort,
    /// Best-effort multicast plus NACK-based retransmission ("detect and
    /// recover"), preferable under small error rates.
    Reliable,
    /// Best-effort multicast plus XOR-parity forward error correction ("mask
    /// the errors"), preferable under large error rates.
    ErrorMasking {
        /// FEC block size.
        k: usize,
    },
    /// The Mecho adaptive multicast for hybrid fixed/mobile groups: mobile
    /// nodes send once to a fixed relay.
    HybridMecho {
        /// The fixed node acting as relay.
        relay: NodeId,
    },
    /// Epidemic multicast for large, geographically distributed groups.
    Gossip {
        /// Push fan-out.
        fanout: usize,
        /// Forwarding rounds.
        ttl: u32,
    },
}

impl StackKind {
    /// A stable name identifying the configuration (used in reconfiguration
    /// commands and reports).
    pub fn name(&self) -> String {
        match self {
            StackKind::BestEffort => "best-effort".to_string(),
            StackKind::Reliable => "reliable".to_string(),
            StackKind::ErrorMasking { k } => format!("fec-k{k}"),
            StackKind::HybridMecho { relay } => format!("hybrid-mecho-relay{}", relay.0),
            StackKind::Gossip { fanout, ttl } => format!("gossip-f{fanout}-t{ttl}"),
        }
    }
}

/// The dissemination stack one room shard runs over its subscribed
/// members. Where [`StackKind`] reconfigures the whole-group data channel,
/// a room kind adapts one shard of the room-sharded overlay — the same
/// context-driven selection, applied at per-room grain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoomStackKind {
    /// Every link stays eager: each message is flooded to all room links.
    /// Right for small or quiet rooms, where the tree's prune/graft
    /// round-trips would cost more than the duplicates they save.
    DirectPush,
    /// Plumtree-style spanning tree: eager links prune to a broadcast tree
    /// on duplicates, lazy links carry announcements and graft repairs.
    TreePush {
        /// Hop budget of the eager push, derived from the room size.
        push_ttl: u32,
    },
}

impl RoomStackKind {
    /// A stable name for reports and reconfiguration commands.
    pub fn name(&self) -> String {
        match self {
            RoomStackKind::DirectPush => "room-direct".to_string(),
            RoomStackKind::TreePush { push_ttl } => format!("room-tree-t{push_ttl}"),
        }
    }
}

/// The distributed context an adaptation policy evaluates against.
#[derive(Debug, Clone)]
pub struct GlobalContext {
    /// The node evaluating the policy (the coordinator).
    pub local: NodeId,
    /// The participants of the group.
    pub members: Vec<NodeId>,
    /// The last context snapshot published by each participant.
    pub store: ContextStore,
    /// Name of the stack configuration currently deployed.
    pub current_stack: String,
}

impl GlobalContext {
    /// Number of group members.
    pub fn group_size(&self) -> usize {
        self.members.len()
    }

    /// Whether every member has published at least one context snapshot.
    pub fn is_complete(&self) -> bool {
        self.members
            .iter()
            .all(|member| self.store.get(*member).is_some())
    }
}

/// An adaptation policy: decides which stack configuration best fits the
/// current distributed context.
pub trait AdaptationPolicy {
    /// A short policy name for reports.
    fn name(&self) -> &'static str;

    /// Evaluates the context and returns the preferred configuration, or
    /// `None` when the policy has no opinion (e.g. not enough context yet).
    fn evaluate(&self, context: &GlobalContext) -> Option<StackKind>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_kind_names_are_stable_and_distinct() {
        let kinds = [
            StackKind::BestEffort,
            StackKind::Reliable,
            StackKind::ErrorMasking { k: 4 },
            StackKind::HybridMecho { relay: NodeId(0) },
            StackKind::Gossip { fanout: 3, ttl: 4 },
        ];
        let mut names: Vec<String> = kinds.iter().map(StackKind::name).collect();
        assert_eq!(names[3], "hybrid-mecho-relay0");
        names.sort();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn global_context_completeness() {
        use morpheus_appia::platform::NodeProfile;
        use morpheus_cocaditem::ContextSnapshot;

        let mut store = ContextStore::new();
        store.update(ContextSnapshot::from_profile(
            &NodeProfile::fixed_pc(NodeId(0)),
            1,
        ));
        let context = GlobalContext {
            local: NodeId(0),
            members: vec![NodeId(0), NodeId(1)],
            store,
            current_stack: "best-effort".into(),
        };
        assert_eq!(context.group_size(), 2);
        assert!(!context.is_complete());
    }
}
